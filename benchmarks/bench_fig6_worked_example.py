"""Figure 6 -- the worked example of combined sync + async tuning.

Reproduces the T0..Tn timeline of section 4: steady state, a surge
absorbed by free lock memory, a 267% surge partly served synchronously
from overflow, STMM reconciliation, and the slow delta_reduce
relaxation back towards the maxFreeLockMemory goal.
"""

import pytest

from repro.analysis.ascii_chart import render_two_series
from repro.analysis.report import format_findings
from repro.analysis.scenarios import run_fig6_worked_example


def test_fig6_worked_example(benchmark, save_artifact):
    result = benchmark.pedantic(run_fig6_worked_example, rounds=1, iterations=1)
    chart = render_two_series(
        result.series("lock_pages_pct"),
        result.series("lock_used_pct"),
        title="Figure 6 -- lock memory allocated (%) vs used (%) over the timeline",
    )
    save_artifact(
        "fig6_worked_example",
        chart + "\n\n" + format_findings(result.findings),
    )
    # T1: a 50% usage surge fits inside the free half -- no sync growth.
    assert result.finding("t1_absorbed_without_sync_growth")
    # T2: async growth restored the minFree objective (6% allocated).
    assert result.finding("t2_alloc_pct") == pytest.approx(6.0, abs=0.3)
    # T3: the 267% surge required synchronous overflow memory.
    assert result.finding("t3_used_sync_growth")
    assert result.finding("t3_overflow_reduced_pct") < 10.0
    # T4: STMM reconciled overflow back to its 10% goal.
    assert result.finding("t4_overflow_restored_pct") == pytest.approx(10.0, abs=0.5)
    # T6..Tn: ~5% of current size relaxed per interval, settling at the
    # maxFreeLockMemory-free state (used 2% / 0.4 = 5% allocated).
    assert result.finding("per_interval_shrink_fraction") == pytest.approx(
        0.05, abs=0.02
    )
    assert result.finding("final_alloc_pct") == pytest.approx(5.0, abs=0.3)
