"""Figure 8 -- lock escalation collapses system throughput.

The same static under-provisioned system as Figure 7, now reading the
throughput series: after escalation "only a small number of the 130
application clients are able to make forward progress and the system
throughput drops practically to zero".  The adaptive reference run on
the identical workload keeps escalations at zero and commits a multiple
of the static system's transactions.
"""

from repro.analysis.ascii_chart import render_series
from repro.analysis.report import format_findings
from repro.analysis.scenarios import run_fig7_fig8_static_escalation


def run():
    return run_fig7_fig8_static_escalation(
        clients=130, locklist_pages=96, duration_s=180,
        include_adaptive_reference=True,
    )


def test_fig8_escalation_collapses_throughput(benchmark, save_artifact):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    tput = result.metrics["commits"].rate().smooth(5)
    chart = render_series(
        tput,
        title="Figure 8 -- OLTP throughput under the static 0.375 MB LOCKLIST",
    )
    save_artifact(
        "fig8_escalation_throughput",
        chart + "\n\n" + format_findings(result.findings),
    )
    # Exclusive escalations serialized the system...
    assert result.finding("static_exclusive_escalations") > 0
    # ...late throughput sits well below the healthy peak...
    assert (
        result.finding("static_late_tput")
        < 0.75 * result.finding("static_peak_tput")
    )
    # ...while the adaptive reference avoided escalation entirely and
    # did a multiple of the total work (paper: static drops "practically
    # to zero").  Total committed work is the robust collapse signal;
    # single-sample instantaneous rates are too noisy to compare.
    assert result.finding("adaptive_escalations") == 0
    assert result.finding("adaptive_vs_static_commit_ratio") > 1.5
