"""Extra experiment A -- policy shoot-out on a surge + DSS workload.

Runs the identical workload (client surge plus a reporting query) under
the paper's adaptive policy, a static under-provisioned LOCKLIST, and
the SQL Server 2005 model from section 2.3.  Expected shape: adaptive
avoids escalation; static escalates; SQL Server's unconditional
5000-locks-per-application trigger escalates the reporting query ("a
single reporting query can easily result in lock escalation").
"""

from repro.analysis.report import format_table
from repro.analysis.scenarios import run_baseline_comparison


def run():
    return run_baseline_comparison(
        clients=40, dss_rows=120_000, duration_s=240
    )


def test_baseline_comparison(benchmark, save_artifact):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    policies = result.finding("policies")
    headers = [
        "policy", "escalations", "exclusive", "errors",
        "commits", "peak_lock_pages", "query_completed",
    ]
    rows = [
        [name] + [result.finding(f"{name}:{column}") for column in headers[1:]]
        for name in policies
    ]
    save_artifact(
        "baseline_comparison",
        "Policy shoot-out: 20->40 client surge + 120k-row reporting query\n"
        + format_table(headers, rows)
        + f"\n\n  highest throughput: {result.finding('highest_throughput_policy')}",
    )
    # The paper's algorithm: zero escalations, query completes.
    assert result.finding("db2-adaptive:escalations") == 0
    assert result.finding("db2-adaptive:query_completed")
    # The static and SQL Server baselines both escalate on this load
    # ("a single reporting query can easily result in lock escalation").
    assert result.finding("static-2MB-10pct:escalations") > 0
    assert result.finding("sqlserver-2005:escalations") > 0
    # Throughput: with the DSS table disjoint from the OLTP tables (the
    # paper's combined-schema setup) an S escalation does not stall
    # writers, so all three policies commit within noise of each other;
    # the adaptive policy must never *lose* ground.
    commits = {
        name: result.finding(f"{name}:commits")
        for name in result.finding("policies")
    }
    assert commits["db2-adaptive"] >= 0.98 * max(commits.values())
    # Memory behaviour: the adaptive policy relaxes after the spike;
    # the SQL Server model never returns lock memory to the pool.
    assert (
        result.finding("db2-adaptive:final_lock_pages")
        < result.finding("db2-adaptive:peak_lock_pages")
    )
    assert (
        result.finding("sqlserver-2005:final_lock_pages")
        == result.finding("sqlserver-2005:peak_lock_pages")
    )
