"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark:

* runs its scenario once under ``benchmark.pedantic`` (the interesting
  measurements are the *findings*, not the wall time, but wall time is
  recorded too),
* prints the findings and an ASCII rendition of the figure (visible
  with ``pytest benchmarks/ --benchmark-only -s``),
* writes the same text to ``benchmarks/results/<name>.txt`` so the
  reproduced figures survive the run.
"""

import os

import pytest


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def save_artifact():
    """Write (and echo) a benchmark's textual artifact."""

    def _save(name: str, text: str) -> str:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text)
        print(f"\n{text}\n[artifact: {path}]")
        return path

    return _save
