"""Figure 4 -- Oracle page memory (the ITL model), quantified.

The paper's section 2.3 argues three drawbacks of on-page locking:
permanent disk overhead, ITL-exhaustion blocking of free rows, and the
absence of anything a memory tuner could adjust.  This benchmark makes
the comparison executable.
"""

from repro.analysis.report import format_findings
from repro.analysis.scenarios import run_fig4_oracle_itl


def test_fig4_oracle_itl(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_fig4_oracle_itl, kwargs={"concurrent_txns": 10}, rounds=1, iterations=1
    )
    save_artifact(
        "fig4_oracle_itl",
        "Figure 4 -- Oracle ITL page model under 10 distinct-row writers\n"
        + format_findings(result.findings)
        + "\n\n"
        + "\n".join(result.notes),
    )
    # ITL exhaustion blocks writers whose rows are entirely free.
    assert result.finding("blocked_on_free_rows") > 0
    assert result.finding("row_conflicts") == 0
    # The on-disk overhead is permanent (identical after commit).
    assert result.finding("disk_overhead_bytes") == result.finding(
        "disk_overhead_after_commit_bytes"
    )
    # Nothing for a lock-memory tuner to tune.
    assert result.finding("tunable_memory_pages") == 0
