"""Ablation B -- the delta_reduce shrink rate (paper: 5 %).

Sweeps the per-interval shrink rate on the Figure 12 step-down.  The
trade-off the paper's 5 % sits on: slower shrink wastes memory for
longer after a peak; faster shrink reaches the goal quickly but
de-stabilizes the allocation.
"""

from repro.analysis.report import format_table
from repro.analysis.scenarios import run_ablation_delta_reduce

DELTAS = (0.01, 0.05, 0.10, 0.25)


def run():
    return run_ablation_delta_reduce(
        deltas=DELTAS, drop_at_s=120, duration_s=480
    )


def test_ablation_delta_reduce(benchmark, save_artifact):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["delta_reduce", "final_pages", "excess_page_seconds",
               "time_to_halfway_s", "escalations"]
    rows = []
    for delta in DELTAS:
        key = f"delta={delta:.2f}"
        rows.append([
            f"{delta:.0%}",
            result.finding(f"{key}:final_pages"),
            result.finding(f"{key}:excess_page_seconds"),
            result.finding(f"{key}:time_to_halfway_s"),
            result.finding(f"{key}:escalations"),
        ])
    save_artifact(
        "ablation_delta_reduce",
        "Ablation: shrink rate sweep on the 130->30 client step-down\n"
        + format_table(headers, rows),
    )
    # Faster shrink wastes strictly less memory after the drop...
    waste = [result.finding(f"delta={d:.2f}:excess_page_seconds") for d in DELTAS]
    assert waste[0] > waste[1] > waste[3]
    # ...and reaches the halfway point sooner.
    halfway = [
        result.finding(f"delta={d:.2f}:time_to_halfway_s") for d in DELTAS
    ]
    assert halfway[0] > halfway[1] >= halfway[3]
    # No setting escalates on a shrinking workload.
    assert all(
        result.finding(f"delta={d:.2f}:escalations") == 0 for d in DELTAS
    )
