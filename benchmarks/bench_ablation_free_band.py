"""Ablation C -- the minFree/maxFree band (paper: 50-60 %).

Sweeps the free-memory band on the Figure 10 surge.  The paper keeps
50-60 % free so one tuning interval can absorb a 100 % growth in lock
demand without synchronous allocation; a low band leaves less headroom
(more synchronous growth), a high band wastes memory (allocated far
above used).
"""

from repro.analysis.report import format_table
from repro.analysis.scenarios import run_ablation_free_band

BANDS = ((0.50, 0.60), (0.20, 0.30), (0.75, 0.85))


def run():
    return run_ablation_free_band(bands=BANDS, duration_s=240)


def test_ablation_free_band(benchmark, save_artifact):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["band", "sync_growth_blocks", "escalations",
               "allocated_to_used_ratio", "final_pages"]
    rows = []
    for min_free, max_free in BANDS:
        key = f"band={min_free:.2f}-{max_free:.2f}"
        rows.append([
            f"{min_free:.0%}-{max_free:.0%}",
            result.finding(f"{key}:sync_growth_blocks"),
            result.finding(f"{key}:escalations"),
            result.finding(f"{key}:allocated_to_used_ratio"),
            result.finding(f"{key}:final_pages"),
        ])
    save_artifact(
        "ablation_free_band",
        "Ablation: free-band sweep on the 50->130 client surge\n"
        + format_table(headers, rows),
    )
    paper = "band=0.50-0.60"
    high = "band=0.75-0.85"
    # A higher free band holds more memory relative to demand.
    assert (
        result.finding(f"{high}:allocated_to_used_ratio")
        >= result.finding(f"{paper}:allocated_to_used_ratio")
    )
    # The paper's band handles the surge without escalating.
    assert result.finding(f"{paper}:escalations") == 0
