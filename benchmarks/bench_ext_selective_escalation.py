"""Extension bench -- selective lock escalation (paper section 6.1).

The paper's second future-work item: "application policies to bias when
lock escalations are a preferred strategy over lock memory growth.
Selective lock escalation would reduce memory requirements for locking
providing more memory for caching and sorting etc."

This bench runs the same batch-update job twice against the adaptive
policy: once normally, once with the job's application flagged as
*escalation-preferred*.  Expected shape: the preferring run never grows
lock memory for the job (it escalates to a table X lock instead), so
peak lock memory stays at the floor and the bufferpool keeps the pages
-- at the concurrency cost escalation always carries.
"""

from repro.analysis.report import format_table
from repro.engine.database import Database, DatabaseConfig
from repro.workloads.batch import BatchUpdateJob


def run_variant(preferred: bool):
    db = Database(
        seed=23,
        config=DatabaseConfig(total_memory_pages=65_536,
                              initial_locklist_pages=128),
    )
    job = BatchUpdateJob(db, start_time_s=10, row_count=120_000, duration_s=15)

    if preferred:
        # flag the job's application as soon as it connects
        original_register = db.register_application

        def register_and_flag(app_id):
            original_register(app_id)
            db.lock_manager.set_escalation_preference(app_id, True)

        db.register_application = register_and_flag

    job.start()
    db.run(until=200)
    return {
        "completed": job.result.completed,
        "escalated": job.result.escalated,
        "peak_lock_pages": db.metrics["lock_pages"].max(),
        "sync_growth_blocks": db.lock_manager.stats.sync_growth_blocks,
        "min_bufferpool_pages": db.metrics["bufferpool_pages"].min(),
    }


def run():
    return {
        "normal": run_variant(preferred=False),
        "preferred": run_variant(preferred=True),
    }


def test_selective_escalation_extension(benchmark, save_artifact):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["variant", "completed", "escalated", "peak_lock_pages",
               "sync_growth_blocks", "min_bufferpool_pages"]
    rows = [
        [name] + [results[name][column] for column in headers[1:]]
        for name in ("normal", "preferred")
    ]
    save_artifact(
        "ext_selective_escalation",
        "Extension (section 6.1): escalation-preferred batch application\n"
        + format_table(headers, rows),
    )
    normal, preferred = results["normal"], results["preferred"]
    # both complete the batch
    assert normal["completed"] and preferred["completed"]
    # the normal run grows lock memory; the preferring run escalates
    assert not normal["escalated"]
    assert preferred["escalated"]
    # the memory saving the paper predicts
    assert preferred["peak_lock_pages"] < normal["peak_lock_pages"]
    assert preferred["sync_growth_blocks"] == 0
    # the saved pages stayed with the cache
    assert (
        preferred["min_bufferpool_pages"] >= normal["min_bufferpool_pages"]
    )
