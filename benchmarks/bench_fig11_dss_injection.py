"""Figure 11 -- lock memory adaptation to a sudden DSS injection.

A reporting query with massive row locking joins a steady OLTP system.
Paper shape: lock memory grows by tens of times within seconds (60x
over ~25 s in the paper, peaking near 10 % of database memory), with no
exclusive escalations; OLTP throughput dips from resource competition
but the system keeps running.  The adaptive lockPercentPerApplication
is what lets the single query dominate lock memory.

Scaling note: the paper's 5.11 GB server absorbed ~8 million row locks;
against our 512 MB reference system the query takes 500,000 row locks,
preserving the peak-at-~10%-of-memory and the tens-of-x growth shape.
"""

from repro.analysis.ascii_chart import render_two_series
from repro.analysis.report import format_findings
from repro.analysis.scenarios import run_fig11_dss_injection


def run():
    return run_fig11_dss_injection(
        oltp_clients=30, dss_rows=500_000,
        inject_at_s=90, acquisition_duration_s=40,
        hold_duration_s=30, duration_s=330,
    )


def test_fig11_dss_injection(benchmark, save_artifact):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = render_two_series(
        result.metrics["commits"].rate().smooth(5),
        result.series("lock_pages"),
        title="Figure 11 -- OLTP throughput (*) and lock memory (o), "
        "DSS query injected at t=90s",
    )
    save_artifact(
        "fig11_dss_injection",
        chart + "\n\n" + format_findings(result.findings)
        + "\n" + "\n".join(result.notes),
    )
    # Growth by tens of times (paper: 60x; ours ~25-30x at this scale).
    assert result.finding("growth_factor") >= 15.0
    # Peak near 10% of database memory (paper: ~10% of 5.11 GB).
    assert 0.05 <= result.finding("peak_fraction_of_database_memory") <= 0.20
    # "No exclusive lock escalations were observed".
    assert result.finding("exclusive_escalations") == 0
    # The reporting query completed with row locking.
    assert result.finding("query_completed")
    assert result.finding("query_rows_locked") == 500_000
    # OLTP continued during the query (dip, not collapse).
    assert result.finding("oltp_tput_during") > 0
