"""Figure 3 -- lock queuing.

Four applications request the same row: S, S (shared grant), X (queues),
S (queues *behind* the X -- the FIFO "post" discipline the paper
contrasts with Oracle's sleep/wake polling).
"""

from repro.analysis.report import format_findings
from repro.analysis.scenarios import run_fig3_lock_queuing


def test_fig3_lock_queuing(benchmark, save_artifact):
    result = benchmark.pedantic(run_fig3_lock_queuing, rounds=1, iterations=1)
    save_artifact(
        "fig3_lock_queuing",
        "Figure 3 -- lock queuing (S, S share; X queues; S queues behind X)\n"
        + format_findings(result.findings),
    )
    assert result.finding("shared_S_grant")
    assert result.finding("queue_while_held") == "X->S"
    assert result.finding("fifo_respected")
    assert result.finding("final_grant_order") == "1->2->3->4"
