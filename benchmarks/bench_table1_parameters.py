"""Table 1 -- key parameters of the tuning model.

Regenerates the paper's parameter summary from the implementation and
checks every formula against the values the paper states.
"""

from repro.analysis.report import format_table
from repro.core.maxlocks import lock_percent_per_application
from repro.core.params import TuningParameters
from repro.units import MB, pages_to_bytes


def build_table(params: TuningParameters, database_memory_pages: int):
    rows = [
        ["databaseMemory", "total shared memory", f"{database_memory_pages} pages"],
        [
            "minLockMemory",
            "MAX(2MB, 500 * locksize * num_applications)",
            f"{params.min_lock_memory_pages(130)} pages @130 apps",
        ],
        [
            "maxLockMemory",
            "0.20 * databaseMemory",
            f"{params.max_lock_memory_pages(database_memory_pages)} pages",
        ],
        [
            "sqlCompilerLockMem",
            "0.10 * databaseMemory",
            f"{params.sql_compiler_lock_memory_pages(database_memory_pages)} pages",
        ],
        [
            "LMOmax",
            "65% of database overflow memory",
            f"{params.lmo_max_pages(10_000, 0)} pages @10k overflow",
        ],
        ["maxFreeLockMemory", "shrink above this free fraction",
         f"{params.max_free_fraction:.0%}"],
        ["minFreeLockMemory", "grow below this free fraction",
         f"{params.min_free_fraction:.0%}"],
        [
            "lockPercentPerApplication",
            "98 * (1 - (x/100)^3)",
            f"P(0)={lock_percent_per_application(0):.0f} "
            f"P(50)={lock_percent_per_application(50):.2f} "
            f"P(100)={lock_percent_per_application(100):.0f}",
        ],
        ["refreshPeriodForAppPercent", "requests between recomputes",
         hex(params.refresh_period_requests)],
        ["delta_reduce", "shrink rate per tuning interval",
         f"{params.delta_reduce:.0%}"],
    ]
    return format_table(["parameter", "meaning", "value"], rows)


def test_table1_parameters(benchmark, save_artifact):
    params = TuningParameters()
    database_memory_pages = 131_072  # 512 MB reference system

    table = benchmark.pedantic(
        build_table, args=(params, database_memory_pages), rounds=1, iterations=1
    )
    save_artifact("table1_parameters", "Table 1 -- key parameters\n" + table)

    # Formula checks against the paper's stated values.
    assert pages_to_bytes(params.min_lock_memory_pages(0)) == 2 * MB
    assert pages_to_bytes(params.min_lock_memory_pages(130)) >= 500 * 64 * 130
    assert params.max_lock_memory_pages(131_072) >= 0.20 * 131_072
    assert params.sql_compiler_lock_memory_pages(131_072) == 13_107
    assert params.lmo_max_pages(10_000, 0) == 6_500
    assert params.min_free_fraction == 0.50
    assert params.max_free_fraction == 0.60
    assert params.delta_reduce == 0.05
    assert params.refresh_period_requests == 0x80
    assert lock_percent_per_application(0) == 98.0
    assert lock_percent_per_application(100) == 1.0
