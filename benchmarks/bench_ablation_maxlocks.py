"""Ablation D -- adaptive lockPercentPerApplication vs fixed 10 %.

Re-runs the Figure 11 DSS injection with the adaptive MAXLOCKS curve
replaced by the old DB2 default of a fixed 10 %.  Paper (section 5.3):
"Had the lock manager used ... a fixed value for lockPercentPer-
Application such as 10% (the previous default value used by DB2 in past
product releases) to trigger lock escalation[,] lock escalations would
[have] occurred in this experiment".
"""

from repro.analysis.report import format_table
from repro.analysis.scenarios import run_ablation_maxlocks


def run():
    return run_ablation_maxlocks(
        oltp_clients=20, dss_rows=150_000, duration_s=260
    )


def test_ablation_maxlocks(benchmark, save_artifact):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["maxlocks", "growth_factor", "escalations",
               "exclusive_escalations", "query_completed"]
    rows = []
    for label in ("adaptive", "fixed10"):
        rows.append([
            label,
            result.finding(f"{label}:growth_factor"),
            result.finding(f"{label}:escalations"),
            result.finding(f"{label}:exclusive_escalations"),
            result.finding(f"{label}:query_completed"),
        ])
    save_artifact(
        "ablation_maxlocks",
        "Ablation: adaptive vs fixed-10% MAXLOCKS under the DSS injection\n"
        + format_table(headers, rows),
    )
    # Adaptive curve: the single query dominates lock memory, no
    # escalation (the section 5.3 discussion).
    assert result.finding("adaptive:escalations") == 0
    assert result.finding("adaptive:query_completed")
    # Fixed 10%: the very same query escalates.
    assert result.finding("fixed10:escalations") > 0
