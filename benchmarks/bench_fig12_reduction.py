"""Figure 12 -- gradual lock memory reduction.

Steady OLTP at 130 clients (4.2 MB of lock memory, exactly the paper's
number for this population) drops to 30 clients (-76.9 %).  Paper
shape: the allocation relaxes by roughly delta_reduce = 5 % per 30 s
tuning interval, "after a gradual consistent reduction over 10 STMM
tuning intervals, the lock memory settles into a new steady state
allocation approximately half of its earlier steady-state allocation".
"""

import pytest

from repro.analysis.ascii_chart import render_series
from repro.analysis.report import format_findings
from repro.analysis.scenarios import run_fig12_reduction


def run():
    return run_fig12_reduction(
        before_clients=130, after_clients=30,
        drop_at_s=180, duration_s=620,
    )


def test_fig12_reduction(benchmark, save_artifact):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = render_series(
        result.series("lock_pages"),
        title="Figure 12 -- lock memory pages, 130->30 clients at t=180s",
    )
    save_artifact(
        "fig12_reduction", chart + "\n\n" + format_findings(result.findings)
    )
    # The 130-client steady state is ~4.2 MB (1024-1056 pages), matching
    # the paper's quoted allocation for 130 clients.
    assert 1_000 <= result.finding("steady_lock_pages") <= 1_100
    # Gradual decay over roughly ten intervals...
    assert 6 <= result.finding("shrink_intervals") <= 16
    # ...at roughly 5% per interval...
    assert result.finding("mean_per_interval_reduction") == pytest.approx(
        0.055, abs=0.03
    )
    # ...settling near half the earlier steady state.
    assert result.finding("reduction_ratio") == pytest.approx(0.5, abs=0.12)
    assert result.finding("escalations") == 0
