"""Figure 10 -- lock memory with a 2.6x workload surge.

Steady OLTP at 50 clients switches to 130 clients at t=120 s.  Paper
shape: "the increase in lock memory is practically instantaneous, as
the lock memory increases to just more than double its previous
allocation at the 25 minute mark.  Throughout this experiment no lock
escalations occur."
"""

import pytest

from repro.analysis.ascii_chart import render_two_series
from repro.analysis.report import format_findings
from repro.analysis.scenarios import run_fig10_surge


def run():
    return run_fig10_surge(
        before_clients=50, after_clients=130,
        switch_at_s=120, duration_s=300,
    )


def test_fig10_surge(benchmark, save_artifact):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = render_two_series(
        result.metrics["commits"].rate().smooth(5),
        result.series("lock_pages"),
        title="Figure 10 -- throughput (*) and lock memory (o), "
        "50->130 client surge at t=120s",
    )
    save_artifact(
        "fig10_surge", chart + "\n\n" + format_findings(result.findings)
    )
    # "just more than double its previous allocation"
    assert result.finding("growth_ratio") == pytest.approx(2.0, abs=0.3)
    # "practically instantaneous": within two tuning intervals
    assert result.finding("adaptation_delay_s") <= 60
    # "no lock escalations occur"
    assert result.finding("escalations") == 0
    # higher client count produced higher throughput
    assert result.finding("tput_after") > result.finding("tput_before")
