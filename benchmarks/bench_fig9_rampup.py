"""Figure 9 -- rapid lock memory adaptation to steady-state OLTP load.

From a minimal 0.375 MB configuration, the workload ramps from 1 to 130
clients.  Paper shape: throughput rises with the ramp, the self-tuned
lock memory converges immediately to a stable level ~10.5x its starting
point, and **no lock escalations occur**.
"""

from repro.analysis.ascii_chart import render_two_series
from repro.analysis.report import format_findings
from repro.analysis.scenarios import run_fig9_rampup


def run():
    return run_fig9_rampup(
        clients=130, initial_locklist_pages=96,
        ramp_duration_s=60, duration_s=300,
    )


def test_fig9_rampup(benchmark, save_artifact):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = render_two_series(
        result.metrics["commits"].rate().smooth(5),
        result.series("lock_pages"),
        title="Figure 9 -- throughput (*) and lock memory pages (o), "
        "1->130 client ramp",
    )
    save_artifact(
        "fig9_rampup", chart + "\n\n" + format_findings(result.findings)
    )
    # Paper: "no lock escalations were observed ... despite the drastic
    # increase in clients from 0 to 130".
    assert result.finding("escalations") == 0
    # Paper: "the resulting increase in lock memory by 10.5x" -- the
    # shape criterion is roughly an order of magnitude from the minimal
    # start (ours: 96 pages -> ~1024 pages ~ 10.7x).
    assert result.finding("growth_factor") >= 8.0
    # "adapts immediately to a stable allocation level": converged
    # within two tuning intervals of the ramp completing.
    assert result.finding("convergence_time_s") <= 60 + 2 * 30
    assert result.finding("steady_tput") > 0
