"""Extension bench -- two simultaneous heavy lock consumers.

Verifies the section 5.3 discussion the paper states but does not plot:
"Had two or more heavy lock consumers (queries or updates) been
simultaneously introduced the adaptive algorithm for
lockPercentPerApplication would have attenuated the percentage of total
lock memory that each query would be allowed to consume as global lock
memory began to approach maxLockMemory".

One 700k-row query fits comfortably (no escalation); the same two
queries together drive the allocation to maxLockMemory, the MAXLOCKS
curve collapses to its floor, and both queries escalate to S table
locks -- bounded memory, no exclusive locks, everything completes.
"""

from repro.analysis.report import format_findings
from repro.analysis.scenarios import run_two_heavy_consumers


def test_two_heavy_consumers(benchmark, save_artifact):
    result = benchmark.pedantic(run_two_heavy_consumers, rounds=1, iterations=1)
    save_artifact(
        "ext_two_heavy_consumers",
        "Section 5.3 discussion: one vs two heavy lock consumers\n"
        + format_findings(result.findings)
        + "\n" + "\n".join(result.notes),
    )
    # One heavy consumer: allowed to dominate, no escalation.
    assert result.finding("solo_escalations") == 0
    assert result.finding("solo_completed")
    # Two together: the curve attenuates hard as memory nears the max...
    assert result.finding("duo_min_maxlocks_percent") < 10.0
    # ...the allocation stays bounded by maxLockMemory...
    assert (
        result.finding("duo_peak_lock_pages")
        <= result.finding("max_lock_memory_pages")
    )
    # ...and the queries escalate (share mode) instead of failing.
    assert result.finding("duo_escalations") >= 1
    assert result.finding("duo_exclusive_escalations") == 0
    assert result.finding("duo_completed")
