"""Figure 7 -- lock escalation reduces lock memory use.

A 0.4 MB static LOCKLIST under a 130-client OLTP ramp: lock structure
usage climbs until escalation fires, after which the in-use lock memory
*drops* (row locks replaced by table locks).  Paper shape: "the
escalation results in a reduction of the lock memory requirements".
"""

from repro.analysis.ascii_chart import render_series
from repro.analysis.report import format_findings
from repro.analysis.scenarios import run_fig7_fig8_static_escalation


def run():
    return run_fig7_fig8_static_escalation(
        clients=130, locklist_pages=96, duration_s=180,
        include_adaptive_reference=False,
    )


def test_fig7_escalation_reduces_lock_memory(benchmark, save_artifact):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = render_series(
        result.series("lock_used_slots"),
        title="Figure 7 -- lock structures in use (static 0.375 MB LOCKLIST, "
        "130 clients)",
    )
    save_artifact(
        "fig7_escalation_lockmem",
        chart + "\n\n" + format_findings(result.findings)
        + "\n" + "\n".join(result.notes),
    )
    # Escalations happened...
    assert result.finding("static_escalations") > 0
    # ...and reduced the lock memory requirement (peak >> final).
    assert result.finding("static_used_drop_after_escalation") > 0
    assert (
        result.finding("static_final_used_slots")
        < result.finding("static_peak_used_slots")
    )
