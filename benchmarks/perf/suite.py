"""Microbenchmark definitions for the perf harness.

Each microbench is a plain function taking keyword parameters and
returning the number of *operations* it performed; the driver times
repeated invocations and derives ops/s and wall-time percentiles.
Every bench builds fresh state per invocation so repetitions are
independent, and none of them uses wall-clock-dependent control flow,
so the work done is a pure function of the parameters.

The benches and the hot paths they stress:

``lock_churn``
    Uncontended ``lock_row`` + ``release_all`` cycles: the allocation
    fast path (slot charge, held-lock bookkeeping, intent fast path).
``escalation_storm``
    Repeated memory-pressure escalations triggered by fresh zero-row
    requesters against an exactly-full block chain with no growth
    provider: global victim selection, candidate-table ordering, and
    the per-row escalation walk.
``detector_sweep``
    Repeated periodic-detector passes over a standing wait-for state
    (many contended rows, no cycles): wait-graph construction and the
    cycle DFS.
``fig9_e2e``
    A scaled-down Figure 9 ramp-up, end to end through the DES, the
    OLTP workload and the adaptive controller.
``service_churn_t{1,2,4,8}``
    Closed-loop threaded load through the live wall-clock LockService
    (mutex hand-off, condition-variable wakeups, live tuner daemon) at
    1/2/4/8 worker threads -- the req/s-vs-thread-count degradation
    curve.
``service_churn_t8_ops``
    ``service_churn_t8`` with the full ops plane enabled (metric
    registry, live /metrics endpoint, 1-in-64 request spans); the
    paired delta against the ops-off run is the observability
    overhead, contractually <= 5 % of median throughput.
``service_churn_t8_waits``
    ``service_churn_t8_ops`` plus the wait-event profiler (wait-class
    histograms, latch statistics, incident forensics); the delta
    against ``service_churn_t8_ops`` isolates the *profiler's* cost,
    and the delta against plain ``service_churn_t8`` gates the whole
    observed stack at the same <= 5 % of median throughput.
``service_churn_t8_broker``
    ``service_churn_t8`` with the whole-memory broker enabled
    (sortheap/hashjoin/pkgcache heaps, per-interval marginal-benefit
    trading, the pressure posture machine); the delta against the
    broker-off run gates the arbitration cost at <= 5 % of median
    throughput.
``service_churn_sharded_t{1,2,4,8}``
    The same closed loop through the sharded stack (per-shard lock
    tables, global STMM arbitration, cross-shard deadlock sweep): the
    hot-latch fix.  Compared against the unsharded curve it answers
    whether sharding restores positive thread scaling.
``service_churn_net_w2_traced``
    ``service_churn_net_w2`` with 1-in-8 distributed request tracing
    (trace context over the wire, hop timings on both ends, bounded
    trace rings); the paired delta against the untraced lane gates
    the tracer's cost at <= 5 % of median throughput.

``scenario_matrix_mini``
    The scenario matrix engine end to end over the ``mini`` grid
    (contention regimes, a sharded run, a DSS tenant, a demand replay
    and one chaos injection); raises if any scenario's verdict is
    ``fail``, so the lane gates on correctness, not timing.

An operation means: one row-lock request (churn, service churn), one
trigger/escalate/refill cycle (storm), one detector pass (sweep), one
committed transaction (fig9), one scenario run (matrix).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.engine.des import Environment
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.detector import DeadlockDetector
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode
from repro.units import LOCKS_PER_BLOCK


def _drive(gen) -> None:
    """Run a locking generator that must not block to completion."""
    try:
        next(gen)
    except StopIteration:
        return
    raise RuntimeError("benchmark generator blocked unexpectedly")


def _start(gen):
    """Advance a locking generator to its first suspension point.

    Returns the generator (still suspended) or None if it completed
    without blocking.
    """
    try:
        next(gen)
    except StopIteration:
        return None
    return gen


# ---------------------------------------------------------------------------
# lock churn
# ---------------------------------------------------------------------------

def run_lock_churn(
    apps: int = 16, tables: int = 8, rows: int = 64, iters: int = 4
) -> int:
    """Uncontended acquire/release churn; returns row-lock requests."""
    env = Environment()
    chain = LockBlockChain(initial_blocks=max(4, apps * tables * (rows + 1) // 2048 + 1))
    manager = LockManager(env, chain, maxlocks_fraction=1.0)
    ops = 0
    for _ in range(iters):
        for app in range(1, apps + 1):
            base = app * 1_000_000  # disjoint rows: no contention
            for table in range(tables):
                for row in range(rows):
                    _drive(manager.lock_row(app, table, base + row, LockMode.X))
                    ops += 1
        for app in range(1, apps + 1):
            manager.release_all(app)
    return ops


# ---------------------------------------------------------------------------
# escalation storm
# ---------------------------------------------------------------------------

def run_escalation_storm(
    holders: int = 512,
    tables_per_holder: int = 8,
    rows_per_table: int = 2,
    cycles: int = 2500,
) -> int:
    """Memory-pressure escalations driven by zero-row requesters.

    Setup: ``holders`` applications each X-lock ``rows_per_table`` rows
    in each of ``tables_per_holder`` private tables, sized so the block
    chain is *exactly* full (``holders * tables_per_holder *
    (rows_per_table + 1)`` must be a multiple of LOCKS_PER_BLOCK).

    Each cycle then runs the worst-case victim-selection path: a fresh
    application (holding nothing) requests one row lock.  With zero free
    structures and no growth provider the manager must pick a memory-
    pressure escalation victim -- and because the requester has no row
    locks it cannot escalate itself, forcing a search across *every*
    holder for the biggest row-lock owner.  The victim's fullest table
    is escalated (private tables, so the table lock is grantable
    immediately), the trigger releases, and the victim re-fills a fresh
    table with exactly the freed structures so the next cycle starts
    from a full chain again.

    Returns the number of trigger cycles (== victim selections ==
    escalations).
    """
    total_structures = holders * tables_per_holder * (rows_per_table + 1)
    blocks, rem = divmod(total_structures, LOCKS_PER_BLOCK)
    if rem:
        raise ValueError(
            "storm parameters must fill whole blocks: "
            f"{total_structures} structures % {LOCKS_PER_BLOCK} != 0"
        )
    env = Environment()
    chain = LockBlockChain(initial_blocks=blocks)
    manager = LockManager(env, chain, maxlocks_fraction=1.0)
    for app in range(1, holders + 1):
        base_table = app * tables_per_holder
        for t in range(tables_per_holder):
            for row in range(rows_per_table):
                _drive(manager.lock_row(app, base_table + t, row, LockMode.X))
    if chain.free_slots != 0:
        raise RuntimeError(
            f"storm setup left {chain.free_slots} free structures"
        )
    outcomes = manager.stats.escalations.outcomes
    for cycle in range(cycles):
        trigger = 1_000_000 + cycle  # fresh app: zero row locks held
        before = len(outcomes)
        _drive(manager.lock_row(trigger, 2_000_000 + cycle, 0, LockMode.X))
        if len(outcomes) != before + 1:
            raise RuntimeError("trigger request did not force an escalation")
        manager.release_all(trigger)
        victim, freed = outcomes[-1].app_id, outcomes[-1].freed_slots
        if victim == trigger or freed < 2:
            raise RuntimeError(
                f"unexpected escalation outcome: victim={victim} freed={freed}"
            )
        # Refill the victim: a fresh private table consuming exactly the
        # freed structures (1 intent + freed-1 rows) restores pressure.
        refill_table = 3_000_000 + cycle
        for row in range(freed - 1):
            _drive(manager.lock_row(victim, refill_table, row, LockMode.X))
        if chain.free_slots != 0:
            raise RuntimeError(
                f"cycle {cycle} left {chain.free_slots} free structures"
            )
    return cycles


# ---------------------------------------------------------------------------
# deadlock-detector sweep
# ---------------------------------------------------------------------------

def run_detector_sweep(
    groups: int = 64,
    readers_per_group: int = 8,
    writers_per_group: int = 4,
    sweeps: int = 400,
) -> int:
    """Repeated detector passes over a cycle-free wait state.

    Each group is one hot row: ``readers_per_group`` applications hold
    S, and ``writers_per_group`` applications queue for X (blocked by
    every reader plus the writers ahead of them).  The wait-for graph
    therefore has ``groups * writers_per_group`` waiting nodes with
    realistic fan-out and no cycles, so every pass builds the graph,
    runs the full DFS and rolls back nobody -- the state is reusable
    across sweeps.  Returns the number of detector passes.
    """
    env = Environment()
    chain = LockBlockChain(
        initial_blocks=max(
            2, groups * (readers_per_group + writers_per_group) // 1024 + 1
        )
    )
    manager = LockManager(env, chain, maxlocks_fraction=1.0)
    detector = DeadlockDetector(manager, interval_s=10.0)  # periodic mode

    app_id = 0
    for group in range(groups):
        for _ in range(readers_per_group):
            app_id += 1
            _drive(manager.lock_row(app_id, 0, group, LockMode.S))
        for _ in range(writers_per_group):
            app_id += 1
            blocked = _start(manager.lock_row(app_id, 0, group, LockMode.X))
            if blocked is None:
                raise RuntimeError("writer was expected to block")
    if len(manager.waiting_apps()) != groups * writers_per_group:
        raise RuntimeError("sweep setup did not produce the expected waiters")

    for _ in range(sweeps):
        if detector.check() != 0:
            raise RuntimeError("sweep state unexpectedly contained a cycle")
    return sweeps


# ---------------------------------------------------------------------------
# fig9 end-to-end
# ---------------------------------------------------------------------------

def run_fig9_e2e(
    clients: int = 32, ramp_duration_s: float = 20.0, duration_s: float = 60.0
) -> int:
    """Scaled-down Figure 9 ramp-up; returns committed transactions."""
    from repro.analysis.scenarios import run_fig9_rampup

    result = run_fig9_rampup(
        seed=9,
        clients=clients,
        ramp_duration_s=ramp_duration_s,
        duration_s=duration_s,
    )
    commits = int(result.findings["commits"])
    if commits <= 0:
        raise RuntimeError("fig9 e2e run committed nothing")
    return commits


# ---------------------------------------------------------------------------
# service churn (threaded, wall-clock)
# ---------------------------------------------------------------------------

def run_service_churn(
    threads: int = 4,
    requests_per_thread: int = 2_000,
    total_memory_pages: int = 16_384,
    initial_locklist_pages: int = 128,
    tuner_interval_s: float = 0.05,
    ops: bool = False,
    span_sample_every: int = 64,
    waits: bool = False,
    broker: bool = False,
) -> int:
    """Closed-loop threaded load through the live LockService.

    Unlike the DES benches this one runs real threads against the
    wall-clock service stack -- mutex hand-off, condition-variable
    wakeups and the live tuner daemon included.  Measured across thread
    counts it answers "how does service throughput degrade as real
    concurrency rises" (under the GIL the coarse-mutex service cannot
    scale linearly; the interesting result is how gracefully req/s
    holds).  With ``ops=True`` the full observability plane rides along
    (metric registry, live /metrics HTTP endpoint on an ephemeral port,
    1-in-``span_sample_every`` request spans); paired against the
    ops-off run it measures the plane's overhead, which the contract
    caps at 5 % of median throughput.  ``waits=True`` additionally
    enables the wait-event profiler (latch try-acquire/spin path on
    every hot entry, wait-class histograms, blocker attribution) --
    paired the same way, with the same 5 % gate.  ``broker=True``
    enables the whole-memory broker (sortheap/hashjoin/pkgcache heaps,
    per-interval benefit estimation and block trading, the pressure
    state machine); paired against the broker-off run it bounds the
    arbitration cost at the same 5 % of median throughput.  Returns
    lock requests completed.
    """
    from repro.service.driver import LoadDriver
    from repro.service.stack import ServiceConfig, ServiceStack

    stack = ServiceStack(
        ServiceConfig(
            total_memory_pages=total_memory_pages,
            initial_locklist_pages=initial_locklist_pages,
            tuner_interval_s=tuner_interval_s,
            max_in_flight=max(4, threads),
            admission_queue_depth=4 * max(4, threads),
            ops_port=0 if ops else None,
            span_sample_every=span_sample_every if ops else 0,
            wait_profile=waits,
            broker=broker,
        )
    )
    with stack:
        report = LoadDriver(
            stack,
            threads=threads,
            requests_per_thread=requests_per_thread,
            seed=17,
        ).run()
    if report.worker_errors:
        raise RuntimeError(f"service churn workers failed: {report.worker_errors}")
    if report.lock_requests < threads * requests_per_thread:
        raise RuntimeError(
            f"service churn incomplete: {report.lock_requests} requests"
        )
    if stack.chain.used_slots != 0:
        raise RuntimeError("service churn leaked lock structures")
    stack.check_invariants()
    return report.lock_requests


def run_service_churn_sharded(
    threads: int = 4,
    shards: int = 4,
    requests_per_thread: int = 2_000,
    total_memory_pages: int = 16_384,
    initial_locklist_pages: int = 256,
    tuner_interval_s: float = 0.05,
    deadlock_interval_s: float = 0.02,
) -> int:
    """Closed-loop threaded load through the sharded service stack.

    Identical workload and completeness/accounting assertions as
    :func:`run_service_churn`, but resources are partitioned across
    ``shards`` lock managers so uncontended requests on different
    tables never touch the same mutex.  Four shards matches the CI
    smoke job; more shards only add routing/close fan-out on hosts
    with few cores.  The initial LOCKLIST is larger only because each
    shard needs at least one 128 KB block to seed.
    The cross-shard deadlock sweep (DLCHKTIME) is tightened to 20 ms:
    DB2's 10 s default assumes transactions lasting seconds, while this
    driver's transactions run in microseconds -- at the 250 ms service
    default a single cross-shard cycle parks its victims for most of a
    timed repetition, measuring the sweep period rather than the lock
    path.  Returns lock requests completed.
    """
    from repro.service.driver import LoadDriver
    from repro.service.sharded import ShardedServiceConfig, ShardedServiceStack

    stack = ShardedServiceStack(
        ShardedServiceConfig(
            total_memory_pages=total_memory_pages,
            initial_locklist_pages=initial_locklist_pages,
            tuner_interval_s=tuner_interval_s,
            deadlock_interval_s=deadlock_interval_s,
            max_in_flight=max(4, threads),
            admission_queue_depth=4 * max(4, threads),
            shards=shards,
        )
    )
    with stack:
        report = LoadDriver(
            stack,
            threads=threads,
            requests_per_thread=requests_per_thread,
            seed=17,
        ).run()
    if report.worker_errors:
        raise RuntimeError(
            f"sharded service churn workers failed: {report.worker_errors}"
        )
    if report.lock_requests < threads * requests_per_thread:
        raise RuntimeError(
            f"sharded service churn incomplete: {report.lock_requests} requests"
        )
    if stack.chain.used_slots != 0:
        raise RuntimeError("sharded service churn leaked lock structures")
    if stack.detector.crash is not None:
        raise RuntimeError(
            f"deadlock sweep crashed: {stack.detector.crash!r}"
        )
    stack.check_invariants()
    return report.lock_requests


def run_service_churn_net(
    threads: int = 1,
    workers: int = 1,
    requests_per_thread: int = 6_000,
    total_memory_pages: int = 16_384,
    initial_locklist_pages: int = 128,
    tuner_interval_s: float = 0.05,
    trace_sample_every: int = 0,
) -> int:
    """Closed-loop load over the wire against the worker-process pool.

    The same workload as :func:`run_service_churn`, but every lock
    request crosses a Unix-domain socket into one of ``workers``
    forked worker processes (each owning its own LockService shard),
    with the STMM arbiter, resize distribution and deadlock sweep
    running in the parent.  Measured against ``service_churn_t1`` it
    prices the wire (framing, syscalls, pipelined dispatch); measured
    across worker counts it answers whether process-per-shard buys
    throughput on the host.  On a single-core box the curve is flat --
    workers time-slice one CPU and the socket adds a constant tax --
    so the lanes gate on completeness and byte-exact cross-worker
    block accounting, not on scaling.  ``requests_per_thread`` is
    higher than the in-process lanes because pool forking and socket
    setup would otherwise dominate the timing.  With
    ``trace_sample_every > 0`` the distributed tracer rides along
    (1-in-N requests carry a trace context over the wire and both ends
    record hop timings); paired against the untraced run it prices the
    tracer, contractually <= 5 % of median throughput.  Returns lock
    requests completed.
    """
    from repro.service.driver import LoadDriver
    from repro.service.workers import WorkerPoolConfig, WorkerPoolStack

    stack = WorkerPoolStack(
        WorkerPoolConfig(
            total_memory_pages=total_memory_pages,
            initial_locklist_pages=initial_locklist_pages,
            tuner_interval_s=tuner_interval_s,
            max_in_flight=max(4, threads),
            admission_queue_depth=4 * max(4, threads),
            workers=workers,
            trace_sample_every=trace_sample_every,
        )
    )
    with stack:
        with stack.client_stack(pool_size=1) as net:
            report = LoadDriver(
                net,
                threads=threads,
                requests_per_thread=requests_per_thread,
                seed=17,
            ).run()
    if report.worker_errors:
        raise RuntimeError(
            f"net service churn workers failed: {report.worker_errors}"
        )
    if report.lock_requests < threads * requests_per_thread:
        raise RuntimeError(
            f"net service churn incomplete: {report.lock_requests} requests"
        )
    rec = stack.reconciliation
    if rec is None or not rec.ok:
        raise RuntimeError(f"net service churn reconcile failed: {rec}")
    if rec.expected_blocks != rec.reported_blocks:
        raise RuntimeError(
            f"net service churn block mismatch: expected "
            f"{rec.expected_blocks}, reported {rec.reported_blocks}"
        )
    if trace_sample_every > 0:
        sampled = sum(t.summary()["finished"] for t in stack.request_tracers)
        if sampled <= 0:
            raise RuntimeError("traced net churn recorded no traces")
    return report.lock_requests


# ---------------------------------------------------------------------------
# scenario matrix
# ---------------------------------------------------------------------------

def run_scenario_matrix(grid: str = "mini") -> int:
    """The scenario matrix engine as a bench lane; returns scenarios run.

    Expands the named grid (``mini`` in the smoke, see
    :mod:`repro.scenarios.grids`) and runs every scenario -- contention
    regimes, topology toggles, demand replays and the chaos lane --
    asserting that each verdict lands ``pass`` or ``expected-degraded``.
    A ``fail`` verdict raises, naming the scenario and the checks that
    broke, so the matrix rides in BENCH_SERVICE.json with
    self-describing params like every other lane.
    """
    from repro.scenarios import build_grid, run_matrix

    report = run_matrix(build_grid(grid))
    failed = [
        f"{result.spec.folder}: "
        + ", ".join(entry.name for entry in result.verdict.failed_checks)
        for result in report.results
        if not result.verdict.ok
    ]
    if failed:
        raise RuntimeError(f"scenario matrix failed: {failed}")
    return len(report.results)


# ---------------------------------------------------------------------------
# registry and scales
# ---------------------------------------------------------------------------

#: name -> (callable, unit of the returned op count)
BENCHES: Dict[str, tuple] = {
    "lock_churn": (run_lock_churn, "row_lock_requests"),
    "escalation_storm": (run_escalation_storm, "escalation_cycles"),
    "detector_sweep": (run_detector_sweep, "detector_passes"),
    "fig9_e2e": (run_fig9_e2e, "commits"),
    "service_churn_t1": (run_service_churn, "lock_requests"),
    "service_churn_t2": (run_service_churn, "lock_requests"),
    "service_churn_t4": (run_service_churn, "lock_requests"),
    "service_churn_t8": (run_service_churn, "lock_requests"),
    "service_churn_t8_ops": (run_service_churn, "lock_requests"),
    "service_churn_t8_waits": (run_service_churn, "lock_requests"),
    "service_churn_t8_broker": (run_service_churn, "lock_requests"),
    "service_churn_sharded_t1": (run_service_churn_sharded, "lock_requests"),
    "service_churn_sharded_t2": (run_service_churn_sharded, "lock_requests"),
    "service_churn_sharded_t4": (run_service_churn_sharded, "lock_requests"),
    "service_churn_sharded_t8": (run_service_churn_sharded, "lock_requests"),
    "service_churn_net_w1": (run_service_churn_net, "lock_requests"),
    "service_churn_net_w2": (run_service_churn_net, "lock_requests"),
    "service_churn_net_w2_traced": (run_service_churn_net, "lock_requests"),
    "service_churn_net_w4": (run_service_churn_net, "lock_requests"),
    "scenario_matrix_mini": (run_scenario_matrix, "scenarios"),
}

#: Baked-in per-lane configuration.  Kept as data (not lambda
#: closures) so the emitted JSON records the real topology of every
#: lane -- ``threads``/``shards``/``workers`` land in each bench
#: entry's ``params`` instead of an empty dict.
BENCH_BASE_PARAMS: Dict[str, Dict[str, Any]] = {
    "service_churn_t1": {"threads": 1},
    "service_churn_t2": {"threads": 2},
    "service_churn_t4": {"threads": 4},
    "service_churn_t8": {"threads": 8},
    "service_churn_t8_ops": {"threads": 8, "ops": True},
    "service_churn_t8_waits": {"threads": 8, "ops": True, "waits": True},
    "service_churn_t8_broker": {"threads": 8, "broker": True},
    "service_churn_sharded_t1": {"threads": 1, "shards": 4},
    "service_churn_sharded_t2": {"threads": 2, "shards": 4},
    "service_churn_sharded_t4": {"threads": 4, "shards": 4},
    "service_churn_sharded_t8": {"threads": 8, "shards": 4},
    "service_churn_net_w1": {"threads": 1, "workers": 1},
    "service_churn_net_w2": {"threads": 4, "workers": 2},
    "service_churn_net_w2_traced": {
        "threads": 4,
        "workers": 2,
        "trace_sample_every": 8,
    },
    "service_churn_net_w4": {"threads": 4, "workers": 4},
    "scenario_matrix_mini": {"grid": "mini"},
}

#: Parameter overrides per scale.  ``smoke`` is sized for CI: it must
#: exercise every code path in seconds, not produce stable timings.
SCALES: Dict[str, Dict[str, Dict[str, Any]]] = {
    "default": {
        "lock_churn": {},
        "escalation_storm": {},
        "detector_sweep": {},
        "fig9_e2e": {},
        "service_churn_t1": {},
        "service_churn_t2": {},
        "service_churn_t4": {},
        "service_churn_t8": {},
        "service_churn_t8_ops": {},
        "service_churn_t8_waits": {},
        "service_churn_t8_broker": {},
        "service_churn_sharded_t1": {},
        "service_churn_sharded_t2": {},
        "service_churn_sharded_t4": {},
        "service_churn_sharded_t8": {},
        "service_churn_net_w1": {},
        "service_churn_net_w2": {},
        "service_churn_net_w2_traced": {},
        "service_churn_net_w4": {},
        "scenario_matrix_mini": {},
    },
    "smoke": {
        "lock_churn": {"apps": 4, "tables": 2, "rows": 16, "iters": 1},
        "escalation_storm": {
            "holders": 128,
            "tables_per_holder": 4,
            "rows_per_table": 3,
            "cycles": 10,
        },
        "detector_sweep": {
            "groups": 8,
            "readers_per_group": 4,
            "writers_per_group": 2,
            "sweeps": 3,
        },
        "fig9_e2e": {"clients": 6, "ramp_duration_s": 5.0, "duration_s": 15.0},
        "service_churn_t1": {"requests_per_thread": 200},
        "service_churn_t2": {"requests_per_thread": 200},
        "service_churn_t4": {"requests_per_thread": 100},
        "service_churn_t8": {"requests_per_thread": 50},
        "service_churn_t8_ops": {"requests_per_thread": 50},
        "service_churn_t8_waits": {"requests_per_thread": 50},
        "service_churn_t8_broker": {"requests_per_thread": 50},
        "service_churn_sharded_t1": {"requests_per_thread": 200, "shards": 2},
        "service_churn_sharded_t2": {"requests_per_thread": 200, "shards": 2},
        "service_churn_sharded_t4": {"requests_per_thread": 100, "shards": 4},
        "service_churn_sharded_t8": {"requests_per_thread": 50, "shards": 4},
        "service_churn_net_w1": {"requests_per_thread": 200},
        "service_churn_net_w2": {"requests_per_thread": 100},
        "service_churn_net_w2_traced": {"requests_per_thread": 100},
        "service_churn_net_w4": {"requests_per_thread": 100},
        "scenario_matrix_mini": {},
    },
}


def bench_params(name: str, scale: str) -> Dict[str, Any]:
    """The kwargs a lane runs with: baked-in topology + scale overrides."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    params = dict(BENCH_BASE_PARAMS.get(name, {}))
    params.update(SCALES[scale].get(name, {}))
    return params
