"""Wall-clock microbenchmarks for the lock manager and DES hot paths.

Unlike ``benchmarks/bench_*.py`` (which reproduce the paper's *figures*
and measure simulated-time behaviour), this package measures how fast
the simulator itself runs: lock acquire/release churn, escalation
storms, deadlock-detector sweeps and one end-to-end scenario.  The
driver (``run.py``) emits ``BENCH_CORE.json`` so successive PRs get a
comparable performance trajectory.

Run with::

    PYTHONPATH=src python benchmarks/perf/run.py --out BENCH_CORE.json

See ``docs/PERFORMANCE.md`` for what each microbench stresses and how
to read the output.
"""
