"""Driver for the perf microbenchmarks: times the suite, emits JSON.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/perf/run.py --out BENCH_CORE.json
    PYTHONPATH=src python benchmarks/perf/run.py --scale smoke --repeats 1
    PYTHONPATH=src python benchmarks/perf/run.py --bench detector_sweep

Each microbench runs ``--repeats`` times (after one untimed warmup at
the default scale); per-repetition wall times yield ops/s plus p50/p95
wall-time percentiles.  The output JSON (schema below) is the repo's
performance trajectory record -- commit ``BENCH_CORE.json`` so future
PRs can be compared against it::

    {
      "schema": 1,
      "meta": {"timestamp": ..., "python": ..., "platform": ...,
               "git_rev": ..., "scale": ..., "repeats": ...},
      "benches": {
        "<name>": {
          "unit": "...", "ops": N, "params": {...},
          "wall_s": {"min": ..., "mean": ..., "p50": ..., "p95": ...},
          "ops_per_s": {"median": ..., "best": ...}
        }, ...
      }
    }
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from typing import Any, Dict, List

if __package__ in (None, ""):  # executed as a script
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import suite  # type: ignore
else:  # imported as benchmarks.perf.run
    from benchmarks.perf import suite  # type: ignore

SCHEMA_VERSION = 1


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 100])."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("no values")
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.stdout.strip() if out.returncode == 0 else "unknown"
    except OSError:
        return "unknown"


def _git_dirty() -> bool:
    """True when the working tree differs from HEAD (results would be
    attributed to a commit that does not contain the measured code)."""
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        return out.returncode == 0 and bool(out.stdout.strip())
    except OSError:
        return False


def _warn_missing_params(names: List[str], scale: str) -> None:
    """Flag lanes with no params block: they would silently run at the
    function defaults, which for a smoke scale means full-size work."""
    for name in names:
        if (
            name not in suite.BENCH_BASE_PARAMS
            and name not in suite.SCALES[scale]
        ):
            print(
                f"[perf] WARNING: bench {name!r} has no params block for "
                f"scale {scale!r}; running at function defaults",
                file=sys.stderr,
                flush=True,
            )


def time_bench(
    name: str, scale: str, repeats: int, warmup: bool = True
) -> Dict[str, Any]:
    """Run one microbench ``repeats`` times and summarize."""
    func, unit = suite.BENCHES[name]
    params = suite.bench_params(name, scale)
    if warmup:
        func(**params)
    walls: List[float] = []
    ops = 0
    for _ in range(repeats):
        started = time.perf_counter()
        ops = func(**params)
        walls.append(time.perf_counter() - started)
    median_wall = statistics.median(walls)
    return {
        "unit": unit,
        "ops": ops,
        "params": params,
        "repeats": repeats,
        "wall_s": {
            "min": min(walls),
            "mean": statistics.fmean(walls),
            "p50": _percentile(walls, 50),
            "p95": _percentile(walls, 95),
        },
        "ops_per_s": {
            "median": ops / median_wall if median_wall else 0.0,
            "best": ops / min(walls) if min(walls) else 0.0,
        },
    }


def run_suite(
    names: List[str], scale: str, repeats: int, warmup: bool = True
) -> Dict[str, Any]:
    benches: Dict[str, Any] = {}
    for name in names:
        print(f"[perf] {name} (scale={scale}, repeats={repeats}) ...", flush=True)
        summary = time_bench(name, scale, repeats, warmup=warmup)
        benches[name] = summary
        print(
            f"[perf] {name}: {summary['ops']} {summary['unit']} / rep, "
            f"p50 {summary['wall_s']['p50'] * 1000:.1f} ms, "
            f"median {summary['ops_per_s']['median']:,.0f} ops/s",
            flush=True,
        )
    return {
        "schema": SCHEMA_VERSION,
        "meta": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "git_rev": _git_rev() + ("-dirty" if _git_dirty() else ""),
            "scale": scale,
            "repeats": repeats,
        },
        "benches": benches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/perf/run.py",
        description="Time the lock-manager/DES microbenchmarks.",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=sorted(suite.BENCHES),
        help="run only this microbench (repeatable; default: all)",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=sorted(suite.SCALES),
        help="parameter scale (smoke = tiny CI sizes)",
    )
    parser.add_argument("--repeats", type=int, default=5, help="timed repetitions")
    parser.add_argument(
        "--no-warmup", action="store_true", help="skip the untimed warmup run"
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the JSON summary to PATH"
    )
    parser.add_argument(
        "--allow-dirty",
        action="store_true",
        help="write --out even when the git tree has uncommitted "
        "changes (the recorded git_rev gains a -dirty suffix)",
    )
    args = parser.parse_args(argv)
    if args.repeats <= 0:
        parser.error("--repeats must be positive")
    if args.out and not args.allow_dirty and _git_dirty():
        print(
            f"[perf] refusing to write {args.out}: the git tree is dirty, "
            "so the results could not be attributed to a commit.  Commit "
            "(or stash) first, or pass --allow-dirty to record anyway.",
            file=sys.stderr,
        )
        return 1

    names = args.bench or sorted(suite.BENCHES)
    _warn_missing_params(names, args.scale)
    result = run_suite(
        names, args.scale, args.repeats, warmup=not args.no_warmup
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[perf] wrote {args.out}")
    else:
        print(json.dumps(result, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
