#!/usr/bin/env python3
"""OLTP surge: the paper's Figure 10 scenario as a library walkthrough.

A steady 50-client OLTP system surges to 130 clients.  Watch the
adaptive controller's decisions as lock memory doubles within one
tuning interval -- with zero escalations -- then inspect the decision
log the controller keeps.

Run with::

    python examples/oltp_surge.py
"""

from repro import Database
from repro.analysis.ascii_chart import render_series
from repro.units import fmt_pages
from repro.workloads import ClientSchedule, OltpWorkload

SWITCH_AT_S = 120.0


def main() -> None:
    db = Database(seed=7)
    workload = OltpWorkload(
        db, ClientSchedule.step(50, 130, at=SWITCH_AT_S)
    )
    workload.start()
    db.run(until=300)

    pages = db.metrics["lock_pages"]
    before = pages.at(SWITCH_AT_S - 5)
    after = pages.last
    print(render_series(pages, title="Lock memory pages, 50->130 clients"))
    print()
    print(f"before surge : {fmt_pages(int(before))}")
    print(f"after surge  : {fmt_pages(int(after))} ({after / before:.2f}x)")
    print(f"escalations  : {db.lock_manager.stats.escalations.count}")

    # The controller logs every asynchronous decision it makes; the
    # interesting ones bracket the surge.
    controller = db.policy.controller
    print("\ncontroller decisions around the surge:")
    for decision in controller.decisions:
        if SWITCH_AT_S - 45 <= decision.time <= SWITCH_AT_S + 75:
            print(
                f"  t={decision.time:>6.0f}s {decision.reason:<22s}"
                f" current={decision.current_pages:>5d}p"
                f" used={decision.used_pages:>4d}p"
                f" free={decision.free_fraction:.0%}"
                f" -> target={decision.target_pages}p"
                f" (min {decision.min_pages}p)"
            )


if __name__ == "__main__":
    main()
