#!/usr/bin/env python3
"""DSS injection: the paper's Figure 11 scenario as a library walkthrough.

A reporting query with massive row-locking requirements lands on a
steady OLTP system.  The optimizer compiles it to *row* locking because
it consults the stable sqlCompilerLockMem view (10 % of databaseMemory)
rather than the tiny instantaneous allocation -- and the runtime tuner
then grows lock memory by tens of times within seconds, so the query
never escalates and OLTP keeps running.

Run with::

    python examples/dss_reporting_query.py          # ~1 minute
    python examples/dss_reporting_query.py --small  # a few seconds
"""

import sys

from repro import Database, DatabaseConfig, QueryOptimizer, TuningParameters
from repro.analysis.ascii_chart import render_two_series
from repro.units import fmt_pages
from repro.workloads import ClientSchedule, OltpWorkload, ReportingQuery

INJECT_AT_S = 90.0


def main(small: bool = False) -> None:
    rows = 60_000 if small else 500_000
    clients = 10 if small else 30
    config = DatabaseConfig(
        bufferpool_fraction=0.50,
        sort_fraction=0.10,
        hashjoin_fraction=0.05,
        pkgcache_fraction=0.03,
        overflow_goal_fraction=0.15,
    )
    db = Database(seed=3, config=config)

    # What will the optimizer do with this statement?  It consults the
    # *stable* compiler view, not the instantaneous lock memory.
    optimizer = QueryOptimizer(TuningParameters(), db.registry.total_pages)
    plan = optimizer.choose_lock_granularity(rows)
    print(f"optimizer plan for {rows:,} rows: {plan.granularity.value}")
    print(f"  ({plan.reason})")

    workload = OltpWorkload(db, ClientSchedule.constant(clients))
    workload.start()
    query = ReportingQuery(
        db, start_time_s=INJECT_AT_S, row_count=rows,
        acquisition_duration_s=40, hold_duration_s=30,
    )
    query.start()
    db.run(until=330)

    pages = db.metrics["lock_pages"]
    base = pages.at(INJECT_AT_S - 5)
    peak = pages.max()
    stats = db.lock_manager.stats
    print()
    print(
        render_two_series(
            db.metrics["commits"].rate().smooth(5),
            pages,
            title="OLTP throughput (*) and lock memory (o); "
            f"DSS query at t={INJECT_AT_S:.0f}s",
        )
    )
    print()
    print(f"lock memory before query : {fmt_pages(int(base))}")
    print(f"lock memory at peak      : {fmt_pages(int(peak))} "
          f"({peak / base:.1f}x, "
          f"{100 * peak / db.registry.total_pages:.1f}% of databaseMemory)")
    print(f"exclusive escalations    : {stats.escalations.exclusive_count}")
    print(f"query completed          : {query.result.completed} "
          f"({query.result.rows_locked:,} row locks)")
    print(f"MAXLOCKS range           : "
          f"{db.metrics['maxlocks_percent'].min():.1f}%"
          f"..{db.metrics['maxlocks_percent'].max():.1f}%")


if __name__ == "__main__":
    main(small="--small" in sys.argv)
