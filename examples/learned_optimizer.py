#!/usr/bin/env python3
"""Learning in query optimization (the paper's section 6.1 future work).

A recurring reporting statement carries a stale cardinality estimate:
the optimizer believes it touches 2,000 rows when it actually locks
60,000.  With the plain estimate-driven optimizer the statement always
compiles to row locking based on wrong numbers; the learning optimizer
corrects its lock estimate from execution feedback, so subsequent
compilations are made with the true demand -- and a statement whose
true demand exceeds even the stable compiler view flips to a table-lock
plan *at compile time* instead of escalating at runtime.

Run with::

    python examples/learned_optimizer.py
"""

from repro import Database, TuningParameters
from repro.analysis.report import format_table
from repro.core.learning import LearningQueryOptimizer
from repro.workloads import ClientSchedule, OltpWorkload, ReportingQuery


def main() -> None:
    db = Database(seed=17)
    workload = OltpWorkload(db, ClientSchedule.constant(10))
    workload.start()

    optimizer = LearningQueryOptimizer(
        TuningParameters(), db.registry.total_pages, smoothing=0.7
    )

    apriori_estimate = 2_000     # what the (stale) statistics claim
    actual_rows = 60_000         # what the statement really touches
    rows = []
    start = 30.0
    for execution in range(1, 6):
        effective = optimizer.effective_estimate("report-q7", apriori_estimate)
        choice = optimizer.choose_lock_granularity("report-q7", apriori_estimate)
        query = ReportingQuery(
            db, start_time_s=start, row_count=actual_rows,
            acquisition_duration_s=8, hold_duration_s=4,
            use_optimizer=False,  # we drive the plan choice ourselves
        )
        query.start()
        db.run(until=start + 20)
        optimizer.observe_execution("report-q7", apriori_estimate, actual_rows)
        rows.append([
            execution,
            apriori_estimate,
            effective,
            choice.granularity.value,
            actual_rows,
        ])
        start += 40.0

    print("Recurring statement with a stale 2,000-row estimate "
          "(true demand: 60,000 locks):\n")
    print(format_table(
        ["run", "a-priori est.", "estimate used", "plan", "actual locks"],
        rows,
    ))
    benefit = optimizer.learning_benefit("report-q7")
    print(f"\nestimation error removed by learning: {benefit:.0%}")
    stats = optimizer.statement_stats("report-q7")
    print(f"learned lock estimate after {stats.executions} runs: "
          f"{stats.learned_locks:,.0f}")


if __name__ == "__main__":
    main()
