#!/usr/bin/env python3
"""The paper's testbed: a combined TPCC + TPCH database.

Section 5: "The databases used a combined TPCC and TPCH schema in a
single database".  This example runs both sides at once against the
self-tuning lock memory:

* 40 TPC-C clients (new-order, payment, order-status, delivery,
  stock-level) provide the steady OLTP lock demand;
* a TPC-H-style query stream intermittently fires decision-support
  queries whose scans spike lock demand and whose sorts pressure the
  sort heap.

Watch lock memory breathe: each heavy query forces growth (synchronous
when the free band cannot absorb it), and delta_reduce relaxes the
allocation in the gaps -- with zero exclusive escalations throughout.

Run with::

    python examples/mixed_tpcc_tpch.py
"""

from repro import Database, DatabaseConfig
from repro.analysis.ascii_chart import render_two_series
from repro.units import fmt_pages
from repro.workloads import ClientSchedule, TpccMix, TpccWorkload, TpchQueryStream


def main() -> None:
    config = DatabaseConfig(overflow_goal_fraction=0.10)
    db = Database(seed=29, config=config)

    oltp = TpccWorkload(
        db,
        ClientSchedule.constant(40),
        mix=TpccMix(warehouses=4, think_time_mean_s=0.3),
    )
    oltp.start()

    from repro.workloads.tpch import Q_HEAVY, Q_MEDIUM

    dss = TpchQueryStream(
        db, start_time_s=60.0, stop_time_s=420.0,
        weights={Q_MEDIUM: 0.4, Q_HEAVY: 0.6},
        think_time_mean_s=30.0, scale=1.0,
    )
    dss.start()

    db.run(until=480)

    pages = db.metrics["lock_pages"]
    stats = db.lock_manager.stats
    print(
        render_two_series(
            db.metrics["commits"].rate().smooth(5),
            pages,
            title="Combined TPCC (throughput, *) + TPCH (lock memory, o)",
        )
    )
    print()
    print(f"TPC-C transactions committed : {oltp.commits}")
    print("TPC-C profile mix            :", dict(sorted(
        oltp.profile_counts().items())))
    print(f"TPC-H queries completed      : {dss.completed_count()} "
          f"{dict(sorted(dss.profile_counts().items()))}")
    print(f"lock memory peak             : {fmt_pages(int(pages.max()))}")
    print(f"lock memory final            : {fmt_pages(int(pages.last))}")
    print(f"escalations                  : {stats.escalations.count} "
          f"(exclusive {stats.escalations.exclusive_count})")
    print(f"synchronous growth           : {stats.sync_growth_blocks} blocks")
    print(f"deadlocks                    : {stats.deadlocks}")


if __name__ == "__main__":
    main()
