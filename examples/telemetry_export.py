#!/usr/bin/env python3
"""Record, export and replay a run's full telemetry.

Runs a short contended OLTP burst with telemetry enabled, prints the
live lock-wait percentiles and the per-run report, writes the whole
run as one JSONL stream to a temporary file, reloads it, and shows
that the reloaded stream answers the same questions -- identical event
counts, decision log and wait-latency percentiles -- entirely offline.

Run with::

    python examples/telemetry_export.py
"""

import os
import tempfile

from repro import Database, DatabaseConfig, RunTelemetry
from repro.analysis.report import RunReport
from repro.workloads.oltp import OltpWorkload, heavy_mix
from repro.workloads.schedule import ClientSchedule


def main() -> None:
    db = Database(
        seed=23,
        config=DatabaseConfig(total_memory_pages=16_384,
                              initial_locklist_pages=96),
    )
    db.enable_telemetry()

    workload = OltpWorkload(
        db, ClientSchedule.ramp(1, 40, start=0.0, duration=20.0),
        mix=heavy_mix(),
    )
    workload.start()
    db.run(until=90)

    telemetry = db.telemetry(label="telemetry-demo")
    print(telemetry)
    waits = telemetry.wait_latency()
    if waits is not None and waits.count:
        summary = waits.summary()
        print(f"lock waits: {summary['count']} "
              f"(p50={summary['p50']:.3f}s p95={summary['p95']:.3f}s "
              f"p99={summary['p99']:.3f}s)")

    print()
    print(RunReport.from_telemetry(telemetry).render())

    fd, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    try:
        records = telemetry.write_jsonl(path)
        print(f"\nexported {records} records to {path} "
              f"({os.path.getsize(path)} bytes)")

        reloaded = RunTelemetry.from_jsonl(path)
        print(f"reloaded: {reloaded}")
        assert reloaded.event_counts() == telemetry.event_counts()
        assert reloaded.decision_count == telemetry.decision_count
        original, restored = telemetry.wait_latency(), reloaded.wait_latency()
        if original is not None and original.count:
            assert restored.p95 == original.p95
            print(f"round trip exact: p95 {restored.p95:.3f}s == "
                  f"{original.p95:.3f}s, "
                  f"{reloaded.decision_count} decisions, "
                  f"{sum(reloaded.event_counts().values())} events")
    finally:
        os.remove(path)


if __name__ == "__main__":
    main()
