#!/usr/bin/env python3
"""Quickstart: self-tuning lock memory in thirty lines.

Builds a simulated 512 MB database with the paper's adaptive lock
memory policy, runs 50 OLTP clients for five simulated minutes, and
prints what the tuner did.

Run with::

    python examples/quickstart.py
"""

from repro import Database
from repro.analysis.ascii_chart import render_two_series
from repro.units import fmt_pages
from repro.workloads import ClientSchedule, OltpWorkload


def main() -> None:
    # A Database wires together the shared memory registry (bufferpool,
    # sort, hash join, package cache, lock list + overflow), the lock
    # manager and the STMM tuning loop.  The default policy is the
    # paper's adaptive algorithm.
    db = Database(seed=42)
    print("policy:", db.policy.describe())

    workload = OltpWorkload(db, ClientSchedule.constant(50))
    workload.start()
    db.run(until=300)  # five simulated minutes

    pages = db.metrics["lock_pages"]
    stats = db.lock_manager.stats
    print()
    print(f"transactions committed : {db.commits}")
    print(f"lock memory            : {fmt_pages(int(pages.last))}")
    print(f"lock escalations       : {stats.escalations.count}")
    print(f"deadlocks              : {stats.deadlocks}")
    print(f"synchronous growths    : {stats.sync_growth_blocks} blocks")
    print()
    print(
        render_two_series(
            db.metrics["commits"].rate().smooth(5),
            pages,
            title="Throughput (*) and lock memory pages (o)",
        )
    )


if __name__ == "__main__":
    main()
