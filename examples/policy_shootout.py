#!/usr/bin/env python3
"""Policy shoot-out: the paper's algorithm vs the section 2.3 baselines.

Runs an identical workload -- a client surge plus a reporting query --
under three lock-memory policies:

* ``db2-adaptive``   -- the paper's self-tuning algorithm,
* ``static``         -- a fixed 2 MB LOCKLIST with 10 % MAXLOCKS,
* ``sqlserver-2005`` -- grow-only memory with the unconditional
  5000-locks-per-application escalation trigger.

Run with::

    python examples/policy_shootout.py
"""

from repro import Database, DatabaseConfig
from repro.analysis.report import format_table
from repro.baselines import SqlServer2005Policy, StaticLocklistPolicy
from repro.core.policy import AdaptiveLockMemoryPolicy
from repro.workloads import ClientSchedule, OltpWorkload, ReportingQuery


def run_policy(name, policy):
    config = DatabaseConfig(overflow_goal_fraction=0.10)
    db = Database(seed=11, config=config, policy=policy)
    workload = OltpWorkload(db, ClientSchedule.step(20, 40, at=60))
    workload.start()
    query = ReportingQuery(
        db, start_time_s=120, row_count=120_000,
        acquisition_duration_s=20, hold_duration_s=20,
    )
    query.start()
    db.run(until=240)
    stats = db.lock_manager.stats
    return [
        name,
        stats.escalations.count,
        stats.escalations.exclusive_count,
        stats.lock_list_full_errors,
        db.commits,
        int(db.metrics["lock_pages"].max()),
        query.result.completed if query.result else False,
    ]


def main() -> None:
    rows = [
        run_policy("db2-adaptive", AdaptiveLockMemoryPolicy()),
        run_policy(
            "static-2MB-10pct",
            StaticLocklistPolicy(locklist_pages=512, maxlocks_fraction=0.10),
        ),
        run_policy("sqlserver-2005", SqlServer2005Policy()),
    ]
    print("Same workload (20->40 client surge + 120k-row reporting query):\n")
    print(
        format_table(
            ["policy", "escalations", "exclusive", "errors", "commits",
             "peak_lock_pages", "query_ok"],
            rows,
        )
    )
    best = max(rows, key=lambda r: r[4])
    print(f"\nhighest throughput: {best[0]}")


if __name__ == "__main__":
    main()
