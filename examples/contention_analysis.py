#!/usr/bin/env python3
"""Contention diagnosis with lock tracing on a TPC-C workload.

Runs a single-warehouse TPC-C population with structured lock tracing
enabled, then builds a contention report: the classic result is that
the warehouse row (X-updated by every payment transaction) dominates
the wait time, with the ten district rows next.

Run with::

    python examples/contention_analysis.py
"""

from repro import Database, DatabaseConfig, LockTrace
from repro.analysis.contention import ContentionReport, resource_timeline
from repro.workloads.schedule import ClientSchedule
from repro.workloads.tpcc import TpccMix, TpccTable, TpccWorkload


def main() -> None:
    db = Database(seed=41, config=DatabaseConfig(total_memory_pages=16_384))
    db.lock_manager.tracer = LockTrace(capacity=None)

    workload = TpccWorkload(
        db,
        ClientSchedule.constant(12),
        mix=TpccMix(warehouses=1, think_time_mean_s=0.05),
    )
    workload.start()
    db.run(until=120)

    print(f"committed {workload.commits} transactions "
          f"({workload.rollbacks} rollbacks)\n")
    print("transaction mix executed:")
    for name, count in sorted(workload.profile_counts().items()):
        print(f"  {name:<14s} {count}")

    report = ContentionReport.from_trace(db.lock_manager.tracer)
    print()
    print(report.render(n=8))

    print("\nwait time per table:")
    names = {f"T{tid}": name for tid, name in TpccTable.NAMES.items()}
    for table, wait in sorted(
        report.table_hotspots().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {names.get(table, table):<12s} {wait:>10.2f}s")

    hottest = report.hottest_resources(1)
    if hottest:
        hot = hottest[0].resource
        timeline = resource_timeline(db.lock_manager.tracer, hot)
        print(f"\ndrill-down: last events on hottest resource {hot} "
              f"({len(timeline)} retained):")
        for event in timeline[-6:]:
            print(f"  {event}")

    print("\nlast few lock events:")
    print(db.lock_manager.tracer.tail(6))


if __name__ == "__main__":
    main()
