#!/usr/bin/env python3
"""Live lock service: the paper's tuner on wall-clock time.

Everything the simulation studies -- the lock manager, synchronous
growth, escalation, the adaptive MAXLOCKS curve, STMM tuning -- also
runs as a real, thread-safe service: worker threads take locks through
``LockService`` while the ``TunerDaemon`` resizes lock memory in the
background on actual seconds.

This demo starts a small stack (16 MB database memory, one 128 KB lock
block), drives it with four concurrent closed-loop clients whose
transactions are far too big for the initial LOCKLIST, and prints what
the live tuner did about it.

Run with::

    python examples/live_lock_service.py
"""

from repro.engine.transactions import TransactionMix
from repro.service import LoadDriver, ServiceConfig, ServiceStack
from repro.units import fmt_pages


def main() -> None:
    config = ServiceConfig(
        total_memory_pages=4_096,        # 16 MB databaseMemory
        initial_locklist_pages=32,       # one block: 2048 lock structures
        tuner_interval_s=0.1,            # STMM pass every 100 ms (demo speed)
        max_in_flight=8,
    )
    stack = ServiceStack(config)
    print(
        f"live lock service: {config.total_memory_pages * 4 // 1024} MB "
        f"database memory, LOCKLIST starting at "
        f"{fmt_pages(stack.chain.allocated_pages)}"
    )

    mix = TransactionMix(
        locks_per_txn_mean=800.0,        # huge transactions: memory pressure
        think_time_mean_s=0.0,
        work_time_per_lock_s=0.0,
        rows_per_table=200_000,
        write_fraction=0.2,
    )
    with stack:
        driver = LoadDriver(
            stack, mix=mix, threads=4, requests_per_thread=2_000, seed=7
        )
        report = driver.run()

    stats = stack.service.manager.stats
    print()
    print(f"lock requests          : {report.lock_requests}")
    print(f"throughput             : {report.requests_per_s:,.0f} requests/s")
    print(f"transactions committed : {report.commits}")
    print(
        f"rollbacks              : {report.rollbacks_deadlock} deadlock, "
        f"{report.rollbacks_timeout} timeout"
    )
    print(f"lock memory now        : {fmt_pages(stack.chain.allocated_pages)}")
    print(f"tuner intervals run    : {stack.tuner.intervals_run}")
    print(f"synchronous growths    : {stats.sync_growth_blocks} blocks")
    print(f"lock escalations       : {stats.escalations.count}")

    print()
    print("last tuning decisions:")
    for decision in stack.controller.decisions[-4:]:
        print(
            f"  t={decision.time:6.2f}s  {decision.current_pages:4d} -> "
            f"{decision.target_pages:4d} pages  "
            f"(free {decision.free_fraction:.0%}, {decision.reason})"
        )

    # exact accounting at shutdown: nothing leaked anywhere
    stack.check_invariants()
    assert stack.chain.used_slots == 0
    print()
    print("shutdown accounting exact: 0 structures leaked")


if __name__ == "__main__":
    main()
