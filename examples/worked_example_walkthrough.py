#!/usr/bin/env python3
"""The paper's section 4 worked example, narrated step by step.

Drives the controller + STMM through the exact T0..Tn timeline of
Figure 6 -- steady state, an absorbed surge, a 267 % surge served
partly from overflow, reconciliation, slump and slow relaxation --
printing the memory layout at each step.

Run with::

    python examples/worked_example_walkthrough.py
"""

from repro.analysis.scenarios import run_fig6_worked_example


def main() -> None:
    result = run_fig6_worked_example()
    print("Section 4 worked example (percent of databaseMemory):\n")
    print(f"{'t':>6} {'allocated':>10} {'used':>7} {'overflow':>9} {'bufferpool':>11}")
    rows = result.metrics.to_rows()
    for t, row in rows:
        print(
            f"{t:>6.0f} {row['lock_pages_pct']:>9.2f}% "
            f"{row['lock_used_pct']:>6.2f}% "
            f"{row['overflow_pct']:>8.2f}% "
            f"{row['bufferpool_pct']:>10.2f}%"
        )
    print()
    print("What happened:")
    print(
        " T0   steady state: 4% allocated, half used (minFreeLockMemory=50%)\n"
        " T1   usage surged 2%->3%: absorbed by the free half, no sync growth:",
        result.finding("t1_absorbed_without_sync_growth"),
    )
    print(
        f" T2   STMM grew the allocation to {result.finding('t2_alloc_pct'):.1f}% "
        "to restore the 50%-free objective"
    )
    print(
        " T3   usage surged 267% (3%->8%): the excess came synchronously\n"
        "      from overflow memory, which dropped to "
        f"{result.finding('t3_overflow_reduced_pct'):.1f}%"
    )
    print(
        " T4   next interval: donor heaps shrank, overflow restored to "
        f"{result.finding('t4_overflow_restored_pct'):.1f}% (its goal)"
    )
    print(
        f" T5   usage slumped back to 2%; allocation momentarily "
        f"{result.finding('t5_alloc_pct'):.1f}%"
    )
    print(
        f" T6+  delta_reduce relaxation: "
        f"{result.finding('per_interval_shrink_fraction'):.0%} per interval over "
        f"{result.finding('shrink_intervals')} intervals, settling at "
        f"{result.finding('final_alloc_pct'):.1f}% "
        "(the maxFreeLockMemory-free state)"
    )


if __name__ == "__main__":
    main()
