#!/usr/bin/env python3
"""Batch rollout: the section 3.4 motivation for slow shrinking.

"Occasional batch processing of updates, inserts and deletes (rollout)
... can lead to a time limited need for a very large number of locks
that are not required during other operational periods."

A nightly-style batch update spikes lock memory; after it commits the
allocation relaxes by delta_reduce per interval instead of staying
pinned at the peak -- so the memory goes back to the bufferpool.

Run with::

    python examples/batch_rollout.py
"""

from repro import Database
from repro.analysis.ascii_chart import render_two_series
from repro.units import fmt_pages
from repro.workloads import BatchUpdateJob, ClientSchedule, OltpWorkload
from repro.workloads.oltp import standard_mix


def main() -> None:
    db = Database(seed=13)
    # a light OLTP background load
    workload = OltpWorkload(
        db,
        ClientSchedule.constant(10),
        mix=standard_mix(locks_per_txn_mean=30),
    )
    workload.start()
    # the batch job: 60k X row locks over ~20 simulated seconds
    job = BatchUpdateJob(db, start_time_s=60, row_count=60_000, duration_s=20)
    job.start()
    db.run(until=600)

    pages = db.metrics["lock_pages"]
    bufferpool = db.metrics["bufferpool_pages"]
    print(
        render_two_series(
            pages, bufferpool,
            title="Lock memory (*) vs bufferpool (o): batch spike at t=60s, "
            "then relaxation",
        )
    )
    peak = pages.max()
    print()
    print(f"batch completed    : {job.result.completed} "
          f"({job.result.rows_updated:,} rows, escalated={job.result.escalated})")
    print(f"lock memory peak   : {fmt_pages(int(peak))}")
    print(f"lock memory final  : {fmt_pages(int(pages.last))} "
          f"({pages.last / peak:.0%} of peak)")
    print(f"escalations        : {db.lock_manager.stats.escalations.count}")
    print("\nThe freed pages were handed back to the neediest consumers --")
    print("watch the bufferpool curve recover as lock memory relaxes.")


if __name__ == "__main__":
    main()
