#!/usr/bin/env python
"""CI smoke for end-to-end distributed tracing.

Launches the 2-worker networked stress (``--net --workers 2``) with
1-in-8 request tracing and the ops plane enabled, polls the running
process's ``/traces`` over real HTTP until at least one complete
multi-hop trace is visible from outside, asserts every recorded hop
name belongs to the closed hop vocabulary and that each trace's hop
sum lands within 10 % of its end-to-end latency, then waits for the
clean shutdown (the stress CLI exits non-zero on any accounting
violation).

Deliberately no timing gates: the poll retries until a sampled request
has completed its round trip, and the only assertions are on *state*
-- traces present, hop names in vocabulary, hops consistent with the
measured total, worker span rings visible, exit code zero.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/trace_smoke.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

from repro.obs.tracing import HOP_NAMES

WORKERS = 2
SAMPLE_EVERY = 8
LOAD_SECONDS = 15.0
POLL_DEADLINE_S = 60.0

_URL_RE = re.compile(r"ops plane: (http://[\d.]+:\d+)")


def _get_json(url: str) -> tuple:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, json.loads(resp.read().decode())


def _poll_traces(base: str) -> dict:
    """Retry /traces until a complete multi-hop trace is visible."""
    deadline = time.monotonic() + POLL_DEADLINE_S
    payload: dict = {}
    while time.monotonic() < deadline:
        try:
            status, payload = _get_json(base + "/traces")
        except (urllib.error.URLError, OSError, ValueError):
            time.sleep(0.2)
            continue
        assert status == 200, f"/traces returned {status}"
        if any(len(tr["hops"]) > 1 for tr in payload.get("traces", [])):
            return payload
        time.sleep(0.2)
    raise AssertionError(
        f"no complete multi-hop trace appeared on /traces: {payload}"
    )


def main() -> int:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.cli", "stress",
            "--net", "--workers", str(WORKERS),
            "--threads", "4", "--requests", "1000000",
            "--duration", str(LOAD_SECONDS),
            "--trace-sample", str(SAMPLE_EVERY),
            "--ops-port", "0",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        base = None
        for line in proc.stdout:
            print(line, end="", flush=True)
            match = _URL_RE.search(line)
            if match:
                base = match.group(1)
                break
        assert base, "stress never announced its ops plane URL"

        payload = _poll_traces(base)
        assert payload["enabled"] is True, payload
        assert payload["sample_every"] == SAMPLE_EVERY, payload
        traces = payload["traces"]
        print(f"[trace-smoke] {len(traces)} end-to-end traces on {base}")

        vocabulary = set(HOP_NAMES)
        complete = 0
        for tr in traces:
            hops = tr["hops"]
            stray = set(hops) - vocabulary
            assert not stray, f"hop names outside vocabulary: {stray}"
            if set(hops) != vocabulary:
                continue  # server leg missing: fell back to net_wait only
            complete += 1
            hop_sum = sum(hops.values())
            total = tr["total_s"]
            assert total > 0, f"non-positive trace total: {tr}"
            assert abs(hop_sum - total) <= 0.10 * total, (
                f"hop sum {hop_sum:.6f}s vs end-to-end {total:.6f}s "
                f"diverges beyond 10 %: {tr}"
            )
        assert complete >= 1, f"no trace covered the full wire path: {traces}"
        print(f"[trace-smoke] {complete} complete traces; every hop in the "
              f"closed vocabulary; hop sums within 10 % of end-to-end")

        spans = payload["server_spans"]
        recorded = sum(
            ring["summary"]["recorded"] for ring in spans.values()
        )
        assert recorded >= 1, f"no worker recorded a server span: {spans}"
        ring_counts = {w: s["summary"]["recorded"] for w, s in spans.items()}
        print(f"[trace-smoke] worker span rings: {ring_counts}")

        summary = payload["summary"]
        assert summary.get("hops"), f"per-hop summary missing: {summary}"
        tax = summary.get("wire_tax", {})
        assert 0.0 <= tax.get("fraction", -1.0) <= 1.0, summary
        print(f"[trace-smoke] wire tax {tax['fraction']:.0%} "
              f"(net {tax['net_s']:.4f}s vs lock {tax['lock_s']:.4f}s)")
    finally:
        out, _ = proc.communicate(timeout=300)
        print(out, end="", flush=True)
    assert proc.returncode == 0, f"stress exited {proc.returncode}"
    print("[trace-smoke] clean shutdown, exact accounting verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
