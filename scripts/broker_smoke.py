#!/usr/bin/env python
"""CI smoke for the whole-memory broker under an undersized budget.

Runs the threaded lock-service stress with ``broker=True`` and a
``DATABASE_MEMORY`` deliberately smaller than the aggregate demand of
its consumers (bufferpool + sortheap + hashjoin + pkgcache + LOCKLIST
+ the overflow goal), so the pressure score sits above the throttle
threshold by construction.  Broker intervals are driven synchronously
with ``tune_now()`` -- both while the load runs and after it drains --
so every assertion is on *state*, never on timing:

* at least one ``trade-benefit`` and one ``pressure-throttle`` record
  in the broker audit ring,
* the admission posture actually actuated (in-flight limit reduced
  from the configured value while pressure was high),
* byte-exact page accounting at shutdown: the heap sizes plus the
  free pool sum to ``DATABASE_MEMORY`` to the page, the LOCKLIST heap
  matches the physical block chain, and zero
  ``MemoryAccountingError`` was raised anywhere (a broker crash would
  freeze the tuner; a registry violation would fail the final sweep).

Usage (from the repository root)::

    PYTHONPATH=src python scripts/broker_smoke.py
"""

from __future__ import annotations

import sys
import threading

from repro.service.cli import _check_shutdown_accounting
from repro.service.driver import LoadDriver
from repro.service.stack import ServiceConfig, ServiceStack

#: Small enough that the default WorkloadProfile's demands (bufferpool
#: hit-curve knee, typical sort + build fits, full statement cache)
#: exceed the budget; large enough for every heap's starting share.
TOTAL_PAGES = 2_048
THREADS = 8
REQUESTS_PER_THREAD = 400
INTERVALS_DURING_LOAD = 4
INTERVALS_AFTER_LOAD = 6
MAX_IN_FLIGHT = 8


def main() -> int:
    cfg = ServiceConfig(
        total_memory_pages=TOTAL_PAGES,
        initial_locklist_pages=128,
        tuner_interval_s=3600.0,  # intervals driven via tune_now() only
        max_in_flight=MAX_IN_FLIGHT,
        broker=True,
    )
    stack = ServiceStack(cfg)
    broker = stack.broker
    assert broker is not None, "broker=True built no broker"
    score = broker.pressure_score()
    assert score > broker.pressure.config.throttle_enter, (
        f"budget not undersized: pressure {score:.3f} <= "
        f"{broker.pressure.config.throttle_enter} -- shrink TOTAL_PAGES"
    )
    print(f"[broker-smoke] budget {TOTAL_PAGES} pages, "
          f"initial pressure {score:.3f}")

    failures = []
    min_in_flight_seen = MAX_IN_FLIGHT
    with stack:
        driver = LoadDriver(
            stack,
            threads=THREADS,
            requests_per_thread=REQUESTS_PER_THREAD,
            seed=0,
            admission_timeout_s=60.0,
        )
        worker = threading.Thread(target=lambda: setattr(
            driver, "report", driver.run()), name="broker-smoke-load")
        worker.start()
        # Arbitration passes while real lock traffic is in flight: the
        # posture machine escalates one rung per interval, so by the
        # second pass the admission door is throttled under load.
        for _ in range(INTERVALS_DURING_LOAD):
            stack.tuner.tune_now()
            min_in_flight_seen = min(
                min_in_flight_seen, stack.admission.max_in_flight
            )
        worker.join()
        report = driver.report
        # Passes after the load drains: locklist demand relaxes, and
        # trading continues until benefits equalize.
        for _ in range(INTERVALS_AFTER_LOAD):
            stack.tuner.tune_now()
        if stack.tuner.frozen:
            failures.append(
                f"tuner froze mid-run: {stack.tuner.frozen_reason}"
            )

        reasons = stack.broker.audit.reasons()
        status = stack.broker.status(audit_tail=0)
        print(f"[broker-smoke] load: {report.lock_requests} lock requests, "
              f"{report.commits} commits, "
              f"{report.admission_sheds} admission sheds")
        print(f"[broker-smoke] broker: {status['intervals']} intervals, "
              f"{status['trades']} trades ({status['pages_traded']} pages), "
              f"posture {status['posture']}, "
              f"pressure {status['pressure']:.3f}, "
              f"free {status['free_pages']} pages")
        print(f"[broker-smoke] audit reasons seen: {sorted(set(reasons))}")
        if "trade-benefit" not in reasons:
            failures.append("no trade-benefit record in the broker audit")
        if "pressure-throttle" not in reasons:
            failures.append("no pressure-throttle record in the broker audit")
        if min_in_flight_seen >= MAX_IN_FLIGHT:
            failures.append(
                "admission in-flight limit never reduced under pressure"
            )
        else:
            print(f"[broker-smoke] admission actuated: in-flight limit "
                  f"dipped to {min_in_flight_seen} (configured "
                  f"{MAX_IN_FLIGHT})")

        # Byte-exact conservation before shutdown: snapshot() re-proves
        # total == sum(heaps) + overflow and raises on any violation.
        snapshot = stack.registry.snapshot()
        if sum(snapshot.values()) != TOTAL_PAGES:
            failures.append(
                f"pages not conserved: {sum(snapshot.values())} != "
                f"{TOTAL_PAGES} ({snapshot})"
            )
        else:
            print(f"[broker-smoke] conservation: "
                  f"sum(heaps) + free == {TOTAL_PAGES} pages exactly")

    failures.extend(_check_shutdown_accounting(stack))
    if failures:
        for failure in failures:
            print(f"[broker-smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[broker-smoke] clean shutdown, exact accounting verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
