#!/usr/bin/env python
"""CI smoke for the live ops plane.

Launches the sharded service under sustained load with ``--ops-port``
and ``--wait-profile``, scrapes the running process's ``/metrics``,
``/healthz``, ``/stmm`` and ``/incidents`` over real HTTP, asserts the
per-shard labeled series (including wait-class histograms and latch
counters) and tuner liveness are visible from outside, then waits for
the clean shutdown (the stress CLI exits non-zero on any accounting
violation).

Deliberately no timing gates: the scrape retries until the load has
touched every shard, and the only assertions are on *state* -- series
present, tuner alive, audit non-empty, exit code zero.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/ops_smoke.py
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

SHARDS = 4
LOAD_SECONDS = 15.0
SCRAPE_DEADLINE_S = 60.0

_URL_RE = re.compile(r"ops plane: (http://[\d.]+:\d+)")


def _get(url: str) -> tuple:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.read().decode()


def _scrape_until_ready(base: str) -> tuple:
    """Retry /metrics until every shard's request series has appeared."""
    want = {f'service_requests_total{{shard="{s}"}}' for s in range(SHARDS)}
    deadline = time.monotonic() + SCRAPE_DEADLINE_S
    text = ""
    while time.monotonic() < deadline:
        try:
            _, text = _get(base + "/metrics")
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
            continue
        if all(series in text for series in want):
            return text, want
        time.sleep(0.2)
    missing = sorted(s for s in want if s not in text)
    raise AssertionError(f"per-shard series never appeared: {missing}")


def main() -> int:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service.cli", "stress",
            "--threads", "4", "--requests", "1000000",
            "--duration", str(LOAD_SECONDS),
            "--shards", str(SHARDS),
            "--ops-port", "0", "--span-sample", "16",
            "--wait-profile",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        base = None
        for line in proc.stdout:
            print(line, end="", flush=True)
            match = _URL_RE.search(line)
            if match:
                base = match.group(1)
                break
        assert base, "stress never announced its ops plane URL"

        metrics, want = _scrape_until_ready(base)
        print(f"[ops-smoke] all {SHARDS} shard series visible at {base}")
        assert "shard_used_slots{" in metrics, "per-shard occupancy missing"
        assert "service_locklist_pages" in metrics, "posture gauge missing"
        assert "service_wait_seconds_count{" in metrics, (
            "wait-class histogram series missing with --wait-profile"
        )
        assert 'latch_gets{shard="0"}' in metrics, (
            "per-shard latch counters missing"
        )
        # Retry until some wait completes somewhere -- the series are
        # pre-created at zero, and the first scrape can land before the
        # contended load has produced a single finished wait.
        count_re = re.compile(
            r"service_wait_seconds_count\{[^}]*\} (\d+(?:\.\d+)?)"
        )
        deadline = time.monotonic() + SCRAPE_DEADLINE_S
        while True:
            counts = [float(c) for c in count_re.findall(metrics)]
            if any(c > 0 for c in counts):
                break
            assert time.monotonic() < deadline, (
                "every wait-class series stayed empty under contended load"
            )
            time.sleep(0.2)
            _, metrics = _get(base + "/metrics")
        print("[ops-smoke] wait-class series non-empty, latch series visible")

        status, body = _get(base + "/healthz")
        health = json.loads(body)
        assert status == 200 and health["ok"], f"unhealthy: {health}"
        assert health["tuner"]["alive"], f"tuner not alive: {health}"
        assert not health["tuner"]["frozen"], f"tuner frozen: {health}"
        assert health["shards"] == SHARDS, f"shard count: {health}"
        print("[ops-smoke] /healthz ok, tuner alive")

        deadline = time.monotonic() + SCRAPE_DEADLINE_S
        while True:
            _, body = _get(base + "/stmm")
            stmm = json.loads(body)
            if stmm["intervals"] > 0 and stmm["audit"]:
                break
            assert time.monotonic() < deadline, f"tuner never ran: {stmm}"
            time.sleep(0.2)
        reasons = {entry["reason"] for entry in stmm["audit"]}
        print(f"[ops-smoke] /stmm: {stmm['intervals']} intervals, "
              f"reasons seen: {sorted(reasons)}")
        assert "params" in stmm and "min_free_fraction" in stmm["params"], (
            f"controller constants missing from /stmm: {stmm.keys()}"
        )
        assert stmm.get("wait_classes"), "wait_classes absent from /stmm"

        status, body = _get(base + "/incidents")
        assert status == 200, f"/incidents returned {status}"
        incidents = json.loads(body)
        assert set(incidents) == {"total", "counts", "incidents"}, incidents
        # Ring-bounded: the lifetime total can exceed what is held.
        assert incidents["total"] >= len(incidents["incidents"]), incidents
        print(f"[ops-smoke] /incidents reachable: "
              f"{incidents['total']} captured ({incidents['counts']})")

        # Tracing is off in this run: /traces must still answer 200
        # with the empty-but-valid payload shape, not 404 or an error.
        status, body = _get(base + "/traces")
        assert status == 200, f"/traces returned {status}"
        traces = json.loads(body)
        assert traces["enabled"] is False, traces
        assert traces["total"] == 0 and traces["traces"] == [], traces
        assert set(traces) >= {
            "enabled", "sample_every", "total", "truncated",
            "traces", "server_spans", "summary",
        }, f"/traces payload missing keys: {sorted(traces)}"
        print("[ops-smoke] /traces empty-but-valid with tracing off")
    finally:
        # Drain the remaining output so the stress process can finish
        # its report and shut down cleanly.
        out, _ = proc.communicate(timeout=300)
        print(out, end="", flush=True)
    assert proc.returncode == 0, f"stress exited {proc.returncode}"
    print("[ops-smoke] clean shutdown, exact accounting verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
