"""Tests for isolation levels and early read-lock release."""

import pytest

from repro.engine.client import Client
from repro.engine.transactions import TransactionMix
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.isolation import IsolationLevel
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode
from repro.lockmgr.resources import row_resource
from tests.conftest import make_database, run_process


class TestIsolationLevel:
    def test_read_lock_taking(self):
        assert not IsolationLevel.UR.takes_read_locks
        assert IsolationLevel.CS.takes_read_locks
        assert IsolationLevel.RR.takes_read_locks

    def test_read_lock_holding(self):
        assert not IsolationLevel.CS.holds_read_locks_to_commit
        assert IsolationLevel.RS.holds_read_locks_to_commit
        assert IsolationLevel.RR.holds_read_locks_to_commit


class TestReleaseReadLock:
    def test_releases_plain_s_lock(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=1))
        run_process(env, manager.lock_row(1, 0, 5, LockMode.S))
        assert manager.release_read_lock(1, 0, 5)
        assert manager.holder_mode(1, row_resource(0, 5)) is None
        assert manager.app_slots(1) == 1  # intent lock remains
        manager.check_invariants()

    def test_keeps_write_locks(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=1))
        run_process(env, manager.lock_row(1, 0, 5, LockMode.X))
        assert not manager.release_read_lock(1, 0, 5)
        assert manager.holder_mode(1, row_resource(0, 5)) is LockMode.X

    def test_keeps_upgraded_locks(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=1))

        def proc():
            yield from manager.lock_row(1, 0, 5, LockMode.S)
            yield from manager.lock_row(1, 0, 5, LockMode.X)

        run_process(env, proc())
        assert not manager.release_read_lock(1, 0, 5)

    def test_reentrant_count_decrements_first(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=1))

        def proc():
            yield from manager.lock_row(1, 0, 5, LockMode.S)
            yield from manager.lock_row(1, 0, 5, LockMode.S)

        run_process(env, proc())
        assert manager.release_read_lock(1, 0, 5)  # count 2 -> 1
        assert manager.holder_mode(1, row_resource(0, 5)) is LockMode.S
        assert manager.release_read_lock(1, 0, 5)  # released
        assert manager.holder_mode(1, row_resource(0, 5)) is None

    def test_not_held_returns_false(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=1))
        assert not manager.release_read_lock(1, 0, 5)

    def test_wakes_waiting_writer(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=1))
        granted_at = {}

        def reader():
            yield from manager.lock_row(1, 0, 5, LockMode.S)
            yield env.timeout(5)
            manager.release_read_lock(1, 0, 5)  # cursor moves on
            yield env.timeout(100)
            manager.release_all(1)

        def writer():
            yield env.timeout(1)
            yield from manager.lock_row(2, 0, 5, LockMode.X)
            granted_at["t"] = env.now
            manager.release_all(2)

        env.process(reader())
        env.process(writer())
        env.run(until=200)
        assert granted_at["t"] == 5.0  # did not wait for reader's commit


def _mix(isolation, write_fraction=0.0):
    return TransactionMix(
        locks_per_txn_mean=30,
        write_fraction=write_fraction,
        update_lock_fraction=0.0,
        num_tables=2,
        rows_per_table=100_000,
        think_time_mean_s=0.05,
        work_time_per_lock_s=0.02,
        isolation=isolation,
    )


def _peak_demand(isolation, write_fraction=0.0, seed=51):
    db = make_database(seed=seed)
    client = Client(db, db.next_app_id(), _mix(isolation, write_fraction))
    db.env.process(client.run())
    db.run(until=60)
    assert client.stats.commits > 5
    return db.lock_manager.stats.peak_used_slots


class TestClientIsolationBehaviour:
    def test_cs_holds_far_fewer_read_locks_than_rr(self):
        rr = _peak_demand(IsolationLevel.RR)
        cs = _peak_demand(IsolationLevel.CS)
        assert cs < rr / 3

    def test_ur_readers_take_no_row_locks(self):
        ur = _peak_demand(IsolationLevel.UR)
        # read-only UR transactions never hold more than a handful of
        # structures (nothing at all in this all-read mix)
        assert ur <= 1

    def test_writes_held_to_commit_under_cs(self):
        cs_writes = _peak_demand(IsolationLevel.CS, write_fraction=1.0)
        # every write lock of a transaction is held simultaneously
        assert cs_writes > 10

    def test_default_isolation_is_rr(self):
        assert TransactionMix().isolation is IsolationLevel.RR
