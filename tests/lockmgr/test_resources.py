"""Tests for resource identifiers, focused on the hash contract.

ResourceId hashes must be pure functions of the id's *value*: sets of
resource ids sit on behaviour-relevant paths (e.g. an application's
held-lock set drains in iteration order at release), so a hash that
varied between processes -- as string hashes do under PYTHONHASHSEED
randomization -- would make the simulation's event order differ from
process to process at the same seed.
"""

import os
import subprocess
import sys

import pytest

from repro.lockmgr.resources import (
    ResourceId,
    ResourceKind,
    page_resource,
    row_resource,
    table_resource,
)


class TestValidation:
    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            row_resource(-1, 0)
        with pytest.raises(ValueError):
            row_resource(0, -1)
        with pytest.raises(ValueError):
            page_resource(0, -1)

    def test_kind_shape_enforced(self):
        with pytest.raises(ValueError):
            ResourceId(ResourceKind.TABLE, 1, row_id=2)
        with pytest.raises(ValueError):
            ResourceId(ResourceKind.ROW, 1)


class TestHashContract:
    def test_equal_values_equal_hashes(self):
        assert row_resource(3, 7) == row_resource(3, 7)
        assert hash(row_resource(3, 7)) == hash(row_resource(3, 7))
        assert row_resource(3, 7) != row_resource(3, 8)
        assert table_resource(3) != row_resource(3, 7)

    def test_hash_stable_across_hash_seeds(self):
        # A subprocess with a different PYTHONHASHSEED must compute the
        # same hashes; if this fails, set-of-ResourceId iteration order
        # (and with it event ordering) depends on the process.
        ids = "hash(table_resource(5)), hash(row_resource(5, 9)), hash(page_resource(5, 2))"
        script = f"from repro.lockmgr.resources import *; print([{ids}])"

        def run(hash_seed):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            return subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            ).stdout

        assert run("0") == run("12345")
