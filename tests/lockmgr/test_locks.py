"""Unit tests for LockObject: grants, convoys, pumping, blockers."""

import pytest

from repro.engine.des import Environment
from repro.errors import LockManagerError
from repro.lockmgr.locks import LockObject, Waiter
from repro.lockmgr.modes import LockMode
from repro.lockmgr.resources import row_resource


@pytest.fixture
def obj():
    return LockObject(row_resource(1, 1))


def waiter(env, app, mode, converting=False):
    return Waiter(app, mode, env.event(), converting=converting)


class TestGrants:
    def test_add_and_holder_mode(self, obj):
        obj.add_grant(1, LockMode.S)
        assert obj.holder_mode(1) is LockMode.S
        assert obj.holder_mode(2) is None
        obj.check_invariants()

    def test_double_add_rejected(self, obj):
        obj.add_grant(1, LockMode.S)
        with pytest.raises(LockManagerError):
            obj.add_grant(1, LockMode.S)

    def test_upgrade_to_supremum(self, obj):
        obj.add_grant(1, LockMode.IX)
        obj.upgrade_grant(1, LockMode.S)
        assert obj.holder_mode(1) is LockMode.SIX
        obj.check_invariants()

    def test_upgrade_without_grant_rejected(self, obj):
        with pytest.raises(LockManagerError):
            obj.upgrade_grant(1, LockMode.X)

    def test_remove_grant(self, obj):
        obj.add_grant(1, LockMode.S)
        obj.remove_grant(1)
        assert obj.is_idle
        obj.check_invariants()

    def test_remove_missing_rejected(self, obj):
        with pytest.raises(LockManagerError):
            obj.remove_grant(1)


class TestOthersCompatible:
    def test_empty_always_compatible(self, obj):
        assert obj.others_compatible(1, LockMode.X)

    def test_own_lock_ignored(self, obj):
        obj.add_grant(1, LockMode.X)
        assert obj.others_compatible(1, LockMode.X)

    def test_other_incompatible(self, obj):
        obj.add_grant(1, LockMode.X)
        assert not obj.others_compatible(2, LockMode.S)

    def test_shared_mode_multiple_holders(self, obj):
        obj.add_grant(1, LockMode.S)
        obj.add_grant(2, LockMode.S)
        assert obj.others_compatible(3, LockMode.S)
        assert not obj.others_compatible(3, LockMode.X)

    def test_same_mode_two_holders_blocks_self_upgrade(self, obj):
        obj.add_grant(1, LockMode.S)
        obj.add_grant(2, LockMode.S)
        # app 1 wants X: its own S is fine but app 2's S conflicts
        assert not obj.others_compatible(1, LockMode.X)

    def test_sole_incompatible_holder_is_self(self, obj):
        obj.add_grant(1, LockMode.U)
        # U-U incompatible, but the only U holder is the requester
        assert obj.others_compatible(1, LockMode.U)


class TestQueue:
    def test_fifo_enqueue(self, obj):
        env = Environment()
        w1, w2 = waiter(env, 1, LockMode.X), waiter(env, 2, LockMode.X)
        obj.enqueue(w1)
        obj.enqueue(w2)
        assert list(obj.waiters) == [w1, w2]

    def test_conversions_jump_ahead_of_new_requests(self, obj):
        env = Environment()
        new1 = waiter(env, 1, LockMode.X)
        conv = waiter(env, 2, LockMode.X, converting=True)
        obj.enqueue(new1)
        obj.enqueue(conv)
        assert list(obj.waiters) == [conv, new1]

    def test_conversions_fifo_among_themselves(self, obj):
        env = Environment()
        conv1 = waiter(env, 1, LockMode.X, converting=True)
        conv2 = waiter(env, 2, LockMode.X, converting=True)
        obj.enqueue(waiter(env, 3, LockMode.X))
        obj.enqueue(conv1)
        obj.enqueue(conv2)
        assert [w.app_id for w in obj.waiters] == [1, 2, 3]

    def test_remove_waiter(self, obj):
        env = Environment()
        obj.enqueue(waiter(env, 1, LockMode.X))
        obj.enqueue(waiter(env, 2, LockMode.S))
        removed = obj.remove_waiter(1)
        assert len(removed) == 1
        assert [w.app_id for w in obj.waiters] == [2]


class TestPump:
    def test_pump_grants_compatible_prefix(self, obj):
        env = Environment()
        obj.enqueue(waiter(env, 1, LockMode.S))
        obj.enqueue(waiter(env, 2, LockMode.S))
        obj.enqueue(waiter(env, 3, LockMode.X))
        obj.enqueue(waiter(env, 4, LockMode.S))
        granted = obj.pump()
        assert [w.app_id for w in granted] == [1, 2]
        assert [w.app_id for w in obj.waiters] == [3, 4]
        obj.check_invariants()

    def test_pump_strict_fifo_no_overtaking(self, obj):
        """Figure 3: the later S waits behind the X, never jumps it."""
        env = Environment()
        obj.add_grant(9, LockMode.S)
        obj.enqueue(waiter(env, 3, LockMode.X))
        obj.enqueue(waiter(env, 4, LockMode.S))
        assert obj.pump() == []  # X blocked by S holder; S4 must not pass
        obj.remove_grant(9)
        granted = obj.pump()
        assert [w.app_id for w in granted] == [3]

    def test_pump_applies_conversion(self, obj):
        env = Environment()
        obj.add_grant(1, LockMode.S)
        obj.add_grant(2, LockMode.S)
        conv = waiter(env, 1, LockMode.X, converting=True)
        obj.enqueue(conv)
        assert obj.pump() == []
        obj.remove_grant(2)
        assert obj.pump() == [conv]
        assert obj.holder_mode(1) is LockMode.X
        obj.check_invariants()

    def test_grant_now_conversion_without_held_rejected(self, obj):
        env = Environment()
        with pytest.raises(LockManagerError):
            obj.grant_now(waiter(env, 1, LockMode.X, converting=True))


class TestBlockers:
    def test_blockers_include_incompatible_holders(self, obj):
        env = Environment()
        obj.add_grant(1, LockMode.X)
        w = waiter(env, 2, LockMode.S)
        obj.enqueue(w)
        assert obj.blockers_of(w) == [1]

    def test_blockers_exclude_compatible_holders(self, obj):
        env = Environment()
        obj.add_grant(1, LockMode.S)
        w = waiter(env, 2, LockMode.S)
        obj.enqueue(w)
        # queued behind nothing; S holder compatible
        assert obj.blockers_of(w) == []

    def test_blockers_include_earlier_waiters(self, obj):
        env = Environment()
        obj.add_grant(1, LockMode.X)
        w_first = waiter(env, 2, LockMode.X)
        w_second = waiter(env, 3, LockMode.X)
        obj.enqueue(w_first)
        obj.enqueue(w_second)
        assert set(obj.blockers_of(w_second)) == {1, 2}

    def test_own_entries_not_blockers(self, obj):
        env = Environment()
        obj.add_grant(2, LockMode.X)
        w = waiter(env, 2, LockMode.X)
        obj.enqueue(w)
        assert obj.blockers_of(w) == []
