"""Tests for LOCKTIMEOUT and the selective-escalation extension."""

import pytest

from repro.engine.des import Environment
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager, LockTimeoutError
from repro.lockmgr.modes import LockMode
from repro.lockmgr.resources import table_resource
from tests.conftest import run_process


def make_manager(env, blocks=4, capacity=None, **kwargs):
    chain = (
        LockBlockChain(initial_blocks=blocks, capacity_per_block=capacity)
        if capacity
        else LockBlockChain(initial_blocks=blocks)
    )
    return LockManager(env, chain, **kwargs)


class TestLockTimeout:
    def test_invalid_timeout_rejected(self, env):
        with pytest.raises(ValueError):
            make_manager(env, lock_timeout_s=0)

    def test_wait_expires_with_error(self, env):
        manager = make_manager(env, lock_timeout_s=5.0)
        outcome = {}

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(100)
            manager.release_all(1)

        def waiter():
            yield env.timeout(1)
            try:
                yield from manager.lock_row(2, 0, 7, LockMode.X)
                outcome["result"] = "granted"
            except LockTimeoutError:
                outcome["result"] = f"timeout@{env.now}"
                manager.release_all(2)

        env.process(holder())
        env.process(waiter())
        env.run(until=50)
        assert outcome["result"] == "timeout@6.0"
        assert manager.stats.lock_timeouts == 1
        manager.check_invariants()
        assert manager.app_slots(2) == 0

    def test_grant_before_timeout_proceeds(self, env):
        manager = make_manager(env, lock_timeout_s=20.0)
        outcome = {}

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(3)
            manager.release_all(1)

        def waiter():
            yield env.timeout(1)
            yield from manager.lock_row(2, 0, 7, LockMode.X)
            outcome["granted_at"] = env.now
            manager.release_all(2)

        env.process(holder())
        env.process(waiter())
        env.run(until=50)
        assert outcome["granted_at"] == 3.0
        assert manager.stats.lock_timeouts == 0

    def test_timed_out_waiter_unblocks_queue(self, env):
        """A timed-out waiter must not gate later compatible waiters."""
        manager = make_manager(env, lock_timeout_s=2.0)
        outcome = {}

        def s_holder():
            yield from manager.lock_row(1, 0, 7, LockMode.S)
            yield env.timeout(30)
            manager.release_all(1)

        def x_waiter():
            yield env.timeout(1)
            try:
                yield from manager.lock_row(2, 0, 7, LockMode.X)
            except LockTimeoutError:
                manager.release_all(2)

        def s_requester():
            yield env.timeout(2)
            yield from manager.lock_row(3, 0, 7, LockMode.S)
            outcome["s_granted_at"] = env.now
            manager.release_all(3)

        env.process(s_holder())
        env.process(x_waiter())
        env.process(s_requester())
        env.run(until=60)
        # once the X gave up at t=3, the queued S should be granted
        # immediately (not wait for the holder's release at t=31)
        assert outcome["s_granted_at"] == pytest.approx(3.0)

    def test_default_is_wait_forever(self, env):
        manager = make_manager(env)
        assert manager.lock_timeout_s is None


class TestSelectiveEscalation:
    """Section 6.1 future work: bias escalation over memory growth."""

    def test_preferring_app_escalates_instead_of_growing(self, env):
        manager = make_manager(
            env, blocks=1, capacity=16,
            growth_provider=lambda blocks: blocks,
        )
        manager.set_escalation_preference(1, True)

        def proc():
            for row in range(20):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        # no growth happened; the app's rows were escalated away
        assert manager.stats.sync_growth_blocks == 0
        assert manager.stats.escalations.count >= 1
        assert manager.holder_mode(1, table_resource(0)) is LockMode.S

    def test_normal_app_still_grows(self, env):
        manager = make_manager(
            env, blocks=1, capacity=16,
            growth_provider=lambda blocks: blocks,
        )

        def proc():
            for row in range(20):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        assert manager.stats.sync_growth_blocks > 0
        assert manager.stats.escalations.count == 0

    def test_preference_is_per_application(self, env):
        manager = make_manager(
            env, blocks=1, capacity=16,
            growth_provider=lambda blocks: blocks,
        )
        manager.set_escalation_preference(1, True)

        def saver():
            for row in range(20):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        def normal():
            for row in range(20):
                yield from manager.lock_row(2, 1, row, LockMode.S)

        run_process(env, saver())
        run_process(env, normal())
        # app 1 escalated; app 2's pressure grew the memory
        assert any(
            o.app_id == 1 for o in manager.stats.escalations.outcomes
        )
        assert manager.stats.sync_growth_blocks > 0
        assert manager.app_row_lock_count(2) == 20

    def test_preference_can_be_cleared(self, env):
        manager = make_manager(
            env, blocks=1, capacity=16,
            growth_provider=lambda blocks: blocks,
        )
        manager.set_escalation_preference(1, True)
        assert manager.prefers_escalation(1)
        manager.set_escalation_preference(1, False)
        assert not manager.prefers_escalation(1)

    def test_preferring_app_saves_lock_memory(self, env):
        """The point of the extension: less lock memory consumed."""

        def run(preferred):
            local_env = Environment()
            manager = make_manager(
                local_env, blocks=1, capacity=16,
                growth_provider=lambda blocks: blocks,
            )
            if preferred:
                manager.set_escalation_preference(1, True)

            def proc():
                for row in range(64):
                    yield from manager.lock_row(1, 0, row, LockMode.S)

            run_process(local_env, proc())
            return manager.chain.allocated_pages

        assert run(preferred=True) < run(preferred=False)
