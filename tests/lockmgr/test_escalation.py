"""Tests for lock escalation mechanics and bookkeeping."""

import pytest

from repro.engine.des import Environment
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.escalation import EscalationOutcome, EscalationStats
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode
from repro.lockmgr.resources import table_resource
from tests.conftest import run_process


def make_manager(env, blocks=1, capacity=16, **kwargs):
    chain = LockBlockChain(initial_blocks=blocks, capacity_per_block=capacity)
    return LockManager(env, chain, **kwargs)


class TestEscalationMode:
    def test_read_only_rows_escalate_to_s(self, env):
        manager = make_manager(env, capacity=8)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        outcome = manager.stats.escalations.outcomes[0]
        assert outcome.target_mode is LockMode.S
        assert manager.holder_mode(1, table_resource(0)) is LockMode.S

    def test_any_write_row_escalates_to_x(self, env):
        manager = make_manager(env, capacity=8)

        def proc():
            yield from manager.lock_row(1, 0, 0, LockMode.X)
            for row in range(1, 10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        outcome = manager.stats.escalations.outcomes[0]
        assert outcome.target_mode is LockMode.X
        assert manager.holder_mode(1, table_resource(0)) is LockMode.X

    def test_escalation_frees_row_structures(self, env):
        manager = make_manager(env, capacity=8)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        outcome = manager.stats.escalations.outcomes[0]
        # capacity 8, MAXLOCKS 98% -> limit 7: escalation fires while the
        # app holds the intent lock plus 6 row locks, freeing the 6 rows
        assert outcome.freed_slots == 6
        assert manager.app_row_lock_count(1) == 0
        # table lock + newly granted coverage only
        assert manager.app_slots(1) == 1


class TestEscalationBlocking:
    def test_escalation_waits_for_conflicting_reader(self, env):
        """The escalating app's IX -> X conversion waits for a reader."""
        manager = make_manager(env, capacity=8)
        timeline = []

        def reader():
            yield from manager.lock_row(2, 0, 99, LockMode.S)
            yield env.timeout(10)
            manager.release_all(2)
            timeline.append(("reader-done", env.now))

        def writer():
            yield env.timeout(1)
            # fills the chain with X row locks; escalation to X must wait
            # for the reader's S row lock + IS table lock to clear
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.X)
            timeline.append(("writer-done", env.now))

        env.process(reader())
        env.process(writer())
        env.run(until=60)
        assert timeline[0][0] == "reader-done"
        outcome = manager.stats.escalations.outcomes[0]
        assert outcome.waited
        assert timeline[1][1] >= 10.0

    def test_maxlocks_escalation_targets_requesters_biggest_table(self, env):
        manager = make_manager(env, capacity=16)

        def proc():
            # app 1 grabs rows in two tables up to the MAXLOCKS limit
            # (98% of 16 = 15 structures)
            for row in range(6):
                yield from manager.lock_row(1, 0, row, LockMode.S)
            for row in range(7):
                yield from manager.lock_row(1, 1, row, LockMode.S)
            yield from manager.lock_row(1, 2, 0, LockMode.S)

        run_process(env, proc())
        outcome = manager.stats.escalations.outcomes[0]
        assert outcome.app_id == 1
        assert outcome.reason == "maxlocks"
        assert outcome.table_id == 1  # 7 rows there vs 6 in table 0

    def test_memory_escalation_picks_biggest_holder_when_requester_has_none(
        self, env
    ):
        # MAXLOCKS effectively disabled so only the full chain triggers.
        manager = make_manager(env, capacity=16, maxlocks_fraction=1.0)

        def hog():
            for row in range(15):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        def newcomer():
            yield env.timeout(1)
            # chain full (15 rows + intent); newcomer's intent lock needs
            # a structure, the requester holds no rows -> hog escalates
            yield from manager.lock_row(2, 1, 0, LockMode.S)

        run_process(env, hog())
        run_process(env, newcomer())
        outcomes = manager.stats.escalations.outcomes
        assert outcomes and outcomes[0].app_id == 1
        assert outcomes[0].reason == "memory"
        manager.check_invariants()


    def test_memory_escalation_tie_broken_by_first_row_acquirer(self, env):
        # Two holders with *equal* row-lock counts: the documented
        # tie-break picks whichever application acquired a row lock
        # first (here app 2, despite app 1's lower id), so the victim
        # can never depend on how the holder index is iterated.
        manager = make_manager(env, capacity=16, maxlocks_fraction=1.0)

        def hold(app_id, table_id):
            for row in range(7):
                yield from manager.lock_row(app_id, table_id, row, LockMode.S)

        def newcomer():
            yield env.timeout(1)
            yield from manager.lock_row(3, 9, 0, LockMode.S)

        run_process(env, hold(2, 2))  # first row acquirer
        run_process(env, hold(1, 1))
        assert manager.app_row_lock_count(1) == manager.app_row_lock_count(2)
        assert manager.chain.free_slots == 0
        run_process(env, newcomer())
        outcomes = manager.stats.escalations.outcomes
        assert outcomes and outcomes[0].reason == "memory"
        assert outcomes[0].app_id == 2
        manager.check_invariants()


class TestEscalationStats:
    def test_exclusive_count(self):
        stats = EscalationStats()
        stats.record(EscalationOutcome(0, 1, 0, "memory", LockMode.S, 5, False))
        stats.record(EscalationOutcome(1, 2, 0, "maxlocks", LockMode.X, 9, True))
        assert stats.count == 2
        assert stats.exclusive_count == 1
        assert stats.freed_slots_total == 14
        assert stats.by_reason("memory") == 1
        assert stats.by_reason("maxlocks") == 1
