"""Unit tests for lock modes, compatibility and the conversion lattice."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lockmgr.modes import (
    LockMode,
    compatible,
    covers,
    escalation_target_mode,
    intent_mode_for_row,
    supremum,
)

MODES = list(LockMode)
mode_st = st.sampled_from(MODES)

#: The classic multi-granularity compatibility matrix (with DB2's U).
EXPECTED_COMPATIBLE = {
    ("IS", "IS"), ("IS", "IX"), ("IS", "S"), ("IS", "SIX"), ("IS", "U"),
    ("IX", "IS"), ("IX", "IX"),
    ("S", "IS"), ("S", "S"), ("S", "U"),
    ("SIX", "IS"),
    ("U", "IS"), ("U", "S"),
}


class TestCompatibility:
    @pytest.mark.parametrize("held", MODES)
    @pytest.mark.parametrize("requested", MODES)
    def test_matrix_matches_reference(self, held, requested):
        expected = (held.name, requested.name) in EXPECTED_COMPATIBLE
        assert compatible(held, requested) == expected

    @given(a=mode_st, b=mode_st)
    def test_symmetric(self, a, b):
        assert compatible(a, b) == compatible(b, a)

    def test_x_conflicts_with_everything(self):
        for mode in MODES:
            assert not compatible(LockMode.X, mode)

    def test_two_updaters_conflict(self):
        assert not compatible(LockMode.U, LockMode.U)

    def test_updater_tolerates_readers(self):
        assert compatible(LockMode.U, LockMode.S)


class TestSupremum:
    @given(a=mode_st)
    def test_idempotent(self, a):
        assert supremum(a, a) is a

    @given(a=mode_st, b=mode_st)
    def test_commutative(self, a, b):
        assert supremum(a, b) is supremum(b, a)

    @given(a=mode_st, b=mode_st, c=mode_st)
    def test_associative(self, a, b, c):
        assert supremum(supremum(a, b), c) is supremum(a, supremum(b, c))

    @given(a=mode_st, b=mode_st)
    def test_upper_bound(self, a, b):
        sup = supremum(a, b)
        assert covers(sup, a)
        assert covers(sup, b)

    def test_classic_conversions(self):
        assert supremum(LockMode.IX, LockMode.S) is LockMode.SIX
        assert supremum(LockMode.S, LockMode.IX) is LockMode.SIX
        assert supremum(LockMode.IS, LockMode.IX) is LockMode.IX
        assert supremum(LockMode.U, LockMode.X) is LockMode.X
        assert supremum(LockMode.U, LockMode.IX) is LockMode.X
        assert supremum(LockMode.S, LockMode.U) is LockMode.U

    @given(a=mode_st, b=mode_st)
    def test_x_absorbs(self, a, b):
        assert supremum(LockMode.X, a) is LockMode.X


class TestCovers:
    def test_x_covers_all(self):
        for mode in MODES:
            assert covers(LockMode.X, mode)

    def test_s_does_not_cover_x(self):
        assert not covers(LockMode.S, LockMode.X)

    def test_six_covers_s_and_ix(self):
        assert covers(LockMode.SIX, LockMode.S)
        assert covers(LockMode.SIX, LockMode.IX)
        assert not covers(LockMode.SIX, LockMode.U)

    @given(a=mode_st, b=mode_st)
    def test_covers_iff_supremum_is_self(self, a, b):
        assert covers(a, b) == (supremum(a, b) is a)


class TestIntentMapping:
    def test_read_needs_is(self):
        assert intent_mode_for_row(LockMode.S) is LockMode.IS

    def test_writes_need_ix(self):
        assert intent_mode_for_row(LockMode.X) is LockMode.IX
        assert intent_mode_for_row(LockMode.U) is LockMode.IX


class TestEscalationTarget:
    def test_read_only_escalates_to_s(self):
        assert escalation_target_mode([LockMode.S, LockMode.S]) is LockMode.S

    def test_any_write_escalates_to_x(self):
        assert escalation_target_mode([LockMode.S, LockMode.X]) is LockMode.X
        assert escalation_target_mode([LockMode.U]) is LockMode.X

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            escalation_target_mode([])


class TestMisc:
    def test_strength_ordering(self):
        assert LockMode.IS.strength < LockMode.IX.strength < LockMode.X.strength

    def test_intent_flags(self):
        assert LockMode.IS.is_intent and LockMode.IX.is_intent
        assert not LockMode.S.is_intent

    def test_write_flags(self):
        assert LockMode.X.is_write and LockMode.U.is_write and LockMode.IX.is_write
        assert not LockMode.S.is_write and not LockMode.IS.is_write
