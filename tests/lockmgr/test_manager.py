"""Unit and integration tests for the lock manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.des import Environment
from repro.errors import DeadlockError, LockManagerError
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockListFullError, LockManager
from repro.lockmgr.modes import LockMode
from repro.lockmgr.resources import row_resource, table_resource
from tests.conftest import run_process


def make_manager(env, blocks=4, capacity=None, **kwargs):
    chain = (
        LockBlockChain(initial_blocks=blocks, capacity_per_block=capacity)
        if capacity
        else LockBlockChain(initial_blocks=blocks)
    )
    return LockManager(env, chain, **kwargs)


def grab_row(manager, app, table, row, mode):
    yield from manager.lock_row(app, table, row, mode)


def grab_table(manager, app, table, mode):
    yield from manager.lock_table(app, table, mode)


class TestBasicAcquisition:
    def test_row_lock_takes_intent_plus_row_structure(self, env):
        manager = make_manager(env)
        run_process(env, grab_row(manager, 1, 0, 5, LockMode.S))
        assert manager.app_slots(1) == 2  # IS on table + S on row
        assert manager.holder_mode(1, table_resource(0)) is LockMode.IS
        assert manager.holder_mode(1, row_resource(0, 5)) is LockMode.S
        manager.check_invariants()

    def test_write_row_lock_takes_ix(self, env):
        manager = make_manager(env)
        run_process(env, grab_row(manager, 1, 0, 5, LockMode.X))
        assert manager.holder_mode(1, table_resource(0)) is LockMode.IX

    def test_reacquire_same_row_no_new_structure(self, env):
        manager = make_manager(env)

        def proc():
            yield from manager.lock_row(1, 0, 5, LockMode.S)
            yield from manager.lock_row(1, 0, 5, LockMode.S)

        run_process(env, proc())
        assert manager.app_slots(1) == 2

    def test_distinct_rows_one_structure_each(self, env):
        manager = make_manager(env)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        assert manager.app_slots(1) == 11
        assert manager.app_row_lock_count(1) == 10

    def test_shared_row_lock_two_apps_two_structures(self, env):
        manager = make_manager(env)
        run_process(env, grab_row(manager, 1, 0, 5, LockMode.S))
        run_process(env, grab_row(manager, 2, 0, 5, LockMode.S))
        assert manager.chain.used_slots == 4
        manager.check_invariants()

    def test_table_lock_covers_rows(self, env):
        manager = make_manager(env)

        def proc():
            yield from manager.lock_table(1, 0, LockMode.X)
            before = manager.app_slots(1)
            yield from manager.lock_row(1, 0, 5, LockMode.X)
            return before

        before = run_process(env, proc())
        assert before == 1
        assert manager.app_slots(1) == 1  # no row structure added

    def test_conversion_upgrades_in_place(self, env):
        manager = make_manager(env)

        def proc():
            yield from manager.lock_row(1, 0, 5, LockMode.U)
            yield from manager.lock_row(1, 0, 5, LockMode.X)

        run_process(env, proc())
        assert manager.holder_mode(1, row_resource(0, 5)) is LockMode.X
        assert manager.app_slots(1) == 2


class TestRelease:
    def test_release_all_frees_everything(self, env):
        manager = make_manager(env)

        def proc():
            for row in range(5):
                yield from manager.lock_row(1, 0, row, LockMode.X)

        run_process(env, proc())
        freed = manager.release_all(1)
        assert freed == 6
        assert manager.chain.used_slots == 0
        assert manager.app_slots(1) == 0
        manager.check_invariants()

    def test_release_all_idempotent(self, env):
        manager = make_manager(env)
        run_process(env, grab_row(manager, 1, 0, 1, LockMode.S))
        manager.release_all(1)
        assert manager.release_all(1) == 0

    def test_release_wakes_waiter(self, env):
        manager = make_manager(env)
        events = []

        def writer():
            yield from manager.lock_row(1, 0, 5, LockMode.X)
            yield env.timeout(10)
            manager.release_all(1)
            events.append(("released", env.now))

        def reader():
            yield env.timeout(1)
            yield from manager.lock_row(2, 0, 5, LockMode.S)
            events.append(("granted", env.now))

        env.process(writer())
        env.process(reader())
        env.run()
        assert events == [("released", 10.0), ("granted", 10.0)]
        assert manager.stats.waits == 1
        assert manager.stats.wait_time_total == pytest.approx(9.0)


class TestFifoConvoy:
    def test_figure3_queue_order(self, env):
        """S, S share; X queues; later S queues behind the X."""
        manager = make_manager(env)
        grants = []

        def app(app_id, mode, start, hold):
            yield env.timeout(start)
            yield from manager.lock_row(app_id, 0, 7, mode)
            grants.append(app_id)
            yield env.timeout(hold)
            manager.release_all(app_id)

        env.process(app(1, LockMode.S, 0, 10))
        env.process(app(2, LockMode.S, 1, 10))
        env.process(app(3, LockMode.X, 2, 1))
        env.process(app(4, LockMode.S, 3, 1))
        env.run()
        assert grants == [1, 2, 3, 4]


class TestDeadlock:
    def test_classic_two_app_deadlock_detected(self, env):
        manager = make_manager(env)
        outcomes = {}

        def app(app_id, first, second):
            try:
                yield from manager.lock_row(app_id, 0, first, LockMode.X)
                yield env.timeout(1)
                yield from manager.lock_row(app_id, 0, second, LockMode.X)
                outcomes[app_id] = "ok"
                yield env.timeout(5)
            except DeadlockError:
                outcomes[app_id] = "deadlock"
            manager.release_all(app_id)

        env.process(app(1, 100, 200))
        env.process(app(2, 200, 100))
        env.run()
        assert sorted(outcomes.values()) == ["deadlock", "ok"]
        assert manager.stats.deadlocks == 1
        manager.check_invariants()
        assert manager.chain.used_slots == 0

    def test_conversion_deadlock_detected(self, env):
        """Two S holders both upgrading to X: a classic conversion cycle."""
        manager = make_manager(env)
        outcomes = {}

        def app(app_id, delay):
            try:
                yield from manager.lock_row(app_id, 0, 7, LockMode.S)
                yield env.timeout(delay)
                yield from manager.lock_row(app_id, 0, 7, LockMode.X)
                outcomes[app_id] = "ok"
            except DeadlockError:
                outcomes[app_id] = "deadlock"
            manager.release_all(app_id)

        env.process(app(1, 1))
        env.process(app(2, 2))
        env.run()
        assert sorted(outcomes.values()) == ["deadlock", "ok"]

    def test_no_false_deadlock_on_simple_contention(self, env):
        manager = make_manager(env)

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(5)
            manager.release_all(1)

        def waiter_app(app_id, delay):
            yield env.timeout(delay)
            yield from manager.lock_row(app_id, 0, 7, LockMode.X)
            manager.release_all(app_id)

        env.process(holder())
        env.process(waiter_app(2, 1))
        env.process(waiter_app(3, 2))
        env.run()
        assert manager.stats.deadlocks == 0


class TestMemoryPressure:
    def test_sync_growth_called_when_full(self, env):
        grown = []

        def provider(blocks):
            grown.append(blocks)
            return blocks

        manager = make_manager(env, blocks=1, capacity=4, growth_provider=provider)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        assert grown  # growth happened
        assert manager.stats.sync_growth_blocks == len(grown)
        assert manager.app_row_lock_count(1) == 10

    def test_full_chain_without_growth_escalates(self, env):
        manager = make_manager(env, blocks=1, capacity=8, maxlocks_fraction=0.98)

        def proc():
            for row in range(20):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        assert manager.stats.escalations.count >= 1
        # after escalation the app holds a table S lock covering the rows
        assert manager.holder_mode(1, table_resource(0)) is LockMode.S
        manager.check_invariants()

    def test_escalation_failure_raises_lock_list_full(self, env):
        manager = make_manager(env, blocks=1, capacity=4, maxlocks_fraction=0.98)

        def filler():
            # table locks only: nothing escalatable
            for table in range(3):
                yield from manager.lock_table(1, table, LockMode.S)
            yield from manager.lock_table(2, 3, LockMode.S)

        run_process(env, filler())

        def victim():
            yield from manager.lock_table(3, 9, LockMode.S)

        with pytest.raises(LockListFullError):
            run_process(env, victim())
        assert manager.stats.lock_list_full_errors == 1

    def test_escalation_prefers_biggest_table(self, env):
        manager = make_manager(env, blocks=1, capacity=16, maxlocks_fraction=0.98)

        def proc():
            for row in range(3):
                yield from manager.lock_row(1, 0, row, LockMode.S)
            for row in range(9):
                yield from manager.lock_row(1, 1, row, LockMode.S)
            # chain now full (3+9+2 intent = 14); next needs escalation
            yield from manager.lock_row(1, 2, 0, LockMode.S)

        run_process(env, proc())
        outcome = manager.stats.escalations.outcomes[0]
        assert outcome.table_id == 1  # the table with the most row locks


class TestMaxlocks:
    def test_maxlocks_triggers_escalation(self, env):
        # 2 blocks of 16 slots = 32 capacity; 25% = 8 slots per app
        manager = make_manager(env, blocks=2, capacity=16, maxlocks_fraction=0.25)

        def proc():
            for row in range(12):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        assert manager.stats.escalations.by_reason("maxlocks") >= 1
        assert manager.app_slots(1) <= manager.maxlocks_limit_slots()

    def test_maxlocks_provider_refreshed_on_resize(self, env):
        calls = []

        def provider():
            calls.append(1)
            return 0.5

        def growth(blocks):
            return blocks

        manager = make_manager(
            env, blocks=1, capacity=4,
            growth_provider=growth, maxlocks_provider=provider,
        )

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        assert calls  # refreshed at least once on growth

    def test_refresh_period_drives_provider(self, env):
        calls = []
        manager = make_manager(
            env, blocks=4,
            maxlocks_provider=lambda: calls.append(1) or 0.9,
            refresh_period=8,
        )

        def proc():
            for row in range(20):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        # ~21+20 requests (fast-path re-grants count too) / 8 per refresh
        assert len(calls) >= 2

    def test_invalid_provider_fraction_rejected(self, env):
        manager = make_manager(env, maxlocks_provider=lambda: 1.5)
        with pytest.raises(LockManagerError):
            manager.refresh_maxlocks()

    def test_static_fraction_validation(self, env):
        with pytest.raises(ValueError):
            make_manager(env, maxlocks_fraction=0.0)


class TestWaiterCleanup:
    def test_release_all_cancels_queued_waiter(self, env):
        manager = make_manager(env)

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(100)
            manager.release_all(1)

        def impatient():
            yield env.timeout(1)
            process = env.process(wants_lock())
            yield env.timeout(1)
            # roll back while still queued
            manager.release_all(2)

        def wants_lock():
            yield from manager.lock_row(2, 0, 7, LockMode.X)

        env.process(holder())
        env.process(impatient())
        env.run(until=50)
        manager.check_invariants()
        assert manager.app_slots(2) == 0


class TestStats:
    def test_request_and_grant_counters(self, env):
        manager = make_manager(env)
        run_process(env, grab_row(manager, 1, 0, 1, LockMode.S))
        assert manager.stats.requests == 2
        assert manager.stats.immediate_grants == 2

    def test_peak_used_slots(self, env):
        manager = make_manager(env)

        def proc():
            for row in range(5):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        manager.release_all(1)
        assert manager.stats.peak_used_slots == 6
        assert manager.used_slots == 0

    def test_used_bytes(self, env):
        manager = make_manager(env)
        run_process(env, grab_row(manager, 1, 0, 1, LockMode.S))
        assert manager.used_bytes == 2 * 64


class TestPropertyRandomWorkload:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        apps=st.integers(2, 5),
        steps=st.integers(5, 60),
    )
    def test_invariants_after_random_runs(self, seed, apps, steps):
        """Random clients acquiring/releasing keep all accounting exact."""
        import random

        rng = random.Random(seed)
        env = Environment()
        manager = make_manager(env, blocks=2, capacity=16,
                               growth_provider=lambda blocks: blocks)
        done = []

        def client(app_id):
            for _ in range(steps):
                try:
                    table = rng.randrange(2)
                    row = rng.randrange(8)
                    mode = rng.choice([LockMode.S, LockMode.X])
                    yield from manager.lock_row(app_id, table, row, mode)
                    yield env.timeout(rng.random())
                    if rng.random() < 0.4:
                        manager.release_all(app_id)
                except (DeadlockError, LockListFullError):
                    manager.release_all(app_id)
            manager.release_all(app_id)
            done.append(app_id)

        for app_id in range(1, apps + 1):
            env.process(client(app_id))
        env.run(until=10_000)
        assert len(done) == apps
        manager.check_invariants()
        assert manager.chain.used_slots == 0
        for obj in manager._objects.values():
            obj.check_invariants()
