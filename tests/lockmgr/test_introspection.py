"""Tests for lock-status introspection APIs."""

from repro.engine.des import Environment
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode
from repro.lockmgr.resources import row_resource


class TestLockStatus:
    def test_unlocked_resource(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=1))
        assert manager.lock_status(row_resource(0, 7)) == "T0.R7: unlocked"

    def test_figure3_rendering(self, env):
        """The Figure 3 state renders holders and queue in order."""
        manager = LockManager(env, LockBlockChain(initial_blocks=1))

        def app(app_id, mode, delay):
            yield env.timeout(delay)
            yield from manager.lock_row(app_id, 0, 7, mode)
            yield env.timeout(100)

        env.process(app(1, LockMode.S, 0))
        env.process(app(2, LockMode.S, 1))
        env.process(app(3, LockMode.X, 2))
        env.process(app(4, LockMode.S, 3))
        env.run(until=10)
        status = manager.lock_status(row_resource(0, 7))
        assert status == "T0.R7: granted[1:S, 2:S] queue[3:X, 4:S]"

    def test_snapshot_report_summarizes(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=2))

        def holder():
            yield from manager.lock_row(1, 0, 5, LockMode.X)
            yield env.timeout(100)

        def waiter():
            yield env.timeout(1)
            yield from manager.lock_row(2, 0, 5, LockMode.X)

        env.process(holder())
        env.process(waiter())
        env.run(until=10)
        report = manager.snapshot_report()
        assert "lock memory: 2 blocks" in report
        assert "T0.R5" in report
        assert "queue[2:X]" in report

    def test_snapshot_report_caps_resource_list(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=4))

        def holder(app_id, row):
            yield from manager.lock_row(app_id, 0, row, LockMode.X)
            yield env.timeout(100)

        def waiter(app_id, row):
            yield env.timeout(1)
            yield from manager.lock_row(app_id, 0, row, LockMode.X)

        for row in range(6):
            env.process(holder(100 + row, row))
            env.process(waiter(200 + row, row))
        env.run(until=10)
        report = manager.snapshot_report(max_resources=3)
        assert "... and 3 more" in report
