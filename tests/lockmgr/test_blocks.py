"""Unit and property tests for the 128 KB lock-memory block chain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryAccountingError
from repro.lockmgr.blocks import LockBlockChain
from repro.units import LOCKS_PER_BLOCK, PAGES_PER_BLOCK


class TestConstruction:
    def test_initial_blocks(self):
        chain = LockBlockChain(initial_blocks=3)
        assert chain.block_count == 3
        assert chain.capacity_slots == 3 * LOCKS_PER_BLOCK
        assert chain.allocated_pages == 3 * PAGES_PER_BLOCK
        assert chain.used_slots == 0

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            LockBlockChain(initial_blocks=-1)

    def test_empty_chain_free_fraction_is_one(self):
        assert LockBlockChain(0).free_fraction() == 1.0


class TestAllocation:
    def test_allocates_from_head(self):
        chain = LockBlockChain(initial_blocks=2, capacity_per_block=4)
        head = chain.iter_list()[0]
        block = chain.allocate_slot()
        assert block is head
        assert chain.used_slots == 1

    def test_exhausted_head_leaves_list(self):
        chain = LockBlockChain(initial_blocks=2, capacity_per_block=2)
        first = chain.iter_list()[0]
        chain.allocate_slot()
        chain.allocate_slot()
        assert first.is_full
        assert first not in chain.iter_list()
        assert chain.iter_list()[0] is not first

    def test_allocate_when_empty_raises(self):
        chain = LockBlockChain(initial_blocks=1, capacity_per_block=1)
        chain.allocate_slot()
        with pytest.raises(MemoryAccountingError):
            chain.allocate_slot()

    def test_freed_full_block_returns_to_head(self):
        """Paper section 2.2: block A returns to the head of the list."""
        chain = LockBlockChain(initial_blocks=2, capacity_per_block=2)
        block_a = chain.iter_list()[0]
        chain.allocate_slot()
        chain.allocate_slot()  # A full, off the list
        chain.allocate_slot()  # from B
        chain.free_slot(block_a)
        assert chain.iter_list()[0] is block_a

    def test_free_slot_validates_ownership(self):
        chain = LockBlockChain(initial_blocks=1)
        other = LockBlockChain(initial_blocks=1)
        foreign = other.allocate_slot()
        with pytest.raises(MemoryAccountingError):
            chain.free_slot(foreign)

    def test_free_slot_underflow_rejected(self):
        chain = LockBlockChain(initial_blocks=1)
        block = chain.allocate_slot()
        chain.free_slot(block)
        with pytest.raises(MemoryAccountingError):
            chain.free_slot(block)


class TestTailFreeProperty:
    def test_half_demand_leaves_tail_entirely_free(self):
        """Paper section 2.2: with only half the memory needed, blocks
        towards the end of the list stay entirely free."""
        chain = LockBlockChain(initial_blocks=4, capacity_per_block=8)
        handles = [chain.allocate_slot() for _ in range(16)]  # half of 32
        listed = chain.iter_list()
        assert listed[-1].is_empty
        assert listed[-2].is_empty
        # free and re-acquire repeatedly: tail stays free
        for _ in range(5):
            for handle in handles:
                chain.free_slot(handle)
            handles = [chain.allocate_slot() for _ in range(16)]
        assert chain.iter_list()[-1].is_empty
        assert chain.entirely_free_blocks() >= 2


class TestGrowth:
    def test_new_blocks_append_at_tail(self):
        chain = LockBlockChain(initial_blocks=1, capacity_per_block=2)
        chain.allocate_slot()
        chain.add_blocks(2)
        listed = chain.iter_list()
        assert len(listed) == 3
        assert listed[-1].is_empty and listed[-2].is_empty

    def test_add_zero_is_noop(self):
        chain = LockBlockChain(initial_blocks=1)
        assert chain.add_blocks(0) == 0
        assert chain.block_count == 1

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            LockBlockChain(1).add_blocks(-1)


class TestRelease:
    def test_release_frees_empty_tail_blocks(self):
        chain = LockBlockChain(initial_blocks=4, capacity_per_block=4)
        chain.allocate_slot()
        freed = chain.release_blocks(2)
        assert freed == 2
        assert chain.block_count == 2

    def test_all_or_nothing_failure_reintegrates(self):
        """Paper section 2.2: not enough freeable blocks => request fails."""
        chain = LockBlockChain(initial_blocks=2, capacity_per_block=2)
        # touch both blocks so neither is empty
        chain.allocate_slot()
        chain.allocate_slot()
        chain.allocate_slot()
        assert chain.release_blocks(1) == 0
        assert chain.block_count == 2
        chain.check_invariants()

    def test_partial_release_takes_what_it_can(self):
        chain = LockBlockChain(initial_blocks=3, capacity_per_block=2)
        chain.allocate_slot()
        assert chain.release_blocks(3, partial=True) == 2
        assert chain.block_count == 1

    def test_release_scans_from_tail(self):
        chain = LockBlockChain(initial_blocks=3, capacity_per_block=2)
        tail = chain.iter_list()[-1]
        chain.allocate_slot()
        chain.release_blocks(1)
        assert tail not in chain.iter_list()

    def test_release_zero_is_noop(self):
        chain = LockBlockChain(initial_blocks=2)
        assert chain.release_blocks(0) == 0

    def test_capacity_tracks_release(self):
        chain = LockBlockChain(initial_blocks=4)
        chain.release_blocks(2)
        assert chain.capacity_slots == 2 * LOCKS_PER_BLOCK
        chain.check_invariants()


class TestShrinkChurn:
    """Shrink-from-tail semantics under a churned, interleaved list.

    The simple release tests above work on freshly-built chains where
    the empty blocks sit contiguously at the tail.  After alloc/free
    churn the availability list interleaves in-use and empty blocks
    (head-return-on-free reorders it), which is exactly the state the
    shrink scan and its failure/reintegration path must handle.
    """

    def _churned_chain(self):
        """4 blocks of 4 slots churned so the list order is scrambled.

        Returns ``(chain, handles)`` with two blocks entirely empty and
        two blocks partially in use, empties *not* contiguous at the
        tail.
        """
        chain = LockBlockChain(initial_blocks=4, capacity_per_block=4)
        blocks = chain.iter_list()
        # fill every block completely (empties the availability list)
        handles = {b.block_id: [] for b in blocks}
        for block in blocks:
            for _ in range(4):
                handle = chain.allocate_slot()
                assert handle is block
                handles[block.block_id].append(handle)
        assert chain.iter_list() == []
        # free in an interleaved order: each block re-enters at the head
        # as its first slot is freed, scrambling the original order
        for block in (blocks[2], blocks[0], blocks[3], blocks[1]):
            chain.free_slot(handles[block.block_id].pop())
        # drain blocks 2 and 0 completely; 3 and 1 stay half-used
        for block in (blocks[2], blocks[0]):
            while handles[block.block_id]:
                chain.free_slot(handles[block.block_id].pop())
        chain.check_invariants()
        assert chain.entirely_free_blocks() == 2
        remaining = [h for hs in handles.values() for h in hs]
        return chain, remaining

    def test_failed_shrink_reintegrates_and_preserves_order(self):
        chain, handles = self._churned_chain()
        order_before = [b.block_id for b in chain.iter_list()]
        # only 2 empty blocks exist; asking for 3 must fail atomically
        assert chain.release_blocks(3) == 0
        assert [b.block_id for b in chain.iter_list()] == order_before
        assert chain.block_count == 4
        chain.check_invariants()
        # the failed attempt must not have corrupted anything: churn on
        for handle in handles:
            chain.free_slot(handle)
        assert chain.release_blocks(4) == 4
        assert chain.block_count == 0

    def test_partial_shrink_skips_interleaved_inuse_blocks(self):
        chain, handles = self._churned_chain()
        inuse_before = {
            b.block_id for b in chain.iter_list() if not b.is_empty
        }
        # partial shrink frees exactly the two empties, wherever they
        # sit in the list, and leaves the in-use blocks linked
        assert chain.release_blocks(3, partial=True) == 2
        assert chain.block_count == 2
        after = chain.iter_list()
        assert {b.block_id for b in after} == inuse_before
        chain.check_invariants()
        for handle in handles:
            chain.free_slot(handle)
        chain.check_invariants()

    def test_head_return_on_free_under_interleaved_churn(self):
        # Scripted churn: whenever a full block has one slot freed it
        # must re-enter at the *head* and satisfy the next allocation.
        chain = LockBlockChain(initial_blocks=3, capacity_per_block=2)
        first, second, third = chain.iter_list()
        held = [chain.allocate_slot() for _ in range(6)]  # all full
        assert chain.iter_list() == []
        for block in (second, first, third):
            handle = next(h for h in held if h is block)
            held.remove(handle)
            chain.free_slot(handle)
            assert chain.iter_list()[0] is block  # head-return
            refill = chain.allocate_slot()
            assert refill is block  # head allocation
            held.append(refill)
            chain.check_invariants()
        # interleave deeper: free two slots of one block, one of another;
        # the most recently re-listed block must be at the head
        for handle in [h for h in held if h is second][:2]:
            held.remove(handle)
            chain.free_slot(handle)
        handle = next(h for h in held if h is first)
        held.remove(handle)
        chain.free_slot(handle)
        assert chain.iter_list()[0] is first
        assert chain.allocate_slot() is first
        chain.check_invariants()


@st.composite
def chain_operations(draw):
    """A random but valid sequence of chain operations."""
    return draw(
        st.lists(
            st.sampled_from(["alloc", "free", "grow", "release"]),
            min_size=1,
            max_size=200,
        )
    )


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(ops=chain_operations())
    def test_invariants_hold_under_random_ops(self, ops):
        chain = LockBlockChain(initial_blocks=2, capacity_per_block=4)
        handles = []
        for op in ops:
            if op == "alloc":
                if chain.free_slots > 0:
                    handles.append(chain.allocate_slot())
            elif op == "free":
                if handles:
                    chain.free_slot(handles.pop())
            elif op == "grow":
                chain.add_blocks(1)
            elif op == "release":
                chain.release_blocks(1, partial=True)
            chain.check_invariants()
            assert chain.used_slots == len(handles)
            assert chain.free_slots >= 0

    @settings(max_examples=100, deadline=None)
    @given(
        allocs=st.integers(min_value=0, max_value=60),
        frees=st.integers(min_value=0, max_value=60),
    )
    def test_slot_conservation(self, allocs, frees):
        chain = LockBlockChain(initial_blocks=8, capacity_per_block=8)
        handles = []
        for _ in range(min(allocs, chain.free_slots)):
            handles.append(chain.allocate_slot())
        for _ in range(min(frees, len(handles))):
            chain.free_slot(handles.pop())
        assert chain.used_slots == len(handles)
        assert chain.used_slots + chain.free_slots == chain.capacity_slots

    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_release_never_frees_inuse_blocks(self, data):
        chain = LockBlockChain(initial_blocks=4, capacity_per_block=4)
        count = data.draw(st.integers(min_value=0, max_value=16))
        handles = [chain.allocate_slot() for _ in range(count)]
        chain.release_blocks(4, partial=True)
        # every handle must still be freeable (its block still exists)
        for handle in handles:
            chain.free_slot(handle)
        chain.check_invariants()
