"""Tests for the periodic deadlock detector (DLCHKTIME model)."""

import pytest

from repro.engine.des import Environment
from repro.errors import DeadlockError
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.detector import DeadlockDetector
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode


def make_periodic(env, interval_s=5.0):
    manager = LockManager(env, LockBlockChain(initial_blocks=4))
    detector = DeadlockDetector(manager, interval_s=interval_s)
    env.process(detector.run(env))
    return manager, detector


class TestConstruction:
    def test_bad_interval_rejected(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=1))
        with pytest.raises(ValueError):
            DeadlockDetector(manager, interval_s=0)

    def test_attach_switches_mode(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=1))
        assert manager.deadlock_detection == "immediate"
        DeadlockDetector(manager, interval_s=5)
        assert manager.deadlock_detection == "periodic"


class TestGraph:
    def test_empty_graph_no_cycles(self, env):
        _manager, detector = make_periodic(env)
        assert detector.find_cycles() == []
        assert detector.check() == 0


class TestDetection:
    def _two_app_deadlock(self, env, manager, outcomes):
        def app(app_id, first, second, hold_after=20.0):
            try:
                yield from manager.lock_row(app_id, 0, first, LockMode.X)
                yield env.timeout(1)
                yield from manager.lock_row(app_id, 0, second, LockMode.X)
                outcomes[app_id] = ("ok", env.now)
                yield env.timeout(hold_after)
            except DeadlockError:
                outcomes[app_id] = ("deadlock", env.now)
            manager.release_all(app_id)

        env.process(app(1, 10, 20))
        env.process(app(2, 20, 10))

    def test_cycle_persists_until_check(self, env):
        manager, detector = make_periodic(env, interval_s=5.0)
        outcomes = {}
        self._two_app_deadlock(env, manager, outcomes)
        env.run(until=4.0)
        # both are stuck; no one has been victimized yet
        assert outcomes == {}
        assert len(manager.waiting_apps()) == 2
        env.run(until=40.0)
        results = sorted(v[0] for v in outcomes.values())
        assert results == ["deadlock", "ok"]
        # the victim fell at the first check after the cycle formed
        victim_time = next(t for r, t in outcomes.values() if r == "deadlock")
        assert victim_time == 5.0
        assert detector.stats.cycles_found == 1
        manager.check_invariants()

    def test_victim_is_smallest_holder(self, env):
        manager, detector = make_periodic(env, interval_s=5.0)
        outcomes = {}

        def heavy(app_id, first, second):
            try:
                # extra ballast locks make this app expensive to roll back
                for row in range(50):
                    yield from manager.lock_row(app_id, 9, 1000 + row, LockMode.S)
                yield from manager.lock_row(app_id, 0, first, LockMode.X)
                yield env.timeout(1)
                yield from manager.lock_row(app_id, 0, second, LockMode.X)
                outcomes[app_id] = "ok"
                yield env.timeout(20)
            except DeadlockError:
                outcomes[app_id] = "deadlock"
            manager.release_all(app_id)

        def light(app_id, first, second):
            try:
                yield from manager.lock_row(app_id, 0, first, LockMode.X)
                yield env.timeout(1)
                yield from manager.lock_row(app_id, 0, second, LockMode.X)
                outcomes[app_id] = "ok"
                yield env.timeout(20)
            except DeadlockError:
                outcomes[app_id] = "deadlock"
            manager.release_all(app_id)

        env.process(heavy(1, 10, 20))
        env.process(light(2, 20, 10))
        env.run(until=40)
        assert outcomes[2] == "deadlock"  # fewest structures held
        assert outcomes[1] == "ok"

    def test_survivor_proceeds_after_victim_rollback(self, env):
        manager, detector = make_periodic(env, interval_s=5.0)
        outcomes = {}
        self._two_app_deadlock(env, manager, outcomes)
        env.run(until=60)
        survivor = next(a for a, (r, _t) in outcomes.items() if r == "ok")
        # survivor got both rows and committed; nothing left behind
        assert manager.chain.used_slots == 0
        assert manager.stats.deadlocks == 1
        assert detector.stats.victims != [survivor]

    def test_immediate_mode_untouched_without_detector(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=4))
        outcomes = {}

        def app(app_id, first, second):
            try:
                yield from manager.lock_row(app_id, 0, first, LockMode.X)
                yield env.timeout(1)
                yield from manager.lock_row(app_id, 0, second, LockMode.X)
                outcomes[app_id] = ("ok", env.now)
                yield env.timeout(5)
            except DeadlockError:
                outcomes[app_id] = ("deadlock", env.now)
            manager.release_all(app_id)

        env.process(app(1, 10, 20))
        env.process(app(2, 20, 10))
        env.run(until=60)
        # immediate mode: the victim fails at request time (t=1)
        victim_time = next(t for r, t in outcomes.values() if r == "deadlock")
        assert victim_time == 1.0

    def test_victim_tie_broken_by_lowest_app_id(self, env):
        # Both participants hold exactly two structures (one row + one
        # table intent), so slot counts tie and the documented tie-break
        # -- lowest app id -- must decide.
        manager, detector = make_periodic(env, interval_s=5.0)
        outcomes = {}
        self._two_app_deadlock(env, manager, outcomes)
        env.run(until=2.0)
        assert manager.app_slots(1) == manager.app_slots(2)
        env.run(until=40.0)
        assert outcomes[1][0] == "deadlock"
        assert outcomes[2][0] == "ok"
        assert detector.stats.victims == [1]

    def test_choose_victim_ignores_cycle_order(self, env):
        # The choice is a pure function of cycle membership: feeding the
        # same participants in any rotation/reversal yields one victim.
        manager, detector = make_periodic(env, interval_s=5.0)
        outcomes = {}
        self._two_app_deadlock(env, manager, outcomes)
        env.run(until=2.0)
        assert detector.choose_victim([1, 2]) == detector.choose_victim([2, 1])

    def test_cancel_wait_on_non_waiter_is_noop(self, env):
        manager, _detector = make_periodic(env)
        assert manager.cancel_wait(99, DeadlockError("x")) is False

    def test_three_way_cycle_resolved(self, env):
        manager, detector = make_periodic(env, interval_s=5.0)
        outcomes = {}

        def app(app_id, first, second):
            try:
                yield from manager.lock_row(app_id, 0, first, LockMode.X)
                yield env.timeout(1)
                yield from manager.lock_row(app_id, 0, second, LockMode.X)
                outcomes[app_id] = "ok"
                yield env.timeout(3)
            except DeadlockError:
                outcomes[app_id] = "deadlock"
            manager.release_all(app_id)

        env.process(app(1, 10, 20))
        env.process(app(2, 20, 30))
        env.process(app(3, 30, 10))
        env.run(until=60)
        assert sorted(outcomes.values()) == ["deadlock", "ok", "ok"]
        manager.check_invariants()
        assert manager.chain.used_slots == 0
