"""Tests for the lock manager tracing facility."""

import pytest

from repro.engine.des import Environment
from repro.errors import DeadlockError
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode
from repro.lockmgr.tracing import LockTrace, TraceEvent
from tests.conftest import run_process


def traced_manager(env, blocks=4, capacity=None, **kwargs):
    chain = (
        LockBlockChain(initial_blocks=blocks, capacity_per_block=capacity)
        if capacity
        else LockBlockChain(initial_blocks=blocks)
    )
    manager = LockManager(env, chain, **kwargs)
    manager.tracer = LockTrace()
    return manager


class TestLockTrace:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LockTrace(capacity=0)

    def test_ring_buffer_eviction_keeps_counts(self):
        trace = LockTrace(capacity=3)
        for i in range(10):
            trace.emit(float(i), "grant", i)
        assert len(trace) == 3
        assert trace.count("grant") == 10
        assert [e.time for e in trace] == [7.0, 8.0, 9.0]

    def test_query_filters(self):
        trace = LockTrace()
        trace.emit(1.0, "grant", 1)
        trace.emit(2.0, "wait-begin", 2)
        trace.emit(3.0, "grant", 2)
        assert len(list(trace.query(kind="grant"))) == 2
        assert len(list(trace.query(app_id=2))) == 2
        assert len(list(trace.query(kind="grant", app_id=2))) == 1
        assert len(list(trace.query(since=2.5))) == 1

    def test_event_str(self):
        event = TraceEvent(1.5, "grant", 3, "X T0.R7")
        text = str(event)
        assert "grant" in text and "app=3" in text and "X T0.R7" in text

    def test_summary_and_tail(self):
        trace = LockTrace()
        trace.emit(1.0, "grant", 1)
        trace.emit(2.0, "grant", 2)
        assert "grant=2" in trace.summary()
        assert len(trace.tail(1).splitlines()) == 1

    def test_write_csv(self, tmp_path):
        trace = LockTrace()
        trace.emit(1.0, "grant", 1, "X T0.R7", "T0.R7")
        trace.emit(2.0, "wait-begin", 2, "X T0.R7", "T0.R7")
        path = tmp_path / "trace.csv"
        trace.write_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,kind,app_id,resource,detail,value"
        assert len(lines) == 3
        assert "wait-begin" in lines[2]

    def test_query_resource_filter(self):
        trace = LockTrace()
        trace.emit(1.0, "grant", 1, "X T0.R7", "T0.R7")
        trace.emit(2.0, "grant", 2, "S T0.R8", "T0.R8")
        trace.emit(3.0, "wait-begin", 3, "X T0.R7", "T0.R7")
        by_resource = list(trace.query(resource="T0.R7"))
        assert [e.app_id for e in by_resource] == [1, 3]
        assert list(trace.query(kind="grant", resource="T0.R8"))[0].app_id == 2

    def test_to_dicts(self):
        trace = LockTrace()
        trace.emit(1.0, "wait-end", 1, "granted after 2.000s", "T0.R7", 2.0)
        trace.emit(2.0, "grant", 2, "S T0.R8", "T0.R8")
        rows = trace.to_dicts()
        assert rows[0] == {
            "time": 1.0, "kind": "wait-end", "app_id": 1,
            "detail": "granted after 2.000s", "resource": "T0.R7",
            "value": 2.0,
        }
        assert len(trace.to_dicts(kind="grant")) == 1


class TestManagerIntegration:
    def test_grant_and_release_traced(self, env):
        manager = traced_manager(env)

        def proc():
            yield from manager.lock_row(1, 0, 5, LockMode.X)

        run_process(env, proc())
        manager.release_all(1)
        assert manager.tracer.count("grant") == 2  # intent + row
        assert manager.tracer.count("release") == 1

    def test_wait_traced_with_duration(self, env):
        manager = traced_manager(env)

        def holder():
            yield from manager.lock_row(1, 0, 5, LockMode.X)
            yield env.timeout(4)
            manager.release_all(1)

        def waiter():
            yield env.timeout(1)
            yield from manager.lock_row(2, 0, 5, LockMode.X)
            manager.release_all(2)

        env.process(holder())
        env.process(waiter())
        env.run()
        assert manager.tracer.count("wait-begin") == 1
        (end,) = trace_events = list(manager.tracer.query(kind="wait-end"))
        assert "after 3.000s" in end.detail

    def test_deadlock_traced(self, env):
        manager = traced_manager(env)

        def app(app_id, first, second):
            try:
                yield from manager.lock_row(app_id, 0, first, LockMode.X)
                yield env.timeout(1)
                yield from manager.lock_row(app_id, 0, second, LockMode.X)
                yield env.timeout(3)
            except DeadlockError:
                pass
            manager.release_all(app_id)

        env.process(app(1, 10, 20))
        env.process(app(2, 20, 10))
        env.run()
        assert manager.tracer.count("deadlock") == 1

    def test_escalation_traced(self, env):
        manager = traced_manager(env, blocks=1, capacity=8)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        (event,) = list(manager.tracer.query(kind="escalation"))
        assert "table 0 -> S" in event.detail

    def test_sync_growth_traced(self, env):
        manager = traced_manager(
            env, blocks=1, capacity=4, growth_provider=lambda b: b
        )

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        assert manager.tracer.count("sync-growth") >= 1

    def test_tracing_disabled_by_default(self, env):
        chain = LockBlockChain(initial_blocks=1)
        manager = LockManager(env, chain)
        assert manager.tracer is None

    def test_conversion_traced(self, env):
        manager = traced_manager(env)

        def proc():
            yield from manager.lock_row(1, 0, 5, LockMode.U)
            yield from manager.lock_row(1, 0, 5, LockMode.X)

        run_process(env, proc())
        assert manager.tracer.count("convert") == 1
