"""MetricRegistry under concurrent writers: exact totals, no torn reads.

8 threads hammer shared counters, gauges, histograms -- unlabeled and
labeled -- through the registry's get-or-create path.  Afterwards every
total must be exact (CPython's ``+=`` is not atomic; only the
per-instrument locks make this pass), and snapshots taken *during* the
hammering must be internally consistent (a histogram's bucket counts
must always sum to its ``count``).
"""

import threading

from repro.obs.registry import MetricRegistry, exponential_bounds

THREADS = 8
ITERATIONS = 2_000


def _hammer(registry, barrier, thread_idx, errors):
    try:
        barrier.wait()
        labels = {"shard": str(thread_idx % 4)}
        for i in range(ITERATIONS):
            registry.counter("c.shared").inc()
            registry.counter("c.labeled", labels=labels).inc(2.0)
            registry.gauge("g.shared").set(float(i))
            registry.gauge("g.labeled", labels=labels).set(float(i))
            registry.histogram("h.shared", (1.0, 2.0, 4.0)).observe(
                float(i % 5)
            )
            registry.histogram(
                "h.labeled", (1.0, 2.0, 4.0), labels=labels
            ).observe(1.5)
    except Exception as exc:  # pragma: no cover - only on failure
        errors.append(exc)


def _snapshot_reader(registry, stop, errors):
    """Concurrently snapshot; every snapshot must be self-consistent."""
    try:
        while not stop.is_set():
            snapshot = registry.snapshot()
            for hist in snapshot["histograms"].values():
                if sum(hist["counts"]) != hist["count"]:
                    raise AssertionError(
                        f"torn histogram snapshot: {hist['counts']} "
                        f"vs count={hist['count']}"
                    )
    except Exception as exc:  # pragma: no cover - only on failure
        errors.append(exc)


class TestConcurrentWriters:
    def test_exact_totals_and_consistent_snapshots(self):
        registry = MetricRegistry()
        barrier = threading.Barrier(THREADS)
        stop = threading.Event()
        errors = []
        reader = threading.Thread(
            target=_snapshot_reader, args=(registry, stop, errors)
        )
        workers = [
            threading.Thread(
                target=_hammer, args=(registry, barrier, idx, errors)
            )
            for idx in range(THREADS)
        ]
        reader.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        reader.join()

        assert errors == []
        total = THREADS * ITERATIONS
        assert registry.counter("c.shared").value == float(total)
        # Labeled counters: 8 threads over 4 label sets, 2 per thread.
        labeled_sum = sum(
            registry.counter("c.labeled", labels={"shard": str(s)}).value
            for s in range(4)
        )
        assert labeled_sum == 2.0 * total
        for s in range(4):
            assert (
                registry.counter("c.labeled", labels={"shard": str(s)}).value
                == 2.0 * ITERATIONS * (THREADS // 4)
            )
        shared_hist = registry.histogram("h.shared", (1.0, 2.0, 4.0))
        snap = shared_hist.snapshot()
        assert snap["count"] == total
        assert sum(snap["counts"]) == total
        for s in range(4):
            hist = registry.histogram(
                "h.labeled", (1.0, 2.0, 4.0), labels={"shard": str(s)}
            )
            assert hist.count == ITERATIONS * (THREADS // 4)
        # Gauges: last write wins; the final value must be one a writer set.
        assert registry.gauge("g.shared").value == float(ITERATIONS - 1)

    def test_concurrent_get_or_create_single_instrument(self):
        """All threads racing get-or-create must share ONE instrument."""
        registry = MetricRegistry()
        barrier = threading.Barrier(THREADS)
        instruments = []
        lock = threading.Lock()

        def create():
            barrier.wait()
            for _ in range(200):
                c = registry.counter("race", labels={"k": "v"})
                with lock:
                    instruments.append(c)

        threads = [threading.Thread(target=create) for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in instruments}) == 1
        assert len(registry) == 1

    def test_concurrent_histogram_extremes_tracked(self):
        registry = MetricRegistry()
        bounds = exponential_bounds(0.001, 2.0, 10)
        barrier = threading.Barrier(THREADS)

        def observe(offset):
            barrier.wait()
            hist = registry.histogram("ext", bounds)
            for i in range(ITERATIONS):
                hist.observe(offset + i * 1e-6)

        threads = [
            threading.Thread(target=observe, args=(float(idx),))
            for idx in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        hist = registry.histogram("ext", bounds)
        assert hist.count == THREADS * ITERATIONS
        assert hist.min == 0.0
        assert hist.max == (THREADS - 1) + (ITERATIONS - 1) * 1e-6
