"""Tests for the per-run telemetry report."""

import json

from repro.analysis.report import RunReport
from repro.obs import RunTelemetry

from tests.obs.test_events import synthetic_telemetry


class TestRunReport:
    def test_render_contains_percentiles(self):
        text = RunReport.from_telemetry(synthetic_telemetry()).render()
        for token in ("p50", "p95", "p99", "lock.wait.latency_s"):
            assert token in text

    def test_render_sections(self):
        text = RunReport.from_telemetry(synthetic_telemetry()).render()
        for section in ("throughput", "locking", "escalations", "memory",
                        "controller decisions"):
            assert section in text

    def test_as_json_structure(self):
        data = RunReport.from_telemetry(synthetic_telemetry()).as_json()
        assert data["label"] == "synthetic"
        assert data["locking"]["requests"] == 100.0
        assert data["latencies"]["lock.wait.latency_s"]["count"] == 5
        assert len(data["decisions"]) == 1
        json.dumps(data)  # fully serializable

    def test_empty_telemetry_still_renders(self):
        report = RunReport.from_telemetry(RunTelemetry(label="empty"))
        text = report.render()
        assert "empty" in text
        assert "controller decisions: 0" in text

    def test_report_identical_after_round_trip(self, tmp_path):
        telemetry = synthetic_telemetry()
        path = str(tmp_path / "run.jsonl")
        telemetry.write_jsonl(path)
        live = RunReport.from_telemetry(telemetry).as_json()
        offline = RunReport.from_telemetry(
            RunTelemetry.from_jsonl(path)
        ).as_json()
        assert offline == live

    def test_write_json(self, tmp_path):
        path = tmp_path / "report.json"
        RunReport.from_telemetry(synthetic_telemetry()).write_json(str(path))
        data = json.loads(path.read_text())
        assert data["latencies"]["lock.wait.latency_s"]["p95"] > 0
