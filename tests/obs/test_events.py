"""Round-trip tests for the JSONL telemetry stream."""

import json

import pytest

from repro.analysis import scenarios
from repro.core.controller import ControllerDecision
from repro.engine.metrics import MetricsRecorder
from repro.lockmgr.tracing import TraceEvent
from repro.obs import (
    SCHEMA_VERSION,
    WAIT_LATENCY_METRIC,
    MetricRegistry,
    RunTelemetry,
    load_runs,
)


def synthetic_telemetry(label="synthetic") -> RunTelemetry:
    registry = MetricRegistry()
    hist = registry.histogram(WAIT_LATENCY_METRIC)
    for value in (0.002, 0.03, 0.03, 0.5, 4.0):
        hist.observe(value)
    registry.counter("lock.requests").inc(100)
    registry.gauge("run.duration_s").set(30.0)
    metrics = MetricsRecorder()
    metrics.record("lock_pages", 0.0, 96.0)
    metrics.record("lock_pages", 10.0, 128.0)
    metrics.record("commits", 10.0, 41.0)
    return RunTelemetry(
        label=label,
        trace_events=[
            TraceEvent(1.0, "grant", 1, "X T0.R7", "T0.R7"),
            TraceEvent(2.0, "wait-begin", 2, "X T0.R7", "T0.R7"),
            TraceEvent(5.0, "wait-end", 2, "granted after 3.000s",
                       "T0.R7", 3.0),
        ],
        decisions=[
            ControllerDecision(
                time=30.0, reason="grow-to-min-free", current_pages=96,
                used_pages=80, free_fraction=0.17, target_pages=512,
                min_pages=64, max_pages=3276, escalations_in_interval=0,
            )
        ],
        metrics=metrics,
        registry=registry,
    )


class TestRecordStream:
    def test_meta_record_leads(self):
        records = list(synthetic_telemetry().records())
        assert records[0] == {
            "kind": "meta", "version": SCHEMA_VERSION, "label": "synthetic"
        }

    def test_timed_records_are_time_ordered(self):
        records = list(synthetic_telemetry().records())
        times = [r["t"] for r in records if "t" in r]
        assert times == sorted(times)
        # all three streams are present in the merged section
        kinds = {r["kind"] for r in records if "t" in r}
        assert kinds == {"trace", "decision", "sample"}

    def test_snapshots_close_the_stream(self):
        records = list(synthetic_telemetry().records())
        tail_kinds = [r["kind"] for r in records if "t" not in r][1:]
        assert set(tail_kinds) <= {"counter", "gauge", "histogram"}
        assert tail_kinds == sorted(
            tail_kinds, key=["counter", "gauge", "histogram"].index
        )

    def test_records_are_json_serializable(self):
        for record in synthetic_telemetry().records():
            json.loads(json.dumps(record))


class TestRoundTrip:
    def test_lossless_round_trip(self, tmp_path):
        telemetry = synthetic_telemetry()
        path = str(tmp_path / "run.jsonl")
        written = telemetry.write_jsonl(path)
        assert written == sum(1 for _ in telemetry.records())

        reloaded = RunTelemetry.from_jsonl(path)
        assert reloaded.label == telemetry.label
        assert reloaded.trace_events == telemetry.trace_events
        assert reloaded.decisions == telemetry.decisions
        assert reloaded.event_counts() == telemetry.event_counts()
        for name in telemetry.metrics.names():
            original = telemetry.metrics[name]
            restored = reloaded.metrics[name]
            assert restored.times == original.times
            assert restored.values == original.values
        assert reloaded.registry.snapshot() == telemetry.registry.snapshot()

    def test_wait_latency_percentiles_exact(self, tmp_path):
        telemetry = synthetic_telemetry()
        path = str(tmp_path / "run.jsonl")
        telemetry.write_jsonl(path)
        original = telemetry.wait_latency()
        restored = RunTelemetry.from_jsonl(path).wait_latency()
        assert restored.p50 == original.p50
        assert restored.p95 == original.p95
        assert restored.p99 == original.p99
        assert restored.mean == original.mean

    def test_multi_run_file(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        synthetic_telemetry("first").write_jsonl(path)
        synthetic_telemetry("second").write_jsonl(path, append=True)
        runs = load_runs(path)
        assert [r.label for r in runs] == ["first", "second"]
        with pytest.raises(ValueError, match="load_runs"):
            RunTelemetry.from_jsonl(path)

    def test_headerless_file_gets_implicit_run(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text(
            '{"kind":"trace","t":1.0,"event":"grant","app":1}\n'
        )
        runs = load_runs(str(path))
        assert len(runs) == 1
        assert runs[0].label == "run"
        assert runs[0].trace_events[0].kind == "grant"

    def test_bad_json_names_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"meta","version":1,"label":"x"}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            load_runs(str(path))

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('{"kind":"mystery"}\n')
        with pytest.raises(ValueError, match="mystery"):
            load_runs(str(path))

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind":"meta","version":99,"label":"x"}\n')
        with pytest.raises(ValueError, match="99"):
            load_runs(str(path))

    def test_empty_file_has_no_runs(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_runs(str(path)) == []
        with pytest.raises(ValueError, match="no telemetry"):
            RunTelemetry.from_jsonl(str(path))


class TestEndToEndAcceptance:
    """The PR's acceptance round trip on a scaled-down Figure 9 run."""

    @pytest.fixture(scope="class")
    def fig9_pair(self, tmp_path_factory):
        observed = []
        with scenarios.observe_databases(
            lambda label, db: observed.append((label, db.enable_telemetry(), db))
        ):
            scenarios.run_fig9_rampup(
                clients=60, ramp_duration_s=30.0, duration_s=120.0
            )
        (label, _registry, db), = observed
        telemetry = db.telemetry(label=label)
        path = str(tmp_path_factory.mktemp("telemetry") / "fig9.jsonl")
        telemetry.write_jsonl(path)
        return telemetry, RunTelemetry.from_jsonl(path)

    def test_event_counts_per_kind_identical(self, fig9_pair):
        live, reloaded = fig9_pair
        assert live.event_counts()  # the run really traced something
        assert reloaded.event_counts() == live.event_counts()

    def test_decision_log_survives(self, fig9_pair):
        live, reloaded = fig9_pair
        assert live.decision_count > 0
        assert reloaded.decision_count == live.decision_count
        assert reloaded.decisions == live.decisions

    def test_wait_latency_p95_exact(self, fig9_pair):
        live, reloaded = fig9_pair
        waits = live.wait_latency()
        assert waits is not None and waits.count > 0
        restored = reloaded.wait_latency()
        assert restored.p95 == waits.p95  # +- 0, per the acceptance bar
        assert restored.summary() == waits.summary()

    def test_final_state_counters_present(self, fig9_pair):
        _live, reloaded = fig9_pair
        requests = reloaded.registry.get("lock.requests")
        assert requests is not None and requests.value > 0
        assert reloaded.registry.get("run.duration_s").value == 120.0


class TestSchemaV3WaitsAndIncidents:
    """Schema v3: wait events and incident records ride the stream."""

    def telemetry_with_forensics(self):
        from repro.obs.incidents import IncidentRecord

        telemetry = synthetic_telemetry()
        telemetry.waits = [
            {
                "class": "lock.granted", "app": 2, "t": 2.0,
                "duration_s": 3.0, "resource": "T0.R7", "mode": "X",
                "blocker": 1, "blocker_mode": "X", "depth": 1, "note": "",
            },
            {
                "class": "admission", "app": 4, "t": 0.5,
                "duration_s": 0.1, "resource": "", "mode": "",
                "blocker": None, "blocker_mode": "", "depth": 0,
                "note": "admitted",
            },
        ]
        telemetry.incidents = [
            IncidentRecord(
                kind="deadlock", time=5.0, app_id=2, shard=1,
                detail="victim by footprint", cycle=[2, 1],
                posture={"used_slots": 4}, blockers=[],
                audit_tail=[], data={"resource": "T0.R7"},
            )
        ]
        return telemetry

    def test_wait_and_incident_records_in_stream(self):
        records = list(self.telemetry_with_forensics().records())
        kinds = {r["kind"] for r in records if "t" in r}
        assert "wait" in kinds and "incident" in kinds
        times = [r["t"] for r in records if "t" in r]
        assert times == sorted(times)
        incident = next(r for r in records if r["kind"] == "incident")
        # The record's own kind travels as incident_kind so it cannot
        # collide with the stream's dispatch key.
        assert incident["incident_kind"] == "deadlock"
        for record in records:
            json.loads(json.dumps(record))

    def test_v3_round_trip_lossless(self, tmp_path):
        telemetry = self.telemetry_with_forensics()
        path = str(tmp_path / "v3.jsonl")
        telemetry.write_jsonl(path)
        reloaded = RunTelemetry.from_jsonl(path)
        assert sorted(
            reloaded.waits, key=lambda w: w["t"]
        ) == sorted(telemetry.waits, key=lambda w: w["t"])
        assert reloaded.incidents == telemetry.incidents
        assert reloaded.incidents[0].kind == "deadlock"
        assert reloaded.incidents[0].cycle == [2, 1]

    def test_v2_stream_without_forensics_still_loads(self, tmp_path):
        telemetry = synthetic_telemetry()
        path = str(tmp_path / "v2ish.jsonl")
        telemetry.write_jsonl(path)
        reloaded = RunTelemetry.from_jsonl(path)
        assert reloaded.waits == []
        assert reloaded.incidents == []


class TestSchemaV4Broker:
    """Schema v4: broker audit records ride the stream."""

    def telemetry_with_broker(self):
        from repro.obs.audit import BrokerAuditRecord

        telemetry = synthetic_telemetry()
        telemetry.broker = [
            BrokerAuditRecord(
                interval=1, time=1.5, reason="trade-benefit",
                heap_from="sortheap", heap_to="bufferpool", pages=64,
                benefit_from=0.01, benefit_to=0.25, pressure=0.91,
                posture="normal", detail="sortheap -> bufferpool: 64 pages",
            ),
            BrokerAuditRecord(
                interval=3, time=3.5, reason="pressure-throttle",
                heap_from="", heap_to="", pages=0,
                benefit_from=0.0, benefit_to=0.0, pressure=1.09,
                posture="throttle",
                detail="posture normal -> throttle at pressure 1.094",
            ),
        ]
        return telemetry

    def test_broker_records_in_stream_time_ordered(self):
        records = list(self.telemetry_with_broker().records())
        broker = [r for r in records if r["kind"] == "broker"]
        assert [r["reason"] for r in broker] == [
            "trade-benefit", "pressure-throttle"
        ]
        times = [r["t"] for r in records if "t" in r]
        assert times == sorted(times)
        for record in records:
            json.loads(json.dumps(record))

    def test_v4_round_trip_lossless(self, tmp_path):
        telemetry = self.telemetry_with_broker()
        path = str(tmp_path / "v4.jsonl")
        telemetry.write_jsonl(path)
        reloaded = RunTelemetry.from_jsonl(path)
        assert reloaded.broker == telemetry.broker
        assert reloaded.broker[0].heap_to == "bufferpool"
        assert reloaded.broker[1].posture == "throttle"
        # The rest of the stream is untouched by the new kind.
        assert reloaded.decisions == telemetry.decisions
        assert reloaded.registry.snapshot() == telemetry.registry.snapshot()

    def test_v3_stream_without_broker_still_loads(self, tmp_path):
        telemetry = synthetic_telemetry()
        path = str(tmp_path / "v3ish.jsonl")
        telemetry.write_jsonl(path)
        reloaded = RunTelemetry.from_jsonl(path)
        assert reloaded.broker == []

    @pytest.mark.parametrize("version", [1, 2, 3, 4])
    def test_all_supported_header_versions_load(self, tmp_path, version):
        path = tmp_path / f"v{version}.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "version": version, "label": "old"})
            + "\n"
            + '{"kind":"trace","t":1.0,"event":"grant","app":1}\n'
        )
        runs = load_runs(str(path))
        assert len(runs) == 1
        assert runs[0].trace_events[0].kind == "grant"
        assert runs[0].broker == []
