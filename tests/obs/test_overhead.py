"""The overhead contract: disabled telemetry does no telemetry work.

Every probe site in the lock manager must cost exactly one ``is None``
check when telemetry is off -- no event formatting, no histogram or
counter arithmetic.  These tests enforce it by counting instrument
entry points during identical contended runs with telemetry disabled
(all counts must stay zero) and enabled (they must not).
"""

import pytest

from repro.lockmgr.modes import LockMode
from repro.lockmgr.tracing import LockTrace
from repro.obs.registry import Counter, Histogram

from tests.conftest import make_database


@pytest.fixture
def instrument_calls(monkeypatch):
    """Count every LockTrace.emit / Histogram.observe / Counter.inc."""
    calls = {"emit": 0, "observe": 0, "inc": 0}
    original_emit = LockTrace.emit
    original_observe = Histogram.observe
    original_inc = Counter.inc

    def counting_emit(self, *args, **kwargs):
        calls["emit"] += 1
        return original_emit(self, *args, **kwargs)

    def counting_observe(self, value):
        calls["observe"] += 1
        return original_observe(self, value)

    def counting_inc(self, amount=1.0):
        calls["inc"] += 1
        return original_inc(self, amount)

    monkeypatch.setattr(LockTrace, "emit", counting_emit)
    monkeypatch.setattr(Histogram, "observe", counting_observe)
    monkeypatch.setattr(Counter, "inc", counting_inc)
    return calls


def contended_run(db):
    """Exercise grant, wait, release and deadlock paths deterministically."""
    env, manager = db.env, db.lock_manager

    def holder():
        yield from manager.lock_row(101, 0, 5, LockMode.X)
        yield env.timeout(3)
        manager.release_all(101)

    def waiter():
        yield env.timeout(1)
        yield from manager.lock_row(102, 0, 5, LockMode.X)
        manager.release_all(102)

    def scanner():
        for row in range(50):
            yield from manager.lock_row(103, 1, row, LockMode.S)
        manager.release_all(103)

    env.process(holder())
    env.process(waiter())
    env.process(scanner())
    db.run(until=20)


class TestOverheadContract:
    def test_disabled_run_never_touches_instruments(self, instrument_calls):
        db = make_database(seed=5)
        contended_run(db)
        stats = db.lock_manager.stats
        assert stats.requests > 0
        assert stats.waits > 0  # the guarded wait paths actually ran
        assert instrument_calls == {"emit": 0, "observe": 0, "inc": 0}

    def test_enabled_companion_run_records(self, instrument_calls):
        db = make_database(seed=5)
        db.enable_telemetry()
        contended_run(db)
        assert instrument_calls["emit"] > 0
        assert instrument_calls["observe"] > 0  # the wait fed the histogram
        waits = db.lock_manager.obs.wait_latency
        assert waits.count == db.lock_manager.stats.waits

    def test_default_state_is_disabled(self):
        db = make_database(seed=5)
        assert db.lock_manager.tracer is None
        assert db.lock_manager.obs is None
        assert db.obs_registry is None
