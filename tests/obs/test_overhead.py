"""The overhead contract: disabled telemetry does no telemetry work.

Every probe site in the lock manager must cost exactly one ``is None``
check when telemetry is off -- no event formatting, no histogram or
counter arithmetic.  These tests enforce it by counting instrument
entry points during identical contended runs with telemetry disabled
(all counts must stay zero) and enabled (they must not).
"""

import pytest

from repro.lockmgr.modes import LockMode
from repro.lockmgr.tracing import LockTrace
from repro.net.client import RoutedLockClient
from repro.net.server import ServiceBackend, ThreadedLockServer
from repro.obs.registry import Counter, Histogram
from repro.obs.tracing import RequestTracer
from repro.service.stack import ServiceConfig, ServiceStack

from tests.conftest import make_database


@pytest.fixture
def instrument_calls(monkeypatch):
    """Count every LockTrace.emit / Histogram.observe / Counter.inc."""
    calls = {"emit": 0, "observe": 0, "inc": 0}
    original_emit = LockTrace.emit
    original_observe = Histogram.observe
    original_inc = Counter.inc

    def counting_emit(self, *args, **kwargs):
        calls["emit"] += 1
        return original_emit(self, *args, **kwargs)

    def counting_observe(self, value):
        calls["observe"] += 1
        return original_observe(self, value)

    def counting_inc(self, amount=1.0):
        calls["inc"] += 1
        return original_inc(self, amount)

    monkeypatch.setattr(LockTrace, "emit", counting_emit)
    monkeypatch.setattr(Histogram, "observe", counting_observe)
    monkeypatch.setattr(Counter, "inc", counting_inc)
    return calls


def contended_run(db):
    """Exercise grant, wait, release and deadlock paths deterministically."""
    env, manager = db.env, db.lock_manager

    def holder():
        yield from manager.lock_row(101, 0, 5, LockMode.X)
        yield env.timeout(3)
        manager.release_all(101)

    def waiter():
        yield env.timeout(1)
        yield from manager.lock_row(102, 0, 5, LockMode.X)
        manager.release_all(102)

    def scanner():
        for row in range(50):
            yield from manager.lock_row(103, 1, row, LockMode.S)
        manager.release_all(103)

    env.process(holder())
    env.process(waiter())
    env.process(scanner())
    db.run(until=20)


class TestOverheadContract:
    def test_disabled_run_never_touches_instruments(self, instrument_calls):
        db = make_database(seed=5)
        contended_run(db)
        stats = db.lock_manager.stats
        assert stats.requests > 0
        assert stats.waits > 0  # the guarded wait paths actually ran
        assert instrument_calls == {"emit": 0, "observe": 0, "inc": 0}

    def test_enabled_companion_run_records(self, instrument_calls):
        db = make_database(seed=5)
        db.enable_telemetry()
        contended_run(db)
        assert instrument_calls["emit"] > 0
        assert instrument_calls["observe"] > 0  # the wait fed the histogram
        waits = db.lock_manager.obs.wait_latency
        assert waits.count == db.lock_manager.stats.waits

    def test_default_state_is_disabled(self):
        db = make_database(seed=5)
        assert db.lock_manager.tracer is None
        assert db.lock_manager.obs is None
        assert db.obs_registry is None


class TestTracingOverheadContract:
    """Request tracing off costs exactly one ``is None`` check.

    The only tracing code on the untraced ``lock_row`` path is the
    ``self._tracer is None`` branch: no sampling arithmetic, no traced
    frame encoding, no hop bookkeeping.  Enforced the same way as the
    lock-manager contract -- count the tracing entry points across
    identical request runs with tracing off (zero) and on (nonzero).
    """

    @pytest.fixture
    def tracing_calls(self, monkeypatch):
        calls = {"maybe_trace": 0, "traced_path": 0}
        original_maybe = RequestTracer.maybe_trace
        original_traced = RoutedLockClient._lock_row_traced

        def counting_maybe(self):
            calls["maybe_trace"] += 1
            return original_maybe(self)

        def counting_traced(self, *args, **kwargs):
            calls["traced_path"] += 1
            return original_traced(self, *args, **kwargs)

        monkeypatch.setattr(RequestTracer, "maybe_trace", counting_maybe)
        monkeypatch.setattr(
            RoutedLockClient, "_lock_row_traced", counting_traced
        )
        return calls

    def request_run(self, sock_path, tracer):
        config = ServiceConfig(
            total_memory_pages=8192,
            initial_locklist_pages=128,
            tuner_interval_s=0.05,
            max_in_flight=16,
            admission_queue_depth=64,
        )
        with ServiceStack(config) as stack:
            server = ThreadedLockServer(
                ServiceBackend(stack.service), path=str(sock_path)
            )
            server.start()
            client = RoutedLockClient(
                [server.address], pool_size=1, tracer=tracer
            )
            try:
                app = client.open_session()
                for row in range(8):
                    client.lock_row(app, 0, row, LockMode.X)
                client.close_session(app)
            finally:
                client.close()
                server.stop()

    def test_untraced_client_never_enters_tracing_code(
        self, tmp_path, tracing_calls
    ):
        self.request_run(tmp_path / "w0.sock", tracer=None)
        assert tracing_calls == {"maybe_trace": 0, "traced_path": 0}

    def test_traced_companion_run_does(self, tmp_path, tracing_calls):
        self.request_run(tmp_path / "w0.sock", tracer=RequestTracer(2))
        assert tracing_calls["maybe_trace"] == 8
        assert tracing_calls["traced_path"] == 4  # every 2nd request
