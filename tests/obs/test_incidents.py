"""Unit tests for incident forensics (repro.obs.incidents)."""

import pytest

from repro.engine.des import Environment
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode
from repro.obs.incidents import (
    INCIDENT_KINDS,
    IncidentLog,
    IncidentRecord,
    IncidentRecorder,
)


def make_record(kind="deadlock", **overrides):
    defaults = dict(
        kind=kind, time=1.5, app_id=7, shard=0, detail="test incident"
    )
    defaults.update(overrides)
    return IncidentRecord(**defaults)


class TestIncidentLog:
    def test_unknown_kind_rejected(self):
        log = IncidentLog()
        with pytest.raises(ValueError, match="unknown incident kind"):
            log.append(make_record(kind="paper-jam"))

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            IncidentLog(capacity=0)

    def test_ring_bounded_total_counts(self):
        log = IncidentLog(capacity=2)
        for i in range(5):
            log.append(make_record(time=float(i)))
        assert len(log) == 2
        assert log.total_recorded == 5
        assert [r.time for r in log.records()] == [3.0, 4.0]
        assert [r.time for r in log.tail(1)] == [4.0]
        assert log.tail(0) == []

    def test_kind_accessors(self):
        log = IncidentLog()
        log.append(make_record("deadlock"))
        log.append(make_record("escalation"))
        log.append(make_record("deadlock"))
        assert log.kinds() == ["deadlock", "escalation", "deadlock"]
        counts = log.kind_counts()
        assert counts["deadlock"] == 2
        assert counts["escalation"] == 1
        assert counts["tuner-freeze"] == 0
        assert set(counts) == set(INCIDENT_KINDS)

    def test_record_round_trips_through_dict(self):
        record = make_record(
            cycle=[7, 3],
            posture={"used_slots": 4},
            blockers=[{"app": 3, "waiters_blocked": 1, "slots_held": 2}],
            audit_tail=[{"reason": "noop"}],
            data={"resource": "row(0,1)"},
        )
        assert IncidentRecord.from_dict(record.to_dict()) == record


class TestIncidentRecorder:
    def make_manager(self):
        env = Environment()
        manager = LockManager(env, LockBlockChain(initial_blocks=4))
        return env, manager

    def test_record_deadlock_snapshots_context(self):
        env, manager = self.make_manager()
        log = IncidentLog()
        recorder = IncidentRecorder(log, shard=2)

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(100)

        def waiter():
            yield env.timeout(1)
            yield from manager.lock_row(2, 0, 7, LockMode.X)

        env.process(holder())
        env.process(waiter())
        env.run(until=5)
        recorder.record_deadlock(
            manager, 2, "row(0,7)", [2, 1], "victim by footprint"
        )
        (record,) = log.records()
        assert record.kind == "deadlock"
        assert record.shard == 2
        assert record.app_id == 2
        assert record.cycle == [2, 1]
        assert record.data["resource"] == "row(0,7)"
        assert record.posture["waiting_apps"] == 1
        assert record.posture["used_slots"] == manager.chain.used_slots
        assert 0.0 <= record.posture["free_fraction"] <= 1.0
        # App 1 holds the contended row, blocking app 2.
        (blocker,) = record.blockers
        assert blocker["app"] == 1
        assert blocker["waiters_blocked"] == 1
        assert blocker["slots_held"] == manager.app_slots(1)
        assert record.audit_tail == []  # no audit wired

    def test_record_escalation_carries_data(self):
        env, manager = self.make_manager()
        log = IncidentLog()
        recorder = IncidentRecorder(log)
        recorder.record_escalation(
            manager, 5, table_id=3, reason="maxlocks",
            rows_freed=12, waiters_present=True,
        )
        (record,) = log.records()
        assert record.kind == "escalation"
        assert record.data == {
            "table_id": 3,
            "reason": "maxlocks",
            "rows_freed": 12,
            "waiters_present": True,
        }
        assert "table 3" in record.detail

    def test_record_freeze_carries_exception_and_posture(self):
        env, manager = self.make_manager()
        log = IncidentLog()
        recorder = IncidentRecorder(log)
        recorder.record_freeze(
            manager.chain, 42.0, RuntimeError("injected bug")
        )
        (record,) = log.records()
        assert record.kind == "tuner-freeze"
        assert record.time == 42.0
        assert record.app_id == -1
        assert "RuntimeError" in record.detail
        assert "injected bug" in record.detail
        assert record.posture["capacity_slots"] == manager.chain.capacity_slots

    def test_audit_tail_included_when_wired(self):
        from repro.obs.audit import TuningAuditLog, TuningAuditRecord

        audit = TuningAuditLog()
        audit.append(
            TuningAuditRecord(
                interval=1, time=0.0, reason="noop", delta_pages=0,
                current_pages=8, target_pages=8, used_pages=0,
                free_fraction=1.0, overflow_pages=0,
                escalations_in_interval=0, lmo_headroom_pages=0,
            )
        )
        env, manager = self.make_manager()
        log = IncidentLog()
        recorder = IncidentRecorder(log, audit=audit)
        recorder.record_escalation(
            manager, 1, table_id=0, reason="full",
            rows_freed=0, waiters_present=False,
        )
        (record,) = log.records()
        assert [a["reason"] for a in record.audit_tail] == ["noop"]
