"""Unit tests for the wait-event profiler (repro.obs.waits)."""

import pytest

from repro.obs.registry import MetricRegistry, labeled_name
from repro.obs.waits import (
    WAIT_CLASSES,
    WAIT_SECONDS_METRIC,
    WaitEventProfiler,
    merged_class_totals,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def now(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_profiler(**kwargs):
    clock = FakeClock()
    return WaitEventProfiler(clock, **kwargs), clock


class TestLockWaits:
    def test_begin_end_records_duration_and_attribution(self):
        prof, clock = make_profiler()
        prof.begin_lock_wait(
            7, "row(0,1)", "X", blocker=3, blocker_mode="S", depth=2
        )
        assert prof.open_lock_waits() == 1
        clock.advance(0.25)
        prof.end_lock_wait(7, "granted")
        assert prof.open_lock_waits() == 0
        (event,) = prof.recent()
        assert event.wait_class == "lock.granted"
        assert event.app_id == 7
        assert event.duration_s == pytest.approx(0.25)
        assert event.resource == "row(0,1)"
        assert event.mode == "X"
        assert event.blocker == 3
        assert event.blocker_mode == "S"
        assert event.depth == 2
        count, seconds = prof.class_totals()["lock.granted"]
        assert count == 1
        assert seconds == pytest.approx(0.25)

    def test_double_end_is_noop(self):
        """Grant-wins race: the second end site must not double count."""
        prof, clock = make_profiler()
        prof.begin_lock_wait(7, "r", "X")
        clock.advance(0.1)
        prof.end_lock_wait(7, "granted")
        prof.end_lock_wait(7, "timeout")
        totals = prof.class_totals()
        assert totals["lock.granted"][0] == 1
        assert totals["lock.timeout"][0] == 0
        assert len(prof) == 1

    def test_end_without_begin_is_noop(self):
        prof, _ = make_profiler()
        prof.end_lock_wait(99, "cancelled")
        assert len(prof) == 0
        assert prof.class_totals()["lock.cancelled"][0] == 0


class TestOneShot:
    def test_observe_all_classes(self):
        prof, clock = make_profiler()
        clock.advance(5.0)
        prof.observe("admission", 0.5, app_id=4, note="admitted")
        prof.observe("sync-growth", 0.25, started=1.0, note="+2 blocks")
        totals = prof.class_totals()
        assert totals["admission"] == (1, pytest.approx(0.5))
        assert totals["sync-growth"] == (1, pytest.approx(0.25))
        admission, growth = prof.recent()
        assert admission.t == pytest.approx(4.5)  # now - duration
        assert growth.t == pytest.approx(1.0)  # explicit start
        assert growth.note == "+2 blocks"

    def test_unknown_class_rejected(self):
        prof, _ = make_profiler()
        with pytest.raises(ValueError, match="unknown wait class"):
            prof.observe("coffee-break", 1.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            WaitEventProfiler(FakeClock(), capacity=0)


class TestRing:
    def test_ring_bounded_totals_exact(self):
        prof, _ = make_profiler(capacity=4)
        for i in range(10):
            prof.observe("admission", 0.1, app_id=i)
        assert len(prof) == 4
        assert [e.app_id for e in prof.recent()] == [6, 7, 8, 9]
        assert prof.class_totals()["admission"][0] == 10  # totals unbounded
        assert len(prof.to_dicts()) == 4

    def test_recent_limit(self):
        prof, _ = make_profiler()
        for i in range(8):
            prof.observe("admission", 0.1, app_id=i)
        assert [e.app_id for e in prof.recent(3)] == [5, 6, 7]

    def test_event_dict_shape(self):
        prof, _ = make_profiler()
        prof.begin_lock_wait(1, "r", "S", blocker=2, blocker_mode="X")
        prof.end_lock_wait(1, "timeout")
        (event,) = prof.to_dicts()
        assert set(event) == {
            "class", "app", "t", "duration_s", "resource", "mode",
            "blocker", "blocker_mode", "depth", "note",
        }
        assert event["class"] == "lock.timeout"


class TestLatch:
    def test_latch_counter_accounting(self):
        prof, _ = make_profiler()
        prof.latch_fast_get()
        prof.latch_fast_get()
        prof.latch_spin_get(2)
        prof.latch_sleep_get(4, 0.001)
        stats = prof.latch
        assert stats.gets == 4
        assert stats.misses == 2
        assert stats.spins == 6
        assert stats.sleeps == 1
        assert stats.sleep_time_s == pytest.approx(0.001)
        assert stats.to_dict()["gets"] == 4

    def test_latch_sleeps_hit_histogram_not_ring(self):
        prof, _ = make_profiler()
        prof.latch_sleep_get(4, 0.002)
        assert len(prof) == 0  # far too hot for the forensics ring
        count, seconds = prof.class_totals()["latch"]
        assert count == 1
        assert seconds == pytest.approx(0.002)


class TestRegistryIntegration:
    def test_histograms_created_per_class_with_labels(self):
        registry = MetricRegistry()
        prof, clock = make_profiler(
            registry=registry, labels={"shard": "3"}
        )
        for cls in WAIT_CLASSES:
            name = labeled_name(
                WAIT_SECONDS_METRIC, {"shard": "3", "class": cls}
            )
            assert registry.get(name) is not None
        prof.begin_lock_wait(1, "r", "X")
        clock.advance(0.5)
        prof.end_lock_wait(1, "granted")
        hist = registry.get(
            labeled_name(
                WAIT_SECONDS_METRIC, {"shard": "3", "class": "lock.granted"}
            )
        )
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.5)

    def test_latch_sleep_observed_into_histogram(self):
        registry = MetricRegistry()
        prof, _ = make_profiler(registry=registry)
        prof.latch_sleep_get(4, 0.004)
        hist = registry.get(
            labeled_name(WAIT_SECONDS_METRIC, {"class": "latch"})
        )
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.004)


class TestMergedTotals:
    def test_merge_across_profilers(self):
        a, _ = make_profiler()
        b, _ = make_profiler()
        a.observe("admission", 0.5)
        b.observe("admission", 0.25)
        b.observe("sync-growth", 1.0)
        merged = merged_class_totals([a, b])
        assert merged["admission"] == (2, pytest.approx(0.75))
        assert merged["sync-growth"] == (1, pytest.approx(1.0))
        assert merged["lock.granted"] == (0, 0.0)

    def test_merge_empty(self):
        merged = merged_class_totals([])
        assert set(merged) == set(WAIT_CLASSES)
        assert all(v == (0, 0.0) for v in merged.values())
