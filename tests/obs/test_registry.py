"""Unit and property tests for counters, gauges and histograms."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import (
    LATENCY_BUCKETS_S,
    SLOT_COUNT_BUCKETS,
    WALL_CLOCK_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    exponential_bounds,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_last_value_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(7)
        assert g.value == 7.0


class TestExponentialBounds:
    def test_shape(self):
        bounds = exponential_bounds(0.001, 2.0, 4)
        assert bounds == (0.001, 0.002, 0.004, 0.008)

    @pytest.mark.parametrize(
        "kwargs", [dict(start=0), dict(start=-1), dict(factor=1.0),
                   dict(count=0)]
    )
    def test_validation(self, kwargs):
        args = dict(start=1.0, factor=2.0, count=4)
        args.update(kwargs)
        with pytest.raises(ValueError):
            exponential_bounds(**args)

    def test_canonical_buckets_ascending(self):
        for bounds in (LATENCY_BUCKETS_S, WALL_CLOCK_BUCKETS_S,
                       SLOT_COUNT_BUCKETS):
            assert list(bounds) == sorted(bounds)


class TestHistogramBasics:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=[])
        with pytest.raises(ValueError):
            Histogram("h", bounds=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", bounds=[1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", bounds=[1.0, math.inf])

    def test_empty_raises_everywhere(self):
        h = Histogram("h")
        for access in (lambda: h.mean, lambda: h.min, lambda: h.max,
                       lambda: h.percentile(50)):
            with pytest.raises(ValueError):
                access()
        assert h.summary() == {"count": 0}

    def test_percentile_q_validation(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(100.1)

    def test_single_sample_percentiles_equal_sample(self):
        h = Histogram("h", bounds=[1.0, 2.0, 4.0])
        h.observe(1.5)
        # rank 1 lands in the 2.0 bucket; clamping to the observed max
        # reports the sample itself, not the bucket bound.
        assert h.p50 == h.p95 == h.p99 == 1.5
        assert h.mean == h.min == h.max == 1.5

    def test_overflow_bucket_reports_max(self):
        h = Histogram("h", bounds=[1.0, 2.0])
        h.observe(50.0)
        h.observe(99.0)
        assert h.p99 == 99.0
        assert h.counts[-1] == 2

    def test_known_distribution(self):
        h = Histogram("h", bounds=[1.0, 2.0, 4.0, 8.0])
        for value in (0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 7.0):
            h.observe(value)
        assert h.count == 10
        # ranks: p50 -> 5th of 10 -> cumulative 1+2+6 covers it in the
        # 4.0 bucket; p95 -> 10th -> 8.0 bucket, clamped to max 7.0.
        assert h.p50 == 4.0
        assert h.p95 == 7.0

    def test_summary_keys(self):
        h = Histogram("h")
        h.observe(0.01)
        assert set(h.summary()) == {
            "count", "mean", "min", "max", "p50", "p95", "p99"
        }


class TestHistogramSnapshot:
    def test_round_trip_identity(self):
        h = Histogram("h", bounds=[0.5, 1.0, 2.0])
        for value in (0.1, 0.7, 1.5, 9.0):
            h.observe(value)
        restored = Histogram.from_snapshot(h.snapshot())
        assert restored.snapshot() == h.snapshot()
        assert restored.summary() == h.summary()

    def test_empty_round_trip(self):
        h = Histogram("h", bounds=[1.0])
        restored = Histogram.from_snapshot(h.snapshot())
        assert restored.count == 0
        assert restored.snapshot() == h.snapshot()

    def test_bucket_count_mismatch_rejected(self):
        snapshot = Histogram("h", bounds=[1.0, 2.0]).snapshot()
        snapshot["counts"] = [0, 0]
        with pytest.raises(ValueError):
            Histogram.from_snapshot(snapshot)


class TestHistogramProperties:
    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=1e4), min_size=1, max_size=60
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_percentiles_monotone_and_bounded(self, values):
        h = Histogram("h")
        for value in values:
            h.observe(value)
        qs = [1, 25, 50, 75, 95, 99, 100]
        results = [h.percentile(q) for q in qs]
        assert results == sorted(results)
        for r in results:
            assert h.min <= r <= h.max or math.isclose(r, h.min)
        assert h.percentile(100) == h.max

    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=1e4), min_size=0, max_size=60
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_snapshot_round_trip_preserves_percentiles(self, values):
        h = Histogram("h")
        for value in values:
            h.observe(value)
        restored = Histogram.from_snapshot(h.snapshot())
        if h.count:
            for q in (50, 95, 99):
                assert restored.percentile(q) == h.percentile(q)
        assert restored.counts == h.counts
        assert restored.sum == h.sum


class TestMetricRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_get_and_contains(self):
        reg = MetricRegistry()
        c = reg.counter("a")
        assert reg.get("a") is c
        assert reg.get("missing") is None
        assert "a" in reg and "missing" not in reg
        assert len(reg) == 1

    def test_install_restored_histogram(self):
        reg = MetricRegistry()
        h = Histogram("h", bounds=[1.0])
        h.observe(0.5)
        reg.install(Histogram.from_snapshot(h.snapshot()))
        assert reg.get("h").count == 1

    def test_install_cross_type_raises(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.install(Gauge("x"))

    def test_snapshot_groups_by_type(self):
        reg = MetricRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(0.01)
        snapshot = reg.snapshot()
        assert snapshot["counters"] == {"c": 3.0}
        assert snapshot["gauges"] == {"g": 7.0}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_typed_listings_sorted(self):
        reg = MetricRegistry()
        reg.counter("b")
        reg.counter("a")
        reg.gauge("g")
        assert [c.name for c in reg.counters()] == ["a", "b"]
        assert [g.name for g in reg.gauges()] == ["g"]
        assert reg.names() == ["a", "b", "g"]
