"""The Prometheus text exporter: names, labels, histogram triplets."""

import pytest

from repro.obs.prometheus import (
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.registry import MetricRegistry
from repro.service.top import parse_prometheus


class TestNameSanitizing:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("lock.wait.latency_s") == "lock_wait_latency_s"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_colons_survive(self):
        assert sanitize_metric_name("a:b") == "a:b"

    def test_label_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestRender:
    def test_counter_total_suffix_and_type(self):
        reg = MetricRegistry()
        reg.counter("service.requests").inc(3)
        text = render_prometheus(reg)
        assert "# TYPE service_requests_total counter" in text
        assert "service_requests_total 3" in text

    def test_labeled_series_share_one_family(self):
        reg = MetricRegistry()
        reg.counter("service.requests", labels={"shard": "0"}).inc()
        reg.counter("service.requests", labels={"shard": "1"}).inc(2)
        text = render_prometheus(reg)
        assert text.count("# TYPE service_requests_total counter") == 1
        assert 'service_requests_total{shard="0"} 1' in text
        assert 'service_requests_total{shard="1"} 2' in text

    def test_gauge_plain(self):
        reg = MetricRegistry()
        reg.gauge("service.sessions").set(7.5)
        text = render_prometheus(reg)
        assert "# TYPE service_sessions gauge" in text
        assert "service_sessions 7.5" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricRegistry()
        hist = reg.histogram("lat", (0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            hist.observe(v)
        text = render_prometheus(reg)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        assert "lat_sum 6.05" in text

    def test_labeled_histogram_keeps_labels_on_every_sample(self):
        reg = MetricRegistry()
        reg.histogram("w", (1.0,), labels={"shard": "2"}).observe(0.5)
        text = render_prometheus(reg)
        assert 'w_bucket{shard="2",le="1"} 1' in text
        assert 'w_bucket{shard="2",le="+Inf"} 1' in text
        assert 'w_sum{shard="2"} 0.5' in text
        assert 'w_count{shard="2"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricRegistry()) == ""

    def test_round_trip_through_parser(self):
        """repro-service top's parser reads the exporter's output back."""
        reg = MetricRegistry()
        reg.counter("a.b", labels={"shard": "0"}).inc(4)
        reg.gauge("g").set(2.5)
        reg.histogram("h", (1.0, 2.0)).observe(1.5)
        dump = parse_prometheus(render_prometheus(reg))
        assert dump["a_b_total"][(("shard", "0"),)] == 4.0
        assert dump["g"][()] == 2.5
        assert dump["h_bucket"][(("le", "2"),)] == 1.0
        assert dump["h_bucket"][(("le", "+Inf"),)] == 1.0
        assert dump["h_count"][()] == 1.0


class TestValueFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [(1.0, "1"), (2.5, "2.5"), (0.0, "0")],
    )
    def test_integral_floats_render_as_ints(self, value, expected):
        reg = MetricRegistry()
        reg.gauge("v").set(value)
        assert f"v {expected}" in render_prometheus(reg)
