"""RequestSpanSampler: 1-in-N selection, timelines, histogram feeding."""

import pytest

from repro.obs.registry import MetricRegistry
from repro.obs.spans import RequestSpanSampler


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


class TestSampling:
    def test_one_in_n_selection(self):
        clock = FakeClock()
        sampler = RequestSpanSampler(4, clock.now)
        spans = [sampler.maybe_start(1, 1, i) for i in range(12)]
        hits = [s for s in spans if s is not None]
        assert len(hits) == 3  # requests 4, 8, 12
        assert sampler.seen == 12
        assert sampler.sampled == 3

    def test_every_one_samples_all(self):
        clock = FakeClock()
        sampler = RequestSpanSampler(1, clock.now)
        assert sampler.maybe_start(1, 1, 1) is not None
        assert sampler.sampled == 1

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            RequestSpanSampler(0, FakeClock().now)


class TestTimeline:
    def test_admit_grant_release(self):
        clock = FakeClock()
        sampler = RequestSpanSampler(1, clock.now)
        span = sampler.maybe_start(7, 3, 42)
        clock.t = 0.25
        sampler.grant(span)
        clock.t = 1.0
        sampler.release(7)
        assert span.wait_s == 0.25
        assert span.hold_s == 0.75
        assert span.outcome == "released"
        (record,) = sampler.finished_dicts()
        assert record == {
            "app": 7,
            "table": 3,
            "row": 42,
            "t_admit": 0.0,
            "t_grant": 0.25,
            "t_release": 1.0,
            "outcome": "released",
        }

    def test_failed_request_retires_immediately(self):
        clock = FakeClock()
        sampler = RequestSpanSampler(1, clock.now)
        span = sampler.maybe_start(1, 1, 1)
        sampler.grant(span, outcome="timeout")
        assert sampler.open_count() == 0
        assert sampler.finished_dicts()[0]["outcome"] == "timeout"

    def test_release_without_span_is_noop(self):
        sampler = RequestSpanSampler(1, FakeClock().now)
        sampler.release(99)  # never sampled
        assert sampler.finished_dicts() == []

    def test_new_span_retires_stale_open_span(self):
        clock = FakeClock()
        sampler = RequestSpanSampler(1, clock.now)
        first = sampler.maybe_start(1, 1, 1)
        sampler.grant(first)
        second = sampler.maybe_start(1, 2, 2)
        assert sampler.open_count() == 1
        assert first.to_dict() in sampler.finished_dicts()
        sampler.grant(second)
        sampler.release(1)
        assert second.outcome == "released"

    def test_ring_buffer_bounded(self):
        clock = FakeClock()
        sampler = RequestSpanSampler(1, clock.now, capacity=3)
        for i in range(10):
            span = sampler.maybe_start(1, 1, i)
            sampler.grant(span)
            sampler.release(1)
        finished = sampler.finished_dicts()
        assert len(finished) == 3
        assert [f["row"] for f in finished] == [7, 8, 9]


class TestHistogramFeeding:
    def test_sampled_waits_observed_with_labels(self):
        clock = FakeClock()
        reg = MetricRegistry()
        sampler = RequestSpanSampler(
            2, clock.now, registry=reg, labels={"shard": "1"}
        )
        for i in range(4):
            span = sampler.maybe_start(1, 1, i)
            if span is not None:
                clock.t += 0.5
                sampler.grant(span)
                sampler.release(1)
        hist = reg.get('service.span.wait_latency_s{shard="1"}')
        assert hist is not None
        assert hist.count == 2
        assert hist.sum == 1.0
