"""Unit contract for :mod:`repro.obs.tracing`.

The live smokes (``scripts/trace_smoke.py`` and the propagation tests
in ``tests/net``) exercise the wire; these tests pin the pure-Python
surface -- sampling arithmetic, ring bounds, the hop aggregations --
and the schema-v5 JSONL round trip plus the analyzer fields that
downstream tooling (``analyze``, ``top``, ``matrix``) reads.
"""

import itertools

import pytest

from repro.analysis.waitprofile import analyze_run
from repro.obs.events import SCHEMA_VERSION, RunTelemetry, load_runs
from repro.obs.tracing import (
    HOP_NAMES,
    LOCK_HOPS,
    NET_HOPS,
    RequestTracer,
    ServerTracer,
    TraceContext,
    hop_percentiles,
    wire_tax,
    wire_tax_summary,
)
from repro.service.ops import empty_traces_payload


def fake_clock(start: float = 100.0, step: float = 0.25):
    return itertools.count(start, step).__next__


HOPS = {
    "client.encode": 0.001,
    "client.net_wait": 0.004,
    "server.dispatch": 0.002,
    "server.lock_wait": 0.010,
    "server.executor_park": 0.001,
    "server.reply_encode": 0.001,
    "client.decode": 0.001,
}


class TestVocabulary:
    def test_hop_names_partition(self):
        assert set(NET_HOPS) | LOCK_HOPS == set(HOP_NAMES)
        assert set(NET_HOPS) & LOCK_HOPS == set()

    def test_wire_tax_is_net_fraction(self):
        net = sum(HOPS[h] for h in NET_HOPS)
        assert wire_tax(HOPS) == pytest.approx(net / sum(HOPS.values()))

    def test_wire_tax_empty_and_zero(self):
        assert wire_tax({}) == 0.0
        assert wire_tax({h: 0.0 for h in HOP_NAMES}) == 0.0


class TestTraceContext:
    def test_child_increments_span_only(self):
        ctx = TraceContext(trace_id=7, span_id=1)
        child = ctx.child()
        assert (child.trace_id, child.span_id) == (7, 2)
        assert child.sampled is ctx.sampled is True


class TestRequestTracer:
    def test_rejects_bad_ctor_args(self):
        with pytest.raises(ValueError):
            RequestTracer(0)
        with pytest.raises(ValueError):
            RequestTracer(-3)
        with pytest.raises(ValueError):
            RequestTracer(1, capacity=0)

    def test_samples_every_nth(self):
        tracer = RequestTracer(4, clock=fake_clock(), origin=0)
        hits = [tracer.maybe_trace() for _ in range(12)]
        sampled = [i for i, ctx in enumerate(hits) if ctx is not None]
        assert sampled == [3, 7, 11]
        assert tracer.seen == 12
        assert tracer.summary()["started"] == 3

    def test_trace_ids_are_unique_and_origin_prefixed(self):
        origin = 0xBEEF << 48
        tracer = RequestTracer(1, clock=fake_clock(), origin=origin)
        ids = [tracer.maybe_trace().trace_id for _ in range(5)]
        assert len(set(ids)) == 5
        assert all(tid & (0xFFFF << 48) == origin for tid in ids)

    def test_finish_lands_in_ring_oldest_first(self):
        tracer = RequestTracer(1, clock=fake_clock(), origin=0)
        for row in range(3):
            ctx = tracer.maybe_trace()
            tracer.finish(
                ctx, 0.02, dict(HOPS),
                worker=0, app_id=7, table_id=1, row_id=row,
                mode="X", outcome="ok",
            )
        dicts = tracer.to_dicts()
        assert [d["row"] for d in dicts] == [0, 1, 2]
        first = dicts[0]
        assert first["trace_id"] == 1 and first["span_id"] == 1
        assert first["hops"] == HOPS
        assert first["wire_tax"] == pytest.approx(wire_tax(HOPS), abs=1e-6)
        assert tracer.truncated == 0

    def test_ring_is_bounded_and_truncation_counted(self):
        tracer = RequestTracer(1, clock=fake_clock(), capacity=4, origin=0)
        for row in range(10):
            ctx = tracer.maybe_trace()
            tracer.finish(
                ctx, 0.01, dict(HOPS),
                worker=0, app_id=1, table_id=0, row_id=row,
                mode="S", outcome="ok",
            )
        assert len(tracer.to_dicts()) == 4
        assert [d["row"] for d in tracer.to_dicts()] == [6, 7, 8, 9]
        # Truncated counts started-but-never-finished, not ring evictions.
        assert tracer.truncated == 0
        tracer.maybe_trace()  # started, never finished
        assert tracer.truncated == 1

    def test_to_dicts_limit_keeps_newest(self):
        tracer = RequestTracer(1, clock=fake_clock(), origin=0)
        for row in range(5):
            tracer.finish(
                tracer.maybe_trace(), 0.01, dict(HOPS),
                worker=0, app_id=1, table_id=0, row_id=row,
                mode="S", outcome="ok",
            )
        assert [d["row"] for d in tracer.to_dicts(limit=2)] == [3, 4]


class TestServerTracer:
    def test_record_and_ring_bound(self):
        ring = ServerTracer(capacity=2)
        for span in range(1, 5):
            ring.record(99, span, {"server.lock_wait": 0.001})
        assert ring.recorded == 4
        assert len(ring) == 2
        spans = ring.to_dicts()
        assert [s["span_id"] for s in spans] == [3, 4]
        assert spans[0]["outcome"] == "ok" and spans[0]["app"] == -1
        assert ring.summary() == {"recorded": 4, "held": 2}

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ServerTracer(capacity=0)


class TestAggregations:
    def traces(self, n=10):
        out = []
        for i in range(n):
            hops = {h: v * (i + 1) for h, v in HOPS.items()}
            out.append(
                {"t": float(i), "total_s": sum(hops.values()), "hops": hops}
            )
        return out

    def test_hop_percentiles_exact(self):
        report = hop_percentiles(self.traces(10))
        assert list(report) == list(HOP_NAMES)
        lw = report["server.lock_wait"]
        assert lw["count"] == 10
        assert lw["p50"] == pytest.approx(0.010 * 5)
        assert lw["p99"] == pytest.approx(0.010 * 10)
        assert lw["total_s"] == pytest.approx(0.010 * 55)

    def test_hop_percentiles_skips_absent_hops(self):
        report = hop_percentiles([{"hops": {"client.encode": 0.001}}])
        assert list(report) == ["client.encode"]

    def test_wire_tax_summary(self):
        summary = wire_tax_summary(self.traces(4))
        net = sum(HOPS[h] for h in NET_HOPS) * 10  # 1+2+3+4
        lock = HOPS["server.lock_wait"] * 10
        assert summary["net_s"] == pytest.approx(net)
        assert summary["lock_s"] == pytest.approx(lock)
        assert summary["fraction"] == pytest.approx(net / (net + lock))

    def test_wire_tax_summary_empty(self):
        summary = wire_tax_summary([])
        assert summary["net_s"] == summary["lock_s"] == 0.0
        assert summary["fraction"] == 0.0


class TestSchemaRoundTrip:
    def test_v5_jsonl_round_trip_carries_traces(self, tmp_path):
        tracer = RequestTracer(1, clock=fake_clock(), origin=0)
        for row in range(3):
            tracer.finish(
                tracer.maybe_trace(), 0.02, dict(HOPS),
                worker=1, app_id=5, table_id=2, row_id=row,
                mode="X", outcome="ok",
            )
        telemetry = RunTelemetry(label="traced", traces=tracer.to_dicts())
        path = tmp_path / "out.jsonl"
        telemetry.write_jsonl(path)

        meta_line = path.read_text().splitlines()[0]
        assert f'"version":{SCHEMA_VERSION}' in meta_line.replace(" ", "")

        (loaded,) = load_runs(path)
        assert loaded.label == "traced"
        assert len(loaded.traces) == 3
        assert loaded.traces[0]["hops"] == HOPS
        assert [t["row"] for t in loaded.traces] == [0, 1, 2]

    def test_analyze_report_carries_trace_fields(self):
        tracer = RequestTracer(1, clock=fake_clock(), origin=0)
        for row in range(4):
            tracer.finish(
                tracer.maybe_trace(), 0.02, dict(HOPS),
                worker=0, app_id=5, table_id=2, row_id=row,
                mode="X", outcome="ok",
            )
        report = analyze_run(
            RunTelemetry(label="traced", traces=tracer.to_dicts())
        )
        assert report.trace_count == 4
        assert set(report.trace_hops) == set(HOP_NAMES)
        assert 0.0 <= report.trace_wire_tax["fraction"] <= 1.0
        rendered = report.render_text()
        assert "request traces:" in rendered
        assert "server.lock_wait" in rendered

    def test_untraced_report_renders_no_trace_section(self):
        report = analyze_run(RunTelemetry(label="plain"))
        assert report.trace_count == 0
        assert "request traces:" not in report.render_text()


class TestOpsPayload:
    def test_empty_payload_shape_matches_live_payload(self):
        payload = empty_traces_payload()
        assert payload == {
            "enabled": False,
            "sample_every": 0,
            "total": 0,
            "truncated": 0,
            "traces": [],
            "server_spans": {},
            "summary": {},
        }
