"""Smoke tests: the example scripts must run end to end.

Only the quick examples run here (the heavyweight figure walkthroughs
are exercised by their scenarios in tests/analysis and by the
benchmarks); each is loaded from its file and its ``main()`` invoked.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "worked_example_walkthrough.py",
    "learned_optimizer.py",
    "contention_analysis.py",
    "telemetry_export.py",
    "live_lock_service.py",
]


def run_example(filename: str) -> str:
    namespace = runpy.run_path(
        str(EXAMPLES_DIR / filename), run_name="example_under_test"
    )
    assert "main" in namespace, f"{filename} must define main()"
    namespace["main"]()
    return filename


class TestExamples:
    def test_all_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 3  # the deliverable: at least three
        for script in scripts:
            source = script.read_text()
            assert source.lstrip().startswith(
                ("#!/usr/bin/env python3", '"""')
            ), f"{script.name} lacks a shebang/docstring header"
            assert '"""' in source

    @pytest.mark.parametrize("filename", FAST_EXAMPLES)
    def test_fast_example_runs(self, filename, capsys):
        run_example(filename)
        out = capsys.readouterr().out
        assert out.strip(), f"{filename} produced no output"

    def test_worked_example_narrates_all_steps(self, capsys):
        run_example("worked_example_walkthrough.py")
        out = capsys.readouterr().out
        for step in ("T0", "T1", "T2", "T3", "T4", "T5", "T6"):
            assert step in out

    def test_learned_optimizer_reports_benefit(self, capsys):
        run_example("learned_optimizer.py")
        out = capsys.readouterr().out
        assert "estimation error removed by learning" in out

    def test_telemetry_export_round_trips(self, capsys):
        run_example("telemetry_export.py")
        out = capsys.readouterr().out
        assert "round trip exact" in out
        assert "p95" in out and "p99" in out
