"""Wait-profiler accounting races and the incident capture sequence.

Two layers, both deterministic:

* DES-driven :class:`LockManager` scenarios pin down exactly-once wait
  accounting at the races the live service actually runs -- the
  deadline canceller vs. an already-fired grant, ``release_all`` over a
  parked waiter, timeouts and deadlock victims;
* a :class:`ManualClock` service stack walks the three incident kinds
  in a scripted order (deadlock -> escalation -> tuner freeze) and
  asserts the forensics ring captured that exact reason sequence.
"""

import threading

import pytest

from repro.engine.des import Environment
from repro.errors import DeadlockError
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager, LockTimeoutError
from repro.lockmgr.modes import LockMode
from repro.obs.waits import WaitEventProfiler
from repro.service.clock import ManualClock
from repro.service.stack import ServiceConfig, ServiceStack
from tests.service.sched import wait_until


class _EnvClock:
    """Adapter: the profiler wants ``.now()``, the DES env has ``.now``."""

    def __init__(self, env: Environment) -> None:
        self._env = env

    def now(self) -> float:
        return self._env.now


def make_profiled_manager(**kwargs):
    env = Environment()
    manager = LockManager(env, LockBlockChain(initial_blocks=4), **kwargs)
    profiler = WaitEventProfiler(_EnvClock(env))
    manager.wait_profiler = profiler
    return env, manager, profiler


class TestExactlyOnceAccounting:
    def test_granted_wait_counted_once(self):
        env, manager, profiler = make_profiled_manager()

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(5)
            manager.release_all(1)

        def waiter():
            yield env.timeout(1)
            yield from manager.lock_row(2, 0, 7, LockMode.X)
            manager.release_all(2)

        env.process(holder())
        env.process(waiter())
        env.run(until=20)
        totals = profiler.class_totals()
        assert totals["lock.granted"][0] == 1
        assert totals["lock.granted"][1] == pytest.approx(4.0)
        assert sum(c for c, _ in totals.values()) == 1
        assert profiler.open_lock_waits() == 0
        (event,) = profiler.recent()
        assert event.app_id == 2
        assert event.blocker == 1
        assert event.blocker_mode == "X"
        assert event.mode == "X"

    def test_grant_wins_race_counts_granted_not_cancelled(self):
        """Deadline fires after the grant event: the cancel must lose,
        and the wait must land in lock.granted exactly once."""
        env, manager, profiler = make_profiled_manager()
        outcome = {}

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(5)
            manager.release_all(1)  # grant event fires for app 2...
            # ...but app 2 has not resumed yet: a deadline canceller
            # arriving in this window must not withdraw the grant.
            cancelled = manager.cancel_wait(
                2, LockTimeoutError("deadline"), reason="timeout"
            )
            outcome["cancelled"] = cancelled

        def waiter():
            yield env.timeout(1)
            yield from manager.lock_row(2, 0, 7, LockMode.X)
            outcome["granted_at"] = env.now
            manager.release_all(2)

        env.process(holder())
        env.process(waiter())
        env.run(until=20)
        assert outcome["cancelled"] is False
        assert outcome["granted_at"] == 5.0
        totals = profiler.class_totals()
        assert totals["lock.granted"][0] == 1
        assert totals["lock.timeout"][0] == 0
        assert totals["lock.cancelled"][0] == 0
        assert profiler.open_lock_waits() == 0

    def test_cancel_before_grant_counts_terminal_class_once(self):
        env, manager, profiler = make_profiled_manager()
        outcome = {}

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(3)
            cancelled = manager.cancel_wait(
                2, LockTimeoutError("deadline"), reason="timeout"
            )
            outcome["cancelled"] = cancelled
            manager.release_all(1)

        def waiter():
            yield env.timeout(1)
            try:
                yield from manager.lock_row(2, 0, 7, LockMode.X)
                outcome["result"] = "granted"
            except LockTimeoutError:
                outcome["result"] = "timeout"
                manager.release_all(2)

        env.process(holder())
        env.process(waiter())
        env.run(until=20)
        assert outcome["cancelled"] is True
        assert outcome["result"] == "timeout"
        totals = profiler.class_totals()
        assert totals["lock.timeout"][0] == 1
        assert totals["lock.timeout"][1] == pytest.approx(2.0)
        assert totals["lock.granted"][0] == 0
        assert profiler.open_lock_waits() == 0

    def test_locktimeout_expiry_counts_timeout_once(self):
        env, manager, profiler = make_profiled_manager(lock_timeout_s=2.0)

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(100)
            manager.release_all(1)

        def waiter():
            yield env.timeout(1)
            try:
                yield from manager.lock_row(2, 0, 7, LockMode.X)
            except LockTimeoutError:
                manager.release_all(2)

        env.process(holder())
        env.process(waiter())
        env.run(until=50)
        totals = profiler.class_totals()
        assert totals["lock.timeout"][0] == 1
        assert totals["lock.granted"][0] == 0
        assert profiler.open_lock_waits() == 0

    def test_release_all_leaves_no_open_wait(self):
        """A parked waiter rolled back wholesale must close its wait."""
        env, manager, profiler = make_profiled_manager()

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(5)
            # Roll the *waiter* back while it is still parked.
            manager.release_all(2)
            manager.release_all(1)

        def waiter():
            yield env.timeout(1)
            try:
                yield from manager.lock_row(2, 0, 7, LockMode.X)
            except Exception:
                pass

        env.process(holder())
        env.process(waiter())
        env.run(until=20)
        totals = profiler.class_totals()
        assert totals["lock.cancelled"][0] == 1
        assert profiler.open_lock_waits() == 0
        manager.check_invariants()

    def test_immediate_deadlock_victim_never_opens_a_wait(self):
        env, manager, profiler = make_profiled_manager()
        outcome = {}

        def proc_a():
            yield from manager.lock_row(1, 0, 1, LockMode.X)
            yield env.timeout(2)
            try:
                yield from manager.lock_row(1, 0, 2, LockMode.X)
                outcome[1] = "granted"
            except DeadlockError:
                outcome[1] = "deadlock"
            manager.release_all(1)

        def proc_b():
            yield from manager.lock_row(2, 0, 2, LockMode.X)
            yield env.timeout(1)
            yield from manager.lock_row(2, 0, 1, LockMode.X)
            outcome[2] = "granted"
            manager.release_all(2)

        env.process(proc_a())
        env.process(proc_b())
        env.run(until=20)
        assert outcome[1] == "deadlock"
        assert outcome[2] == "granted"
        totals = profiler.class_totals()
        # The victim's doomed request is rejected before it ever parks;
        # only app 2's wait (granted after the rollback) is recorded.
        assert totals["lock.deadlock"][0] == 0
        assert totals["lock.granted"][0] == 1
        assert profiler.open_lock_waits() == 0


class TestIncidentCaptureSequence:
    def make_stack(self, **overrides):
        defaults = dict(
            total_memory_pages=8_192,
            initial_locklist_pages=32,
            tuner_interval_s=30.0,  # daemon idle; the test drives tune_now
            telemetry=True,
            wait_profile=True,
        )
        defaults.update(overrides)
        clock = ManualClock()
        return ServiceStack(ServiceConfig(**defaults), clock=clock), clock

    def test_deadlock_then_escalation_then_freeze(self):
        stack, clock = self.make_stack()
        with stack:
            service = stack.service
            a, b = service.open_session(), service.open_session()

            # --- incident 1: deadlock -------------------------------
            service.lock_row(a, 0, 1, LockMode.X)
            service.lock_row(b, 0, 2, LockMode.X)
            blocked = threading.Thread(
                target=service.lock_row, args=(a, 0, 2, LockMode.X),
                daemon=True,
            )
            blocked.start()
            wait_until(
                lambda: a in service.waiting_sessions(),
                what="session a parked behind b",
            )
            # b closing the cycle is detected immediately: b is victim.
            with pytest.raises(DeadlockError):
                service.lock_row(b, 0, 1, LockMode.X)
            service.rollback(b)
            blocked.join(10.0)
            assert not blocked.is_alive()
            service.rollback(a)

            (deadlock,) = stack.incidents.records()
            assert deadlock.kind == "deadlock"
            assert deadlock.app_id == b
            assert set(deadlock.cycle) == {a, b}
            assert deadlock.cycle[0] == b  # victim first
            assert "cycle" in deadlock.detail
            assert deadlock.posture["waiting_apps"] >= 1
            # a is parked behind b's X on row 2, so b is the top blocker.
            assert any(blk["app"] == b for blk in deadlock.blockers)

            # --- incident 2: escalation -----------------------------
            service.manager.growth_provider = None
            maxlocks = int(
                stack.chain.capacity_slots
                * service.manager.maxlocks_fraction
            )
            for row in range(maxlocks + 2):
                service.lock_row(a, 3, row, LockMode.S)
            assert service.manager.stats.escalations.count >= 1
            service.rollback(a)

            kinds = stack.incidents.kinds()
            assert kinds[0] == "deadlock"
            assert "escalation" in kinds
            escalation = next(
                r for r in stack.incidents.records()
                if r.kind == "escalation"
            )
            assert escalation.app_id == a
            assert escalation.data["table_id"] == 3
            assert escalation.data["rows_freed"] > 0

            # --- incident 3: tuner freeze ---------------------------
            def bomb():
                raise RuntimeError("injected tuner bug")

            stack.controller.compute_target_pages = bomb
            clock.advance(30.0)
            with pytest.raises(RuntimeError):
                stack.tuner.tune_now()

            service.close_session(a)
            service.close_session(b)

        freeze = stack.incidents.records()[-1]
        assert freeze.kind == "tuner-freeze"
        assert "injected tuner bug" in freeze.detail
        assert freeze.app_id == -1
        # The freeze capture includes the audit trail ending in freeze.
        assert freeze.audit_tail[-1]["reason"] == "freeze"

        counts = stack.incidents.kind_counts()
        assert counts["deadlock"] == 1
        assert counts["escalation"] >= 1
        assert counts["tuner-freeze"] == 1
        # Scripted order: deadlock strictly first, freeze strictly last.
        kinds = stack.incidents.kinds()
        assert kinds[0] == "deadlock"
        assert kinds[-1] == "tuner-freeze"
        assert stack.incidents.total_recorded == len(kinds)

    def test_wait_classes_populated_through_stack(self):
        stack, _ = self.make_stack()
        with stack:
            service = stack.service
            a, b = service.open_session(), service.open_session()
            service.lock_row(a, 0, 1, LockMode.X)
            blocked = threading.Thread(
                target=service.lock_row, args=(b, 0, 1, LockMode.S),
                daemon=True,
            )
            blocked.start()
            wait_until(
                lambda: b in service.waiting_sessions(),
                what="session b parked behind a",
            )
            service.rollback(a)
            blocked.join(10.0)
            assert not blocked.is_alive()
            service.rollback(b)
            service.close_session(a)
            service.close_session(b)
        (profiler,) = stack.wait_profilers
        totals = profiler.class_totals()
        assert totals["lock.granted"][0] == 1
        assert profiler.open_lock_waits() == 0
        assert profiler.latch.gets > 0
        (event,) = [
            e for e in profiler.recent() if e.wait_class == "lock.granted"
        ]
        assert event.app_id == b
        assert event.blocker == a
