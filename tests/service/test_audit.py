"""The STMM decision audit log, driven deterministically in virtual time.

A :class:`ManualClock` stack with a long daemon interval is tuned by
hand (``tune_now``), with the lock load arranged so each pass takes a
*known* branch of the paper's section 3 rules.  The audit log's reason
sequence must match exactly -- this is the acceptance criterion that
``/stmm``'s trail speaks the truth about the tuner's actions.
"""

import pytest

from repro.lockmgr.modes import LockMode
from repro.obs.audit import AUDIT_REASONS, TuningAuditLog, TuningAuditRecord, audit_reason_for
from repro.service.clock import ManualClock
from repro.service.stack import ServiceConfig, ServiceStack
from repro.service.telemetry import service_telemetry


def make_stack(**overrides):
    defaults = dict(
        total_memory_pages=8_192,
        initial_locklist_pages=32,
        tuner_interval_s=30.0,  # daemon idle; tests drive tune_now()
        telemetry=True,
    )
    defaults.update(overrides)
    clock = ManualClock()
    return ServiceStack(ServiceConfig(**defaults), clock=clock), clock


class TestReasonMapping:
    def test_controller_vocabulary_covered(self):
        assert audit_reason_for("grow-to-min-free") == "grow-async"
        assert audit_reason_for("shrink-delta-reduce") == "shrink-5pct"
        assert audit_reason_for("escalation-doubling") == (
            "double-escalation-recovery"
        )
        assert audit_reason_for("hold") == "noop"

    def test_unknown_reason_degrades_to_noop(self):
        assert audit_reason_for("some-future-branch") == "noop"

    def test_log_rejects_unknown_reason(self):
        log = TuningAuditLog()
        record = TuningAuditRecord(
            interval=1, time=0.0, reason="made-up", delta_pages=0,
            current_pages=0, target_pages=0, used_pages=0, free_fraction=0.0,
            overflow_pages=0, escalations_in_interval=0, lmo_headroom_pages=0,
        )
        with pytest.raises(ValueError):
            log.append(record)

    def test_ring_bounded_but_total_counts(self):
        log = TuningAuditLog(capacity=2)
        for i in range(5):
            log.append(
                TuningAuditRecord(
                    interval=i + 1, time=float(i), reason="noop",
                    delta_pages=0, current_pages=0, target_pages=0,
                    used_pages=0, free_fraction=0.0, overflow_pages=0,
                    escalations_in_interval=0, lmo_headroom_pages=0,
                )
            )
        assert len(log) == 2
        assert log.total_recorded == 5
        assert [r.interval for r in log.records()] == [4, 5]


class TestDeterministicReasonSequence:
    def test_audit_matches_tuner_actions(self):
        stack, clock = make_stack()
        params = stack.config.params
        with stack:
            service = stack.service
            app = service.open_session()

            # Interval 1: free fraction below minFree -> grow-async.
            capacity = stack.chain.capacity_slots
            grow_rows = int(capacity * (1.0 - params.min_free_fraction)) + 64
            for row in range(grow_rows):
                service.lock_row(app, 0, row, LockMode.S)
            assert stack.chain.free_fraction() < params.min_free_fraction
            clock.advance(30.0)
            stack.tuner.tune_now()

            # Interval 2: everything released -> free above maxFree ->
            # shrink-5pct.
            service.rollback(app)
            assert stack.chain.free_fraction() > params.max_free_fraction
            clock.advance(30.0)
            stack.tuner.tune_now()

            # Interval 3: an escalation burst this interval -> doubling.
            from repro.lockmgr.escalation import EscalationOutcome

            for _ in range(3):
                service.manager.stats.escalations.record(
                    EscalationOutcome(
                        time=clock.now(), app_id=app, table_id=0,
                        reason="maxlocks", target_mode=LockMode.S,
                        freed_slots=0, waited=False,
                    )
                )
            clock.advance(30.0)
            stack.tuner.tune_now()

            # Interval 4: free fraction inside the band -> noop.
            capacity = stack.chain.capacity_slots
            band_mid = (params.min_free_fraction + params.max_free_fraction) / 2
            hold_rows = int(capacity * (1.0 - band_mid))
            for row in range(hold_rows):
                service.lock_row(app, 1, row, LockMode.S)
            free = stack.chain.free_fraction()
            assert params.min_free_fraction < free < params.max_free_fraction
            clock.advance(30.0)
            stack.tuner.tune_now()

            # Terminal: tuner crash -> freeze entry, service degraded.
            def bomb():
                raise RuntimeError("injected tuner bug")

            stack.controller.compute_target_pages = bomb
            clock.advance(30.0)
            with pytest.raises(RuntimeError):
                stack.tuner.tune_now()

            service.rollback(app)
            service.close_session(app)

        assert stack.tuner.audit.reasons() == [
            "grow-async",
            "shrink-5pct",
            "double-escalation-recovery",
            "noop",
            "freeze",
        ]
        records = stack.tuner.audit.records()
        for record in records:
            assert record.reason in AUDIT_REASONS
        grow, shrink, doubling, noop, freeze = records
        assert grow.delta_pages > 0
        assert grow.interval == 1
        assert grow.time == 30.0
        assert shrink.delta_pages <= 0
        assert doubling.escalations_in_interval == 3
        assert doubling.target_pages >= 2 * doubling.current_pages
        assert noop.delta_pages == 0
        assert freeze.interval == 0
        assert "injected tuner bug" in freeze.detail
        assert stack.service.frozen_reason is not None

    def test_audit_records_carry_decision_inputs(self):
        stack, clock = make_stack()
        with stack:
            clock.advance(30.0)
            stack.tuner.tune_now()
        (record,) = stack.tuner.audit.records()
        (decision,) = stack.controller.decisions
        assert record.reason == audit_reason_for(decision.reason)
        assert record.detail == decision.reason
        assert record.current_pages == decision.current_pages
        assert record.target_pages == decision.target_pages
        assert record.used_pages == decision.used_pages
        assert record.free_fraction == decision.free_fraction
        assert record.time == decision.time
        assert record.overflow_pages == stack.registry.overflow_pages
        assert record.lmo_headroom_pages >= 0

    def test_round_trip_through_dict(self):
        stack, clock = make_stack()
        with stack:
            clock.advance(30.0)
            stack.tuner.tune_now()
        (record,) = stack.tuner.audit.records()
        assert TuningAuditRecord.from_dict(record.to_dict()) == record


class TestTelemetryExport:
    def test_audit_survives_jsonl_round_trip(self, tmp_path):
        stack, clock = make_stack()
        with stack:
            with stack.service.session() as app:
                stack.service.lock_row(app, 0, 1, LockMode.X)
                stack.service.rollback(app)
            clock.advance(30.0)
            stack.tuner.tune_now()
        telemetry = service_telemetry(stack, label="audit-test")
        path = tmp_path / "svc.jsonl"
        telemetry.write_jsonl(str(path))

        from repro.obs.events import RunTelemetry

        loaded = RunTelemetry.from_jsonl(str(path))
        assert loaded.label == "audit-test"
        assert [a.reason for a in loaded.audit] == (
            stack.tuner.audit.reasons()
        )
        assert loaded.audit == stack.tuner.audit.records()
        assert len(loaded.decisions) == len(stack.controller.decisions)
        # The shared registry's final counters survive too.
        assert (
            loaded.registry.counter("service.requests").value
            == stack.metrics.counter("service.requests").value
        )
