"""Tests for the admission controller (bounded concurrency + shedding)."""

import threading
import time

import pytest

from repro.errors import (
    AdmissionRejectedError,
    AdmissionTimeoutError,
    ServiceClosedError,
)
from repro.service.admission import AdmissionController
from tests.service.sched import wait_until


class TestValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
        with pytest.raises(ValueError):
            AdmissionController(1, max_queue_depth=-1)

    def test_release_without_acquire(self):
        controller = AdmissionController(1)
        with pytest.raises(ValueError):
            controller.release()


class TestSlots:
    def test_admits_up_to_capacity(self):
        controller = AdmissionController(3, max_queue_depth=0)
        for _ in range(3):
            controller.acquire()
        assert controller.in_flight() == 3
        assert controller.stats.peak_in_flight == 3

    def test_sheds_beyond_queue_depth_with_retry_hint(self):
        controller = AdmissionController(1, max_queue_depth=0, retry_after_s=0.25)
        controller.acquire()
        with pytest.raises(AdmissionRejectedError) as info:
            controller.acquire()
        assert info.value.retry_after_s == 0.25
        assert controller.stats.sheds == 1

    def test_release_reopens_the_door(self):
        controller = AdmissionController(1, max_queue_depth=0)
        controller.acquire()
        controller.release()
        controller.acquire()  # no exception
        assert controller.stats.admitted == 2
        assert controller.stats.completed == 1

    def test_queued_waiter_admitted_on_release(self):
        controller = AdmissionController(1, max_queue_depth=4)
        controller.acquire()
        admitted = threading.Event()

        def waiter():
            controller.acquire()
            admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        wait_until(
            lambda: controller.queue_depth() == 1,
            what="waiter queued at admission",
        )
        assert not admitted.is_set()
        controller.release()
        thread.join(5.0)
        assert admitted.is_set()
        assert controller.stats.peak_queue_depth == 1

    def test_fifo_order_among_queued_waiters(self):
        controller = AdmissionController(1, max_queue_depth=8)
        controller.acquire()
        admitted = []
        lock = threading.Lock()
        threads = []

        def waiter(tag):
            controller.acquire()
            with lock:
                admitted.append(tag)
            controller.release()

        for tag in range(4):
            thread = threading.Thread(target=waiter, args=(tag,), daemon=True)
            thread.start()
            threads.append(thread)
            # ensure this waiter is queued before starting the next
            wait_until(
                lambda: controller.queue_depth() == tag + 1,
                what=f"waiter {tag} queued at admission",
            )
        controller.release()
        for thread in threads:
            thread.join(5.0)
            assert not thread.is_alive()
        assert admitted == [0, 1, 2, 3]

    def test_wait_deadline_expires(self):
        controller = AdmissionController(1, max_queue_depth=4)
        controller.acquire()
        started = time.monotonic()
        with pytest.raises(AdmissionTimeoutError):
            controller.acquire(timeout_s=0.05)
        assert time.monotonic() - started < 5.0
        assert controller.stats.timeouts == 1
        assert controller.queue_depth() == 0  # the dead ticket is gone

    def test_timed_out_waiter_does_not_wedge_the_queue(self):
        """A waiter abandoning the queue head must pass the torch."""
        controller = AdmissionController(1, max_queue_depth=4)
        controller.acquire()
        with pytest.raises(AdmissionTimeoutError):
            controller.acquire(timeout_s=0.05)
        admitted = threading.Event()

        def waiter():
            controller.acquire()
            admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        wait_until(
            lambda: controller.queue_depth() == 1,
            what="waiter queued at admission",
        )
        controller.release()
        thread.join(5.0)
        assert admitted.is_set()


class TestClose:
    def test_close_rejects_new_and_wakes_queued(self):
        controller = AdmissionController(1, max_queue_depth=4)
        controller.acquire()
        result = {}

        def waiter():
            try:
                controller.acquire()
                result["outcome"] = "admitted"
            except ServiceClosedError:
                result["outcome"] = "closed"

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        wait_until(
            lambda: controller.queue_depth() == 1,
            what="waiter queued at admission",
        )
        controller.close()
        thread.join(5.0)
        assert result["outcome"] == "closed"
        with pytest.raises(ServiceClosedError):
            controller.acquire()
