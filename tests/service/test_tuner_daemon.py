"""Tests for the STMM tuner daemon (live tuning + crash degradation)."""

import time

import pytest

from repro.lockmgr.modes import LockMode
from repro.service.stack import ServiceConfig, ServiceStack
from tests.service.sched import wait_until


def make_stack(**overrides) -> ServiceStack:
    defaults = dict(
        total_memory_pages=8_192,
        initial_locklist_pages=32,
        tuner_interval_s=0.02,
        telemetry=True,
    )
    defaults.update(overrides)
    return ServiceStack(ServiceConfig(**defaults))


class TestLiveTuning:
    def test_daemon_runs_intervals_on_wall_clock(self):
        stack = make_stack()
        with stack:
            wait_until(
                lambda: stack.tuner.intervals_run >= 3,
                what="three tuner intervals",
            )
        assert stack.tuner.intervals_run >= 3
        assert stack.tuner.crash is None
        assert len(stack.tuner.reports) == stack.tuner.intervals_run
        stack.check_invariants()

    def test_tuning_grows_lock_memory_under_demand(self):
        """Hold most of the lock list; the daemon's next pass must grow
        it (free fraction below minFreeLockMemory)."""
        stack = make_stack(tuner_interval_s=30.0)  # drive tuning manually
        before = stack.chain.allocated_pages
        with stack:
            with stack.service.session() as app:
                # one block = 2048 slots; push free fraction below 50 %
                for row in range(1_200):
                    stack.service.lock_row(app, 0, row, LockMode.S)
                stack.tuner.tune_now()
                after = stack.chain.allocated_pages
                assert after > before
        stack.check_invariants()
        assert stack.registry.heap("locklist").size_pages == after

    def test_interval_report_recorded(self):
        stack = make_stack(tuner_interval_s=30.0)
        with stack:
            report = stack.tuner.tune_now()
        assert report is stack.tuner.reports[0]
        assert stack.tuner.intervals_run == 1

    def test_stop_joins_the_thread(self):
        stack = make_stack()
        stack.start()
        assert stack.tuner.alive
        stack.stop()
        assert not stack.tuner.alive

    def test_metrics_published(self):
        stack = make_stack(tuner_interval_s=30.0)
        with stack:
            stack.tuner.tune_now()
        counters = {c.name: c.value for c in stack.metrics.counters()}
        gauges = {g.name: g.value for g in stack.metrics.gauges()}
        assert counters["tuner.intervals"] == 1
        assert gauges["tuner.locklist_pages"] == stack.chain.allocated_pages


class TestCrashDegradation:
    def _crash_tuner(self, stack: ServiceStack) -> None:
        """Make the next controller pass explode inside stmm.tune."""

        def bomb():
            raise RuntimeError("tuner bug")

        # compute_target_pages is the first controller step of a pass and
        # runs before any page moves, so the crash has no side effects.
        stack.controller.compute_target_pages = bomb

    def test_crash_freezes_service_and_preserves_accounting(self):
        stack = make_stack(tuner_interval_s=0.02)
        self._crash_tuner(stack)
        with stack:
            wait_until(
                lambda: not stack.tuner.alive,
                what="tuner thread death after injected crash",
            )
            assert not stack.tuner.alive
            assert isinstance(stack.tuner.crash, RuntimeError)
            assert stack.tuner.frozen
            assert stack.service.frozen_reason is not None
            # frozen = static LOCKLIST: no growth provider, fixed maxlocks
            assert stack.service.manager.growth_provider is None
            assert stack.service.manager.maxlocks_provider is None
            # the service keeps serving requests in degraded mode
            with stack.service.session() as app:
                stack.service.lock_row(app, 0, 1, LockMode.X)
        stack.check_invariants()
        assert stack.chain.used_slots == 0

    def test_tune_now_reraises_after_freezing(self):
        stack = make_stack(tuner_interval_s=30.0)
        self._crash_tuner(stack)
        with stack:
            with pytest.raises(RuntimeError, match="tuner bug"):
                stack.tuner.tune_now()
            assert stack.tuner.frozen
            assert stack.service.frozen_reason is not None
        stack.check_invariants()

    def test_crash_metrics(self):
        stack = make_stack(tuner_interval_s=30.0)
        self._crash_tuner(stack)
        with stack:
            with pytest.raises(RuntimeError):
                stack.tuner.tune_now()
        counters = {c.name: c.value for c in stack.metrics.counters()}
        assert counters["tuner.crashes"] == 1
        assert counters["service.tuning_frozen"] == 1
