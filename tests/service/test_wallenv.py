"""Tests for the wall-clock environment (events, lazy timeouts, any_of)."""

import threading

import pytest

from repro.errors import SimulationError
from repro.service.clock import ManualClock
from repro.service.wallenv import WallClockEnvironment


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def env(clock):
    return WallClockEnvironment(clock, threading.Condition())


class TestWallEvent:
    def test_lifecycle(self, env):
        event = env.event()
        assert not event.triggered
        with pytest.raises(SimulationError):
            event.ok
        with pytest.raises(SimulationError):
            event.value
        event.succeed("payload")
        assert event.triggered and event.ok
        assert event.value == "payload"

    def test_fires_exactly_once(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("late"))

    def test_fail_carries_exception(self, env):
        event = env.event()
        exc = RuntimeError("boom")
        event.fail(exc)
        assert event.triggered and not event.ok
        assert event.value is exc

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_callbacks_run_on_fire_and_immediately_after(self, env):
        event = env.event()
        seen = []
        event.add_callback(seen.append)
        event.succeed()
        assert seen == [event]
        event.add_callback(seen.append)  # post-fire: runs immediately
        assert seen == [event, event]

    def test_firing_notifies_the_condition(self, clock):
        cond = threading.Condition()
        env = WallClockEnvironment(clock, cond)
        event = env.event()
        woke = threading.Event()

        def waiter():
            with cond:
                while not event.triggered:
                    cond.wait(5.0)
                woke.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        with cond:
            event.succeed()
        thread.join(5.0)
        assert woke.is_set()

    def test_plain_event_has_no_deadline(self, env):
        event = env.event()
        assert event.next_deadline() is None
        event.fire_due(1e9)  # no-op on plain events
        assert not event.triggered


class TestWallTimeout:
    def test_deadline_arithmetic(self, env, clock):
        clock.advance(10.0)
        timeout = env.timeout(5.0, value="late")
        assert timeout.fire_at == 15.0
        assert timeout.next_deadline() == 15.0

    def test_not_due_yet(self, env):
        timeout = env.timeout(5.0)
        timeout.fire_due(4.999)
        assert not timeout.triggered

    def test_fires_when_due(self, env):
        timeout = env.timeout(5.0, value="late")
        timeout.fire_due(5.0)
        assert timeout.triggered and timeout.ok
        assert timeout.value == "late"
        assert timeout.next_deadline() is None

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-0.1)


class TestWallAnyOf:
    def test_first_success_wins(self, env):
        first, second = env.event(), env.event()
        composite = env.any_of([first, second])
        first.succeed("a")
        assert composite.triggered and composite.ok
        assert composite.value == {first: "a"}
        # the late event doesn't disturb the settled composite
        second.succeed("b")
        assert composite.value == {first: "a"}

    def test_child_failure_fails_composite(self, env):
        first, second = env.event(), env.event()
        composite = env.any_of([first, second])
        exc = RuntimeError("child died")
        first.fail(exc)
        assert composite.triggered and not composite.ok
        assert composite.value is exc

    def test_pre_triggered_child_settles_composite_immediately(self, env):
        done = env.event()
        done.succeed(42)
        composite = env.any_of([done, env.event()])
        assert composite.triggered
        assert composite.value == {done: 42}

    def test_deadline_is_earliest_child_deadline(self, env):
        composite = env.any_of(
            [env.event(), env.timeout(9.0), env.timeout(3.0)]
        )
        assert composite.next_deadline() == 3.0

    def test_fire_due_recurses_into_children(self, env):
        grant = env.event()
        timeout = env.timeout(2.0)
        composite = env.any_of([grant, timeout])
        composite.fire_due(1.0)
        assert not composite.triggered
        composite.fire_due(2.0)
        assert composite.triggered and timeout.triggered
        assert composite.next_deadline() is None

    def test_rejects_foreign_events(self, env, clock):
        other = WallClockEnvironment(clock, threading.Condition())
        with pytest.raises(SimulationError):
            env.any_of([env.event(), other.event()])


class TestEnvironmentSurface:
    def test_now_delegates_to_clock(self, env, clock):
        assert env.now == 0.0
        clock.advance(7.25)
        assert env.now == 7.25
