"""Seeded property tests: sharding must be invisible to accounting.

Two families, both pure stdlib (``random.Random(seed)`` workloads, no
hypothesis) so they run identically under any ``PYTHONHASHSEED``:

* **Shard-count invariance** -- the same scripted workload replayed
  against shards=1, shards=2 and shards=4 (and the unsharded stack)
  must produce the *identical* aggregate accounting tuple: grants,
  timeouts, escalations and cancelled waits.  Partitioning the lock
  table may change where a lock lives, never whether it is granted.
  Conflicts use ``timeout_s=0`` (immediate, deterministic timeout), so
  a single driver thread replays the exact same decision sequence on
  every topology.

* **Free-band safety** -- after the asynchronous tuning passes settle
  under any stable demand, the aggregate free fraction sits inside the
  paper's 50--60 % band (modulo one resize step of rounding) unless
  the controller is pinned at its min/max bounds, and no intermediate
  pass ever breaks page accounting, the ledger, or the LMOmax ceiling.
"""

import random

import pytest

from repro.lockmgr.manager import LockTimeoutError
from repro.lockmgr.modes import LockMode
from repro.service.sharded import ShardedServiceConfig, ShardedServiceStack
from repro.service.stack import ServiceConfig, ServiceStack
from repro.units import LOCKS_PER_BLOCK, PAGES_PER_BLOCK

SEEDS = [7, 401, 0xC0FFEE]

#: Mixed-mode single-driver workload.  Every branch is a deterministic
#: function of the RNG stream and the service's *logical* lock state,
#: which sharding does not change.
N_SESSIONS = 6
N_TABLES = 8
N_ROWS = 48


def run_workload(stack, seed: int, steps: int = 500) -> None:
    rng = random.Random(seed)
    service = stack.service
    sessions = [service.open_session() for _ in range(N_SESSIONS)]
    for _ in range(steps):
        app = sessions[rng.randrange(N_SESSIONS)]
        roll = rng.random()
        try:
            if roll < 0.50:
                mode = LockMode.X if rng.random() < 0.4 else LockMode.S
                service.lock_row(
                    app,
                    rng.randrange(N_TABLES),
                    rng.randrange(N_ROWS),
                    mode,
                    timeout_s=0,
                )
            elif roll < 0.70:
                mode = LockMode.X if rng.random() < 0.25 else LockMode.S
                service.lock_table(
                    app, rng.randrange(N_TABLES), mode, timeout_s=0
                )
            elif roll < 0.85:
                service.release_read_lock(
                    app, rng.randrange(N_TABLES), rng.randrange(N_ROWS)
                )
            else:
                service.rollback(app)
        except LockTimeoutError:
            pass
    for app in sessions:
        service.rollback(app)
        service.close_session(app)


def service_stats(stack):
    svc = stack.service
    if hasattr(svc, "aggregate_stats"):
        return svc.aggregate_stats()
    return svc.stats


def accounting_tuple(stack):
    """Everything that must be invariant under re-sharding.

    ``peak_used_slots`` is deliberately absent: per-shard peaks sum to
    an upper bound of the global peak, not the global peak itself.
    """
    s = service_stats(stack)
    m = stack.manager_stats
    return (
        s.requests,
        s.granted,
        s.timeouts,
        s.cancellations,
        m.requests,
        m.immediate_grants,
        m.waits,
        m.lock_timeouts,
        m.cancelled_waits,
        m.deadlocks,
        m.escalations.count,
        m.escalations.failures,
    )


def make_stack(shards: int):
    if shards == 0:
        return ServiceStack(ServiceConfig(tuner_interval_s=None))
    return ShardedServiceStack(
        ShardedServiceConfig(shards=shards, tuner_interval_s=None)
    )


class TestShardCountInvariance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_accounting_identical_across_topologies(self, seed):
        results = {}
        for shards in (0, 1, 2, 4):
            stack = make_stack(shards)
            run_workload(stack, seed)
            results[shards] = accounting_tuple(stack)
            # the workload rolled everything back: nothing may leak
            assert stack.chain.used_slots == 0
            stack.stop()
            stack.check_invariants()
        baseline = results[0]
        # the workload must actually exercise the interesting paths
        assert baseline[0] > 0  # requests
        assert baseline[2] > 0  # service-level timeouts
        for shards, got in results.items():
            assert got == baseline, (
                f"shards={shards} accounting diverged from unsharded: "
                f"{got} != {baseline}"
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ledger_occupancy_matches_chain_aggregates(self, seed):
        """Mid-workload, the ledger view and the chains never disagree."""
        stack = make_stack(4)
        rng = random.Random(seed)
        service = stack.service
        apps = [service.open_session() for _ in range(4)]
        for step in range(200):
            app = apps[rng.randrange(len(apps))]
            try:
                service.lock_row(
                    app,
                    rng.randrange(N_TABLES),
                    rng.randrange(N_ROWS),
                    LockMode.S,
                    timeout_s=0,
                )
            except LockTimeoutError:
                pass
            if step % 50 == 49:
                occupancy = service.ledger.occupancy()
                assert sum(o.used_slots for o in occupancy) == (
                    stack.chain.used_slots
                )
                assert sum(o.capacity_slots for o in occupancy) == (
                    stack.chain.capacity_slots
                )
                assert all(0.0 <= o.free_fraction <= 1.0 for o in occupancy)
        for app in apps:
            service.rollback(app)
            service.close_session(app)
        stack.stop()
        stack.check_invariants()


class TestFreeBandSafety:
    def _settle(self, stack, max_passes: int = 60) -> None:
        """Tune until the allocation stops moving (or give up loudly)."""
        for _ in range(max_passes):
            before = stack.chain.allocated_pages
            stack.tuner.tune_now()
            stack.check_invariants()
            assert (
                stack.chain.allocated_pages
                <= stack.controller.max_lock_memory_pages()
            )
            if stack.chain.allocated_pages == before:
                return
        raise AssertionError("tuner never settled")

    def _assert_band(self, stack) -> None:
        params = stack.controller.params
        free = stack.chain.free_fraction()
        pages = stack.chain.allocated_pages
        at_min = pages <= stack.controller.min_lock_memory_pages()
        at_max = pages >= stack.controller.max_lock_memory_pages()
        in_band = (
            params.min_free_fraction - 0.05
            <= free
            <= params.max_free_fraction + 0.05
        )
        # one grant split's worth of rounding slack around the band
        near_boundary = (
            abs(free - params.max_free_fraction) * stack.chain.capacity_slots
            <= (len(stack.service.shards) + 1) * LOCKS_PER_BLOCK
        )
        assert in_band or at_min or at_max or near_boundary, (
            f"free={free:.3f} pages={pages} outside band with no excuse"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_band_holds_after_settling_under_random_demand(self, seed):
        rng = random.Random(seed)
        stack = ShardedServiceStack(
            ShardedServiceConfig(
                shards=4,
                initial_locklist_pages=4 * PAGES_PER_BLOCK,
                tuner_interval_s=None,
            )
        )
        service = stack.service
        apps = [service.open_session() for _ in range(4)]
        for phase in range(3):
            # pick a demand level and a skew: some phases hammer one
            # shard, others spread evenly
            rows_per_app = rng.randrange(0, 1500)
            tables = (
                [rng.randrange(N_TABLES)]
                if rng.random() < 0.5
                else list(range(4))
            )
            for app in apps:
                service.rollback(app)
                for i in range(rows_per_app):
                    service.lock_row(
                        app, tables[i % len(tables)], i, LockMode.S
                    )
            self._settle(stack)
            self._assert_band(stack)
        for app in apps:
            service.rollback(app)
        self._settle(stack)
        # all demand gone: the controller shrinks toward its floor
        assert stack.chain.used_slots == 0
        for app in apps:
            service.close_session(app)
        stack.stop()
        stack.check_invariants()

    def test_grant_split_preserves_block_totals(self):
        """Distribution arithmetic: grants always sum to the grant."""
        stack = ShardedServiceStack(
            ShardedServiceConfig(shards=3, tuner_interval_s=None)
        )
        rng = random.Random(11)
        with stack.service._cond:
            for _ in range(100):
                blocks = rng.randrange(0, 9)
                split = stack.ledger.grant_split(blocks)
                assert sum(split) == blocks
                assert len(split) == 3
                assert all(share >= 0 for share in split)
        stack.stop()
