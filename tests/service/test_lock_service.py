"""Tests for the thread-safe LockService facade."""

import threading
import time

import pytest

from tests.service.sched import wait_until

from repro.errors import (
    DeadlockError,
    RequestCancelledError,
    ServiceClosedError,
    ServiceError,
)
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockTimeoutError
from repro.lockmgr.modes import LockMode
from repro.service.service import LockService


def make_service(**kwargs):
    return LockService(LockBlockChain(initial_blocks=2), **kwargs)


def spawn(fn, *args):
    thread = threading.Thread(target=fn, args=args, daemon=True)
    thread.start()
    return thread


class TestBasics:
    def test_uncontended_grant_and_release(self):
        service = make_service()
        app = service.open_session()
        service.lock_row(app, 0, 1, LockMode.X)
        service.lock_table(app, 1, LockMode.S)
        assert service.manager.app_slots(app) == 3  # row + intent + table
        freed = service.close_session(app)
        assert freed == 3
        assert service.chain.used_slots == 0
        service.check_invariants()

    def test_session_context_manager_always_releases(self):
        service = make_service()
        with pytest.raises(RuntimeError):
            with service.session() as app:
                service.lock_row(app, 0, 1, LockMode.X)
                raise RuntimeError("client bug")
        assert service.chain.used_slots == 0
        assert service.session_count() == 0

    def test_requests_require_an_open_session(self):
        service = make_service()
        with pytest.raises(ServiceError, match="not open"):
            service.lock_row(99, 0, 1, LockMode.S)

    def test_shared_locks_do_not_block(self):
        service = make_service()
        with service.session() as a, service.session() as b:
            service.lock_row(a, 0, 1, LockMode.S)
            service.lock_row(b, 0, 1, LockMode.S)
            assert service.stats.granted == 2

    def test_stats_count_outcomes(self):
        service = make_service()
        with service.session() as app:
            service.lock_row(app, 0, 1, LockMode.X)
        assert service.stats.requests == 1
        assert service.stats.granted == 1
        assert service.stats.sessions_opened == 1
        assert service.stats.sessions_closed == 1


class TestBlockingAndHandoff:
    def test_conflicting_lock_blocks_until_release(self):
        service = make_service()
        holder = service.open_session()
        service.lock_row(holder, 0, 7, LockMode.X)
        order = []

        def contender():
            with service.session() as app:
                service.lock_row(app, 0, 7, LockMode.X)
                order.append("granted")

        thread = spawn(contender)
        wait_until(
            lambda: len(service.waiting_sessions()) == 1,
            what="contender parked in the wait queue",
        )
        assert order == []  # observably enqueued, not granted
        order.append("releasing")
        service.close_session(holder)
        thread.join(5.0)
        assert not thread.is_alive()
        assert order == ["releasing", "granted"]
        service.check_invariants()

    def test_fifo_grant_order_under_contention(self):
        """Waiters are granted in arrival order, decided by the manager's
        queue, not by thread scheduling."""
        service = make_service()
        holder = service.open_session()
        service.lock_row(holder, 0, 7, LockMode.X)
        granted = []
        arrived = []
        lock = threading.Lock()

        def contender(app):
            with lock:
                arrived.append(app)
            try:
                service.lock_row(app, 0, 7, LockMode.X)
                with lock:
                    granted.append(app)
            finally:
                service.close_session(app)

        threads = []
        for _ in range(4):
            app = service.open_session()
            threads.append(spawn(contender, app))
            # stagger arrivals so the wait queue order is deterministic
            wait_until(
                lambda: app in service.waiting_sessions(),
                what=f"app {app} parked in the wait queue",
            )
        service.close_session(holder)
        for thread in threads:
            thread.join(10.0)
            assert not thread.is_alive()
        assert granted == arrived
        assert service.chain.used_slots == 0

    def test_deadlock_detected_across_threads(self):
        service = make_service()
        a, b = service.open_session(), service.open_session()
        service.lock_row(a, 0, 1, LockMode.X)
        service.lock_row(b, 0, 2, LockMode.X)
        outcome = {}
        barrier = threading.Barrier(2)

        def worker(me, want):
            barrier.wait()
            try:
                service.lock_row(me, 0, want, LockMode.X)
                outcome[me] = "granted"
            except DeadlockError:
                outcome[me] = "deadlock"
                service.rollback(me)

        t1 = spawn(worker, a, 2)
        t2 = spawn(worker, b, 1)
        t1.join(10.0)
        t2.join(10.0)
        assert not t1.is_alive() and not t2.is_alive()
        assert sorted(outcome.values()) == ["deadlock", "granted"]
        service.close_session(a)
        service.close_session(b)
        assert service.chain.used_slots == 0
        service.check_invariants()


class TestDeadlinesAndCancellation:
    def test_request_deadline_expires(self):
        service = make_service()
        holder = service.open_session()
        service.lock_row(holder, 0, 7, LockMode.X)
        with service.session() as app:
            started = time.monotonic()
            with pytest.raises(LockTimeoutError):
                service.lock_row(app, 0, 7, LockMode.X, timeout_s=0.05)
            assert time.monotonic() - started < 5.0
        assert service.stats.timeouts == 1
        assert service.manager.waiting_apps() == set()
        service.close_session(holder)
        service.check_invariants()

    def test_zero_timeout_is_immediate_no_wait(self):
        service = make_service()
        holder = service.open_session()
        service.lock_row(holder, 0, 7, LockMode.X)
        with service.session() as app:
            with pytest.raises(LockTimeoutError):
                service.lock_row(app, 0, 7, LockMode.X, timeout_s=0.0)
        service.close_session(holder)

    def test_default_timeout_applies(self):
        service = make_service(default_timeout_s=0.05)
        holder = service.open_session()
        service.lock_row(holder, 0, 7, LockMode.X)
        with service.session() as app:
            with pytest.raises(LockTimeoutError):
                service.lock_row(app, 0, 7, LockMode.X)
        service.close_session(holder)

    def test_negative_timeout_rejected(self):
        service = make_service()
        with service.session() as app:
            with pytest.raises(ServiceError):
                service.lock_row(app, 0, 1, LockMode.S, timeout_s=-1.0)

    def test_cancel_releases_waiter(self):
        service = make_service()
        holder = service.open_session()
        service.lock_row(holder, 0, 7, LockMode.X)
        app = service.open_session()
        result = {}

        def waiter():
            try:
                service.lock_row(app, 0, 7, LockMode.X)
                result["outcome"] = "granted"
            except RequestCancelledError:
                result["outcome"] = "cancelled"

        thread = spawn(waiter)
        wait_until(
            lambda: app in service.waiting_sessions(),
            what="waiter parked before cancel",
        )
        assert service.cancel(app, "client disconnected")
        thread.join(5.0)
        assert not thread.is_alive()
        assert result["outcome"] == "cancelled"
        assert service.stats.cancellations == 1
        service.close_session(app)
        service.close_session(holder)
        assert service.chain.used_slots == 0
        service.check_invariants()

    def test_cancel_of_idle_session_is_noop(self):
        service = make_service()
        with service.session() as app:
            assert service.cancel(app) is False
        assert service.stats.cancellations == 0

    def test_manager_lock_timeout_applies_on_wall_clock(self):
        """The manager's own LOCKTIMEOUT (any_of(grant, timeout)) fires
        through the lazy-timeout protocol."""
        service = make_service(lock_timeout_s=0.05)
        holder = service.open_session()
        service.lock_row(holder, 0, 7, LockMode.X)
        with service.session() as app:
            with pytest.raises(LockTimeoutError):
                service.lock_row(app, 0, 7, LockMode.X)
        service.close_session(holder)
        service.check_invariants()


class TestLifecycleAndDegradation:
    def test_close_rejects_new_requests(self):
        service = make_service()
        app = service.open_session()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.lock_row(app, 0, 1, LockMode.S)
        with pytest.raises(ServiceClosedError):
            service.open_session()
        service.close()  # idempotent

    def test_close_cancels_pending_waiters(self):
        service = make_service()
        holder = service.open_session()
        service.lock_row(holder, 0, 7, LockMode.X)
        app = service.open_session()
        result = {}

        def waiter():
            try:
                service.lock_row(app, 0, 7, LockMode.X)
                result["outcome"] = "granted"
            except ServiceClosedError:
                result["outcome"] = "closed"

        thread = spawn(waiter)
        wait_until(
            lambda: app in service.waiting_sessions(),
            what="waiter parked before close",
        )
        service.close()
        thread.join(5.0)
        assert not thread.is_alive()
        assert result["outcome"] == "closed"
        assert service.manager.waiting_apps() == set()

    def test_freeze_tuning_detaches_providers(self):
        grown = []
        service = make_service()
        service.manager.growth_provider = lambda b: grown.append(b) or b
        service.manager.maxlocks_provider = lambda: 0.5
        service.freeze_tuning("tuner died")
        assert service.manager.growth_provider is None
        assert service.manager.maxlocks_provider is None
        assert service.frozen_reason == "tuner died"
        service.freeze_tuning("second call")  # first reason sticks
        assert service.frozen_reason == "tuner died"


class TestTelemetry:
    def test_metrics_record_requests(self):
        from repro.obs.registry import MetricRegistry

        registry = MetricRegistry()
        service = LockService(
            LockBlockChain(initial_blocks=2), metrics=registry
        )
        with service.session() as app:
            service.lock_row(app, 0, 1, LockMode.X)
        snapshot = {
            c.name: c.value for c in registry.counters()
        }
        assert snapshot["service.requests"] == 1
