"""Multi-process worker pool: accounting, routing, failure modes.

A real :class:`WorkerPoolStack` -- forked worker processes, Unix-domain
sockets, the arbiter thread in the parent -- exercised through the
routed client library.  Covers the ISSUE acceptance criteria: byte-exact
cross-worker block accounting on clean shutdown, sync-growth borrows
over the control channel, cross-worker deadlock detection, and the
worker-crash degraded mode.
"""

import os
import signal
import threading
import time

import pytest

from repro.errors import DeadlockError
from repro.net import protocol as wire
from repro.net.client import ConnectionLostError
from repro.service.driver import LoadDriver, TransactionMix
from repro.service.workers import WorkerPoolConfig, WorkerPoolStack
from repro.lockmgr.modes import LockMode
from repro.units import LOCKS_PER_BLOCK, PAGES_PER_BLOCK


def wait_until(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def pool_config(**overrides) -> WorkerPoolConfig:
    defaults = dict(
        total_memory_pages=16384,
        initial_locklist_pages=128,
        tuner_interval_s=0.05,
        max_in_flight=16,
        admission_queue_depth=64,
        workers=2,
        deadlock_interval_s=0.1,
    )
    defaults.update(overrides)
    return WorkerPoolConfig(**defaults)


class TestCleanShutdown:
    def test_idle_pool_reconciles_byte_exactly(self):
        pool = WorkerPoolStack(pool_config()).start()
        pool.stop()
        rec = pool.reconciliation
        assert rec is not None and rec.ok
        assert rec.expected_blocks == rec.reported_blocks
        assert rec.expected_pages == 128
        assert all(w["state"] == "closed" for w in rec.workers)

    def test_driven_pool_reconciles_byte_exactly(self):
        with WorkerPoolStack(pool_config()) as pool:
            with pool.client_stack() as net:
                driver = LoadDriver(
                    net,
                    mix=TransactionMix(
                        locks_per_txn_mean=8.0,
                        think_time_mean_s=0.0,
                        work_time_per_lock_s=0.0,
                        rows_per_table=20_000,
                    ),
                    threads=4,
                    requests_per_thread=800,
                    seed=17,
                )
                report = driver.run()
                assert report.worker_errors == []
                assert report.lock_requests >= 4 * 800
                assert report.commits > 0
                # Traffic reached every worker, not just one shard.
                per_worker = net.service.stats()
                assert len(per_worker) == 2
                for payload in per_worker:
                    assert payload["service"]["requests"] > 0
        rec = pool.reconciliation
        assert rec is not None and rec.ok
        assert rec.expected_blocks == rec.reported_blocks
        for worker in rec.workers:
            assert worker["state"] == "closed"
            assert worker["reported_used_slots"] == 0


class TestSyncGrowthBorrow:
    def test_borrow_over_the_control_channel(self):
        # One block per worker, and a tuner interval so long the async
        # grow path never fires during the test: filling worker 0 past
        # its capacity *must* go through the synchronous borrow pipe.
        cfg = pool_config(
            initial_locklist_pages=2 * PAGES_PER_BLOCK,
            tuner_interval_s=5.0,
        )
        with WorkerPoolStack(cfg) as pool:
            assert pool.chain.capacity_slots == 2 * LOCKS_PER_BLOCK
            with pool.client_stack() as net:
                client = net.service
                apps = [client.open_session() for _ in range(4)]
                # Even tables all route to worker 0; each session stays
                # far below MAXLOCKS so escalation never preempts the
                # growth path.
                per_session = (LOCKS_PER_BLOCK // 4) + 150
                for offset, app in enumerate(apps):
                    client.lock_rows(
                        app,
                        [
                            (2 * offset, row, LockMode.X)
                            for row in range(per_session)
                        ],
                    )
                assert pool.ledger.borrowed_blocks(0) >= 1
                assert pool.ledger.total_borrowed_blocks() >= 1
                # The grant landed in the parent's authoritative mirror.
                assert pool.chain.block_count > 2
                for app in apps:
                    client.rollback(app)
                    client.close_session(app)
        rec = pool.reconciliation
        assert rec is not None and rec.ok
        assert rec.expected_blocks == rec.reported_blocks


class TestCrossWorkerDeadlock:
    def test_cycle_spanning_two_workers_is_broken(self):
        with WorkerPoolStack(pool_config()) as pool:
            with pool.client_stack() as net:
                client = net.service
                a = client.open_session()  # home: worker 0
                b = client.open_session()  # home: worker 1
                client.lock_row(a, 0, 1, LockMode.X)  # worker 0
                client.lock_row(b, 1, 1, LockMode.X)  # worker 1
                # Each worker only ever sees half of the wait-for
                # cycle; only the parent's merged graph closes it.
                outcomes = {}

                def wait_for(name, app, table):
                    try:
                        client.lock_row(
                            app, table, 1, LockMode.X, timeout_s=None
                        )
                        outcomes[name] = "granted"
                    except DeadlockError:
                        outcomes[name] = "deadlock"
                        client.rollback(app)

                threads = [
                    threading.Thread(target=wait_for, args=("a", a, 1)),
                    threading.Thread(target=wait_for, args=("b", b, 0)),
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30.0)
                assert not any(t.is_alive() for t in threads)
                assert sorted(outcomes.values()) == ["deadlock", "granted"]
                assert pool.detector.cycles_found >= 1
                assert len(pool.detector.victims) >= 1
                assert pool.incidents.kind_counts().get("deadlock", 0) >= 1
                for app in (a, b):
                    client.rollback(app)
                    client.close_session(app)
        assert pool.reconciliation is not None and pool.reconciliation.ok

    def test_detector_runs_without_cycles(self):
        with WorkerPoolStack(pool_config()) as pool:
            with pool.client_stack() as net:
                with net.service.session() as app:
                    net.service.lock_row(app, 0, 1, LockMode.X)
                    net.service.lock_row(app, 1, 1, LockMode.X)
                assert wait_until(lambda: pool.detector.checks >= 2)
            assert pool.detector.cycles_found == 0
            assert pool.detector.victims == []


class TestWorkerCrash:
    def test_sigkill_degrades_like_a_tuner_crash(self):
        with WorkerPoolStack(pool_config()) as pool:
            with pool.client_stack() as net:
                client = net.service
                a = client.open_session()  # home: worker 0
                b = client.open_session()  # home: worker 1
                client.lock_row(a, 0, 1, LockMode.X)
                client.lock_row(b, 1, 1, LockMode.X)

                os.kill(pool._handles[0].process.pid, signal.SIGKILL)
                assert wait_until(lambda: pool.frozen_reason is not None)
                assert "worker" in pool.frozen_reason
                assert pool.worker_crashes == 1

                health = pool.ops_health()
                assert health["ok"] is False
                assert health["frozen_reason"] is not None
                counts = pool.incidents.kind_counts()
                assert counts.get("worker-crash", 0) >= 1

                # Survivors keep serving their shards on a frozen,
                # static LOCKLIST.
                client.lock_row(b, 3, 7, LockMode.X, timeout_s=2.0)
                # The dead worker's shard is gone.
                with pytest.raises(
                    (ConnectionLostError, wire.ServiceError, OSError)
                ):
                    client.lock_row(a, 2, 2, LockMode.X, timeout_s=1.0)

                client.rollback(b)
                client.close_session(b)
        rec = pool.reconciliation
        assert rec is not None
        assert rec.ok is False
        states = {w["worker"]: w["state"] for w in rec.workers}
        assert states[0] == "crashed"
        assert states[1] == "closed"
