"""Scripted interleavings of the races the monitor design must win.

Each test drives real threads through one *specific* interleaving using
the :mod:`tests.service.sched` harness -- no sleeps, no hoping the
scheduler cooperates.  The three races:

* **Grant vs cancel**: a waiter's grant event fires (the holder
  released) but its thread has not resumed when a cancel arrives.  The
  grant must win -- cancelling then would double-free the structure the
  grant now owns.  Scripted by holding the service mutex across the
  release, so the granted thread *cannot* resume before the cancel.
* **Tuner resize vs synchronous growth**: a request thread is parked
  mid-sync-growth (heap possibly grown, chain not yet) while a tuning
  pass wants to run.  The lock-ordering protocol says the tuner cannot
  observe that window; scripted by gating the growth provider while
  the grower holds its shard condition.
* **Cross-shard deadlock**: two sessions close a cycle spanning two
  shards.  Neither shard can see it locally (immediate detection is
  per-shard); one manual sweep of the merged graph must resolve it.
"""

import pytest

from repro.errors import DeadlockError
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.modes import LockMode
from repro.service.service import LockService
from repro.service.sharded import ShardedServiceConfig, ShardedServiceStack
from repro.units import LOCKS_PER_BLOCK, PAGES_PER_BLOCK
from tests.service.sched import Gate, ScriptedThread, wait_until


class TestGrantVersusCancel:
    def test_grant_beats_cancel_when_thread_not_yet_resumed(self):
        """The exact window: event fired, waiter thread still parked."""
        service = LockService(LockBlockChain(initial_blocks=2))
        holder = service.open_session()
        contender = service.open_session()
        service.lock_row(holder, 0, 7, LockMode.X)

        worker = ScriptedThread(
            service.lock_row, contender, 0, 7, LockMode.X, name="contender"
        )
        wait_until(
            lambda: contender in service.waiting_sessions(),
            what="contender parked in the wait queue",
        )
        # Holding the mutex across release + cancel pins the window
        # open: the grant event fires inside rollback (the manager pumps
        # the queue), but the contender thread cannot re-acquire the
        # mutex to resume until we let go.
        with service._mutex:
            service.rollback(holder)
            # The grant event has fired but the contender has not
            # resumed: it is still registered as waiting, which is
            # precisely the state a naive cancel would corrupt.
            _obj, waiter = service.manager._waiting_on[contender]
            assert waiter.event.triggered
            assert service.cancel(contender, "too late") is False
        worker.result()  # the grant, not a cancellation, reached the thread
        assert service.manager.app_slots(contender) == 2  # row + intent
        assert service.stats.cancellations == 0
        service.close_session(contender)
        service.close_session(holder)
        assert service.chain.used_slots == 0
        service.check_invariants()

    def test_cancel_wins_when_still_queued(self):
        """Control case: before any grant, the cancel does land."""
        service = LockService(LockBlockChain(initial_blocks=2))
        holder = service.open_session()
        contender = service.open_session()
        service.lock_row(holder, 0, 7, LockMode.X)
        worker = ScriptedThread(
            service.lock_row, contender, 0, 7, LockMode.X, name="contender"
        )
        wait_until(
            lambda: contender in service.waiting_sessions(),
            what="contender parked in the wait queue",
        )
        assert service.cancel(contender, "client gone") is True
        outcome = worker.outcome()
        assert isinstance(outcome, Exception)
        service.close_session(contender)
        service.close_session(holder)
        service.check_invariants()


class TestTunerVersusSyncGrowth:
    def test_tuning_pass_cannot_observe_half_applied_growth(self):
        """A tune_now must serialize behind an in-flight sync borrow."""
        stack = ShardedServiceStack(
            ShardedServiceConfig(
                shards=2,
                initial_locklist_pages=2 * PAGES_PER_BLOCK,
                tuner_interval_s=None,
            )
        )
        gate = Gate("sync-growth")
        shard0 = stack.service.shards[0]
        original = shard0.manager.growth_provider

        def gated(blocks_wanted: int) -> int:
            gate.block()
            return original(blocks_wanted)

        shard0.manager.growth_provider = gated

        grower_app = stack.service.open_session()

        def fill_shard0() -> None:
            # One block backs shard 0; one over capacity forces growth.
            for row in range(LOCKS_PER_BLOCK):
                stack.service.lock_row(grower_app, 0, row, LockMode.X)

        grower = ScriptedThread(fill_shard0, name="grower")
        gate.await_arrival()
        # The grower is parked inside its request, holding shard 0's
        # condition with the registry about to change under it.
        tuner = ScriptedThread(stack.tuner.tune_now, name="tuner")
        # Finishing before the gate opens would require shard 0's
        # condition, which the grower holds -- so this can only fail if
        # the tuner bypassed the lock-ordering protocol.
        assert tuner.alive
        gate.open()
        grower.result()
        tuner.result()
        assert stack.tuner.crash is None
        # The borrow landed on shard 0 and every layer agrees on it.
        assert stack.ledger.borrowed_blocks(0) >= 1
        assert stack.ledger.borrowed_blocks(1) == 0
        assert (
            stack.registry.heap("locklist").size_pages
            == stack.chain.allocated_pages
        )
        stack.service.rollback(grower_app)
        stack.service.close_session(grower_app)
        stack.stop()
        stack.check_invariants()


class TestCrossShardDeadlock:
    def test_two_shard_cycle_resolved_by_one_sweep(self):
        stack = ShardedServiceStack(
            ShardedServiceConfig(shards=2, tuner_interval_s=None)
        )
        service = stack.service
        a = service.open_session()
        b = service.open_session()
        service.lock_table(a, 0, LockMode.X)  # shard 0
        service.lock_table(b, 1, LockMode.X)  # shard 1

        ta = ScriptedThread(service.lock_table, a, 1, LockMode.X, name="a")
        tb = ScriptedThread(service.lock_table, b, 0, LockMode.X, name="b")
        wait_until(
            lambda: service.waiting_sessions() == {a, b},
            what="both sessions parked across shards",
        )
        # Neither shard saw a local cycle: no immediate deadlock fired.
        assert stack.manager_stats.deadlocks == 0

        victims = stack.detector.check()
        assert victims == 1
        assert stack.detector.stats.cycles_found == 1
        # Equal footprints: the documented tie-break picks the lowest id.
        assert stack.detector.stats.victims == [a]

        assert isinstance(ta.outcome(), DeadlockError)
        service.rollback(a)
        tb.result()  # b's request grants once a's locks are gone
        service.rollback(b)
        service.close_session(a)
        service.close_session(b)
        stack.stop()
        stack.check_invariants()
