"""Shutdown with a synchronous-growth borrow still in flight.

Sync growth takes pages from overflow mid-interval; the next tuning
pass normally folds the borrow into the persisted LOCKLIST (LMOC).
When the service closes *before* that pass runs, nothing would ever
reconcile the borrow -- the registry would permanently over-charge the
locklist for memory backing no locks.  ``LockService.close`` therefore
returns entirely-free borrowed blocks to overflow on shutdown; blocks
still backing live lock structures must stay (the shrink protocol).

These tests pin the exact block accounting on both the unsharded and
the sharded stack, and script a close racing an in-flight borrow.
"""

from repro.lockmgr.modes import LockMode
from repro.service.sharded import ShardedServiceConfig, ShardedServiceStack
from repro.service.stack import ServiceConfig, ServiceStack
from repro.units import LOCKS_PER_BLOCK, PAGES_PER_BLOCK
from tests.service.sched import Gate, ScriptedThread


def force_growth(service, app, table_id, rows) -> None:
    for row in range(rows):
        service.lock_row(app, table_id, row, LockMode.S)


class TestUnshardedCloseBorrow:
    def test_close_returns_freed_borrow_to_overflow_exactly(self):
        stack = ServiceStack(
            ServiceConfig(
                initial_locklist_pages=PAGES_PER_BLOCK,
                tuner_interval_s=None,  # and never started: no async pass
            )
        )
        overflow0 = stack.registry.overflow_pages
        pages0 = stack.chain.allocated_pages
        app = stack.service.open_session()
        # two blocks over the 1-block initial capacity
        force_growth(stack.service, app, 0, 2 * LOCKS_PER_BLOCK + 100)
        borrowed = stack.manager_stats.sync_growth_blocks
        assert borrowed >= 2
        assert stack.registry.overflow_pages == (
            overflow0 - borrowed * PAGES_PER_BLOCK
        )
        assert stack.controller.transient_overage_pages == (
            borrowed * PAGES_PER_BLOCK
        )

        stack.service.rollback(app)  # every borrowed block entirely free
        stack.service.close_session(app)
        stack.stop()

        # exact restitution: chain, heap and overflow all back to start
        assert stack.chain.allocated_pages == pages0
        assert stack.registry.heap("locklist").size_pages == pages0
        assert stack.registry.overflow_pages == overflow0
        assert stack.controller.transient_overage_pages == 0
        assert (
            sum(stack.registry.snapshot().values())
            == stack.registry.total_pages
        )
        stack.check_invariants()

    def test_blocks_backing_live_locks_stay_allocated(self):
        """The shrink protocol: a held lock pins its borrowed block."""
        stack = ServiceStack(
            ServiceConfig(
                initial_locklist_pages=PAGES_PER_BLOCK,
                tuner_interval_s=None,
            )
        )
        overflow0 = stack.registry.overflow_pages
        app = stack.service.open_session()
        force_growth(stack.service, app, 0, LOCKS_PER_BLOCK + 100)
        borrowed = stack.manager_stats.sync_growth_blocks
        assert borrowed >= 1
        pages_grown = stack.chain.allocated_pages

        # close WITHOUT rollback: the session's locks still occupy the
        # borrowed block, so not one page may move back
        stack.stop()
        assert stack.chain.allocated_pages == pages_grown
        assert stack.registry.heap("locklist").size_pages == pages_grown
        assert stack.registry.overflow_pages == (
            overflow0 - borrowed * PAGES_PER_BLOCK
        )
        # nothing leaks either way: the registry still accounts for
        # every page in the database
        assert (
            sum(stack.registry.snapshot().values())
            == stack.registry.total_pages
        )


class TestShardedCloseBorrow:
    def test_close_returns_borrows_from_every_shard(self):
        stack = ShardedServiceStack(
            ShardedServiceConfig(
                shards=2,
                initial_locklist_pages=2 * PAGES_PER_BLOCK,  # 1 block/shard
                tuner_interval_s=None,
            )
        )
        overflow0 = stack.registry.overflow_pages
        pages0 = stack.chain.allocated_pages
        service = stack.service
        a, b = service.open_session(), service.open_session()
        # overflow both shards: table 0 -> shard 0, table 1 -> shard 1
        force_growth(service, a, 0, LOCKS_PER_BLOCK + 100)
        force_growth(service, b, 1, LOCKS_PER_BLOCK + 100)
        assert stack.ledger.borrowed_blocks(0) >= 1
        assert stack.ledger.borrowed_blocks(1) >= 1
        borrowed = stack.ledger.total_borrowed_blocks()
        assert stack.manager_stats.sync_growth_blocks == borrowed
        assert stack.registry.overflow_pages == (
            overflow0 - borrowed * PAGES_PER_BLOCK
        )

        service.rollback(a)
        service.rollback(b)
        service.close_session(a)
        service.close_session(b)
        stack.stop()

        assert stack.chain.allocated_pages == pages0
        assert stack.registry.heap("locklist").size_pages == pages0
        assert stack.registry.overflow_pages == overflow0
        assert stack.controller.transient_overage_pages == 0
        stack.check_invariants()

    def test_close_serialises_behind_an_inflight_borrow(self):
        """A shutdown cannot observe heap-grown-chain-not-yet state."""
        stack = ShardedServiceStack(
            ShardedServiceConfig(
                shards=2,
                initial_locklist_pages=2 * PAGES_PER_BLOCK,
                tuner_interval_s=None,
            )
        )
        gate = Gate("borrow")
        shard0 = stack.service.shards[0]
        original = shard0.manager.growth_provider

        def gated(blocks_wanted: int) -> int:
            gate.block()
            return original(blocks_wanted)

        shard0.manager.growth_provider = gated
        app = stack.service.open_session()
        grower = ScriptedThread(
            force_growth, stack.service, app, 0, LOCKS_PER_BLOCK + 10,
            name="grower",
        )
        gate.await_arrival()
        closer = ScriptedThread(stack.stop, name="closer")
        # Closing needs every shard condition; the grower holds shard
        # 0's across the whole borrow, so the closer must still be
        # parked.  (It can only have finished by breaking lock order.)
        assert closer.alive
        gate.open()
        closer.result()
        # the grower either finished its loop before close latched, or
        # saw the shutdown error -- both are legal; corruption is not
        grower.outcome()
        assert stack.registry.heap("locklist").size_pages == (
            stack.chain.allocated_pages
        )
        assert (
            sum(stack.registry.snapshot().values())
            == stack.registry.total_pages
        )
        stack.check_invariants()
