"""The live ops plane: /metrics, /healthz and /stmm over real HTTP.

Both stack shapes serve the same three endpoints from an embedded
stdlib HTTP server on an ephemeral loopback port.  These tests scrape
them for real -- no timing gates, just state that is already settled
before the scrape.
"""

import json
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.lockmgr.modes import LockMode
from repro.service.ops import PROMETHEUS_CONTENT_TYPE, OpsServer
from repro.service.sharded import ShardedServiceConfig, ShardedServiceStack
from repro.service.stack import ServiceConfig, ServiceStack
from repro.service.top import (
    parse_prometheus,
    percentile_from_buckets,
    render_frame,
    run_top,
)


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


def make_stack(**overrides):
    defaults = dict(
        total_memory_pages=8_192,
        initial_locklist_pages=32,
        tuner_interval_s=30.0,
        telemetry=True,
        ops_port=0,
        span_sample_every=1,
    )
    defaults.update(overrides)
    return ServiceStack(ServiceConfig(**defaults))


def make_sharded(**overrides):
    defaults = dict(
        total_memory_pages=8_192,
        initial_locklist_pages=64,
        tuner_interval_s=30.0,
        telemetry=True,
        shards=2,
        ops_port=0,
        span_sample_every=1,
    )
    defaults.update(overrides)
    return ShardedServiceStack(ShardedServiceConfig(**defaults))


class TestConfig:
    def test_ops_port_requires_telemetry(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(telemetry=False, ops_port=0)

    def test_negative_ops_port_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(ops_port=-1)

    def test_sharded_ops_port_requires_telemetry(self):
        with pytest.raises(ConfigurationError):
            ShardedServiceConfig(telemetry=False, ops_port=0)

    def test_no_ops_port_no_server(self):
        stack = make_stack(ops_port=None, span_sample_every=0)
        assert stack.ops is None
        with stack:
            pass

    def test_disabled_plane_installs_no_sampler(self):
        stack = make_stack(ops_port=None, span_sample_every=0)
        assert stack.service.span_sampler is None


class TestUnshardedEndpoints:
    def test_metrics_healthz_stmm(self):
        stack = make_stack()
        with stack:
            with stack.service.session() as app:
                stack.service.lock_row(app, 0, 1, LockMode.X)
                stack.service.rollback(app)
            stack.tuner.tune_now()
            base = stack.ops.url

            status, ctype, body = _get(base + "/metrics")
            assert status == 200
            assert ctype == PROMETHEUS_CONTENT_TYPE
            dump = parse_prometheus(body.decode())
            assert dump["service_requests_total"][()] == 1.0
            assert dump["service_locklist_pages"][()] > 0
            assert "service_request_latency_s_bucket" in dump
            assert "service_span_wait_latency_s_bucket" in dump

            status, ctype, body = _get(base + "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["ok"] is True
            assert health["tuner"]["alive"] is True
            assert health["tuner"]["frozen"] is False
            assert health["shards"] == 1

            status, ctype, body = _get(base + "/stmm")
            assert status == 200
            assert ctype.startswith("application/json")
            stmm = json.loads(body)
            assert stmm["intervals"] == 1
            assert [a["reason"] for a in stmm["audit"]] == (
                stack.tuner.audit.reasons()
            )
            assert stmm["locklist_pages"] == stack.chain.allocated_pages
            assert stmm["frozen_reason"] is None
            assert len(stmm["spans"]) >= 1

    def test_unknown_path_is_404(self):
        stack = make_stack()
        with stack:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(stack.ops.url + "/nope")
            assert err.value.code == 404

    def test_healthz_degrades_after_tuner_freeze(self):
        stack = make_stack()
        with stack:
            def bomb():
                raise RuntimeError("boom")

            stack.controller.compute_target_pages = bomb
            with pytest.raises(RuntimeError):
                stack.tuner.tune_now()
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(stack.ops.url + "/healthz")
            assert err.value.code == 503
            health = json.loads(err.value.read())
            assert health["ok"] is False
            assert health["tuner"]["frozen"] is True
            assert "boom" in health["tuner"]["crash"]
            # /stmm still answers, ending with the freeze record.
            _, _, body = _get(stack.ops.url + "/stmm")
            stmm = json.loads(body)
            assert stmm["audit"][-1]["reason"] == "freeze"
            assert stmm["frozen_reason"] is not None

    def test_server_stops_with_stack(self):
        stack = make_stack()
        with stack:
            url = stack.ops.url
            assert stack.ops.running
        assert not stack.ops.running
        with pytest.raises(OSError):
            _get(url + "/healthz")


class TestShardedEndpoints:
    def test_per_shard_labels_on_metrics(self):
        stack = make_sharded(shards=2)
        with stack:
            with stack.service.session() as app:
                for row in range(8):
                    stack.service.lock_row(app, 0, row, LockMode.S)
                    stack.service.lock_row(app, 1, row, LockMode.S)
                stack.service.rollback(app)
            _, _, body = _get(stack.ops.url + "/metrics")
            dump = parse_prometheus(body.decode())
            requests = dump["service_requests_total"]
            for shard in ("0", "1"):
                assert (("shard", shard),) in requests, (
                    f"missing shard={shard} series: {sorted(requests)}"
                )
            assert sum(requests.values()) == 16.0
            occupancy = dump["shard_used_slots"]
            assert (("shard", "0"),) in occupancy
            assert (("shard", "1"),) in occupancy
            waits = dump["service_span_wait_latency_s_count"]
            assert sum(waits.values()) == 16.0

    def test_sharded_healthz_lists_shards(self):
        stack = make_sharded(shards=3, initial_locklist_pages=96)
        with stack:
            status, _, body = _get(stack.ops.url + "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["ok"] is True
            assert health["shards"] == 3
            assert [s["shard"] for s in health["shard_status"]] == [0, 1, 2]
            assert all(s["open"] for s in health["shard_status"])
            assert health["detector"]["alive"] is True

    def test_sharded_stmm_audit(self):
        stack = make_sharded()
        with stack:
            stack.tuner.tune_now()
            _, _, body = _get(stack.ops.url + "/stmm")
            stmm = json.loads(body)
            assert stmm["intervals"] == 1
            assert len(stmm["audit"]) == 1
            assert stmm["audit"][0]["reason"] in (
                "grow-async", "shrink-5pct",
                "double-escalation-recovery", "noop",
            )


class TestOpsServerUnit:
    def test_handler_error_returns_500(self):
        from repro.obs.registry import MetricRegistry

        def broken_health():
            raise RuntimeError("health probe bug")

        server = OpsServer(
            MetricRegistry(),
            health=broken_health,
            stmm_status=lambda: {},
        )
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/healthz")
            assert err.value.code == 500
            payload = json.loads(err.value.read())
            assert "health probe bug" in payload["error"]
        finally:
            server.stop()

    def test_double_start_rejected(self):
        from repro.obs.registry import MetricRegistry

        server = OpsServer(
            MetricRegistry(), health=lambda: {"ok": True},
            stmm_status=lambda: {},
        )
        from repro.errors import ServiceError

        with server:
            with pytest.raises(ServiceError):
                server.start()
        assert not server.running


class TestTopDashboard:
    def test_percentile_from_buckets(self):
        buckets = [(0.1, 50.0), (1.0, 90.0), (float("inf"), 100.0)]
        assert percentile_from_buckets(buckets, 0.5) == pytest.approx(0.1)
        p99 = percentile_from_buckets(buckets, 0.99)
        assert p99 == pytest.approx(1.0)  # +Inf bucket -> prev bound
        assert percentile_from_buckets([], 0.5) is None

    def test_render_frame_shows_shards_and_audit(self):
        stack = make_sharded(shards=2)
        with stack:
            with stack.service.session() as app:
                for row in range(8):
                    stack.service.lock_row(app, 0, row, LockMode.S)
                stack.service.rollback(app)
            stack.tuner.tune_now()
            _, _, body = _get(stack.ops.url + "/metrics")
            metrics = parse_prometheus(body.decode())
            _, _, body = _get(stack.ops.url + "/stmm")
            stmm = json.loads(body)
        frame = render_frame(metrics, stmm)
        assert "LOCKLIST" in frame
        assert "shard" in frame
        assert " 0 " in frame and " 1 " in frame
        assert "audit" in frame

    def test_run_top_single_frame(self, capsys):
        stack = make_stack()
        with stack:
            rc = run_top(
                stack.ops.url, interval_s=0.0, frames=1, clear=False
            )
        assert rc == 0
        out = capsys.readouterr().out
        assert "LOCKLIST" in out

    def test_run_top_unreachable_returns_error(self, capsys):
        assert run_top("http://127.0.0.1:9", frames=1) == 1
        assert "unreachable" in capsys.readouterr().err.lower()


class TestIncidentsEndpoint:
    def test_incidents_served_after_live_deadlock(self):
        import threading

        from repro.errors import DeadlockError
        from tests.service.sched import wait_until

        stack = make_stack(wait_profile=True)
        with stack:
            service = stack.service
            a, b = service.open_session(), service.open_session()
            service.lock_row(a, 0, 1, LockMode.X)
            service.lock_row(b, 0, 2, LockMode.X)
            blocked = threading.Thread(
                target=service.lock_row, args=(a, 0, 2, LockMode.X),
                daemon=True,
            )
            blocked.start()
            wait_until(
                lambda: a in service.waiting_sessions(),
                what="session a parked behind b",
            )
            with pytest.raises(DeadlockError):
                service.lock_row(b, 0, 1, LockMode.X)
            service.rollback(b)
            blocked.join(10.0)
            service.rollback(a)

            status, ctype, body = _get(stack.ops.url + "/incidents")
            assert status == 200
            assert ctype.startswith("application/json")
            payload = json.loads(body)
            assert payload["total"] == 1
            assert payload["counts"]["deadlock"] == 1
            (incident,) = payload["incidents"]
            assert incident["kind"] == "deadlock"
            assert set(incident["cycle"]) == {a, b}

            # /stmm carries the controller constants and wait classes.
            _, _, body = _get(stack.ops.url + "/stmm")
            stmm = json.loads(body)
            params = stmm["params"]
            cfg = stack.config.params
            assert params["c1_overflow_fraction"] == cfg.c1_overflow_fraction
            assert params["min_free_fraction"] == cfg.min_free_fraction
            assert params["max_free_fraction"] == cfg.max_free_fraction
            assert params["delta_reduce"] == cfg.delta_reduce
            assert params["interval_s"] == 30.0
            assert stmm["incident_total"] == 1
            assert stmm["wait_classes"]["lock.granted"]["count"] >= 1

            service.close_session(a)
            service.close_session(b)

    def test_incidents_404_when_not_wired(self):
        from repro.obs.registry import MetricRegistry

        server = OpsServer(
            MetricRegistry(), health=lambda: {"ok": True},
            stmm_status=lambda: {},
        )
        with server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/incidents")
            assert err.value.code == 404

    def test_wait_classes_null_when_profiler_off(self):
        stack = make_stack()  # wait_profile defaults off
        with stack:
            _, _, body = _get(stack.ops.url + "/stmm")
            stmm = json.loads(body)
            assert stmm["wait_classes"] is None
            assert stmm["incident_total"] == 0

    def test_sharded_incidents_and_latch_series(self):
        stack = make_sharded(wait_profile=True)
        with stack:
            with stack.service.session() as app:
                for row in range(8):
                    stack.service.lock_row(app, 0, row, LockMode.S)
                stack.service.rollback(app)
            stack.publish_ops_metrics()
            _, _, body = _get(stack.ops.url + "/metrics")
            dump = parse_prometheus(body.decode())
            # Per-shard latch gauges are published with shard labels.
            shards = {
                dict(labels).get("shard")
                for labels in dump["latch_gets"]
            }
            assert shards >= {"0", "1"}
            status, _, body = _get(stack.ops.url + "/incidents")
            assert status == 200
            payload = json.loads(body)
            assert payload["incidents"] == []
            assert payload["total"] == 0


class TestTopWaitColumns:
    def test_frame_shows_wait_column_and_incidents(self):
        stack = make_stack(wait_profile=True)
        with stack:
            with stack.service.session() as app:
                stack.service.lock_row(app, 0, 1, LockMode.X)
                stack.service.rollback(app)
            _, _, body = _get(stack.ops.url + "/metrics")
            metrics = parse_prometheus(body.decode())
            _, _, body = _get(stack.ops.url + "/stmm")
            stmm = json.loads(body)
        frame = render_frame(metrics, stmm)
        assert "wait s" in frame
        assert "incidents: 0" in frame

    def test_frame_dashes_when_series_absent(self):
        from repro.service.top import shard_summary

        # No span sampler, no wait profiler: latency and wait columns
        # must show "-", not fabricated zeros.
        stack = make_stack(span_sample_every=0, wait_profile=False)
        with stack:
            _, _, body = _get(stack.ops.url + "/metrics")
            metrics = parse_prometheus(body.decode())
            _, _, body = _get(stack.ops.url + "/stmm")
            stmm = json.loads(body)
        row = shard_summary(metrics, None)
        assert row["wait_s"] is None
        frame = render_frame(metrics, stmm)
        shard_line = next(
            line for line in frame.splitlines() if line.startswith("  all")
        )
        assert "-" in shard_line

    def test_run_top_json_frames(self, capsys):
        stack = make_stack(wait_profile=True)
        with stack:
            with stack.service.session() as app:
                stack.service.lock_row(app, 0, 1, LockMode.X)
                stack.service.rollback(app)
            rc = run_top(
                stack.ops.url, interval_s=0.0, frames=2,
                clear=False, as_json=True,
            )
        assert rc == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line
        ]
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["locklist_pages"] == stack.chain.allocated_pages
        assert first["incident_total"] == 0
        assert first["shards"][0]["requests"] == 1.0
        assert "wait_classes" in first
        second = json.loads(lines[1])
        assert second["shards"][0]["rate"] is not None
