"""Sharded service unit behaviour: routing, adoption, lifecycle.

The concurrency-heavy paths live in the scripted-interleaving and
property suites; this file pins the single-threaded contracts -- where
a table routes, when a shard adopts a session, and how the lifecycle
errors read.
"""

import pytest

from repro.errors import ServiceClosedError, ServiceError
from repro.lockmgr.modes import LockMode
from repro.service.sharded import (
    ShardedServiceConfig,
    ShardedServiceStack,
    shard_of,
)
from repro.units import PAGES_PER_BLOCK


def make_stack(shards: int = 2, **kwargs) -> ShardedServiceStack:
    kwargs.setdefault("tuner_interval_s", None)
    return ShardedServiceStack(ShardedServiceConfig(shards=shards, **kwargs))


class TestRouting:
    def test_shard_of_is_table_modulo(self):
        assert shard_of(0, 4) == 0
        assert shard_of(5, 4) == 1
        assert shard_of(7, 1) == 0

    def test_locks_land_in_the_owning_shard_only(self):
        stack = make_stack(shards=3)
        service = stack.service
        with service.session() as app:
            service.lock_row(app, 4, 0, LockMode.X)  # 4 % 3 -> shard 1
            assert service.shards[1].manager.app_slots(app) == 2
            assert service.shards[0].manager.app_slots(app) == 0
            assert service.shards[2].manager.app_slots(app) == 0
            service.rollback(app)
        stack.stop()

    def test_adoption_is_lazy_and_sticky(self):
        stack = make_stack(shards=2)
        service = stack.service
        app = service.open_session()
        # no shard knows the session until it locks something there
        assert all(app not in s._sessions for s in service.shards)
        service.lock_table(app, 1, LockMode.S)  # adopts shard 1 only
        assert app in service.shards[1]._sessions
        assert app not in service.shards[0]._sessions
        # rollback keeps the adoption; a later lock reuses it
        service.rollback(app)
        service.lock_table(app, 1, LockMode.S)
        service.rollback(app)
        service.close_session(app)
        assert app not in service.shards[1]._sessions
        stack.stop()

    def test_release_read_lock_on_unadopted_shard_is_a_noop(self):
        stack = make_stack(shards=2)
        service = stack.service
        with service.session() as app:
            assert service.release_read_lock(app, 0, 0) is False
            service.lock_row(app, 0, 0, LockMode.S)
            assert service.release_read_lock(app, 0, 0) is True
            service.rollback(app)
        stack.stop()


class TestLifecycleErrors:
    def test_unknown_session_everywhere(self):
        stack = make_stack()
        service = stack.service
        with pytest.raises(ServiceError, match="not open"):
            service.lock_row(99, 0, 0, LockMode.S)
        with pytest.raises(ServiceError, match="not open"):
            service.rollback(99)
        with pytest.raises(ServiceError, match="not open"):
            service.close_session(99)
        assert service.cancel(99) is False
        stack.stop()

    def test_closed_service_refuses_sessions_and_requests(self):
        stack = make_stack()
        service = stack.service
        app = service.open_session()
        stack.stop()
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.open_session()
        with pytest.raises(ServiceClosedError):
            service.lock_row(app, 0, 0, LockMode.S)

    def test_session_counters_live_on_the_facade(self):
        stack = make_stack(shards=2)
        service = stack.service
        a = service.open_session()
        b = service.open_session()
        service.lock_row(a, 0, 0, LockMode.S)  # adopt shard 0
        stats = service.aggregate_stats()
        assert stats.sessions_opened == 2
        assert stats.peak_sessions == 2
        # adoption must NOT double-count sessions in shard stats
        for shard in service.shards:
            assert shard.stats.sessions_opened == 0
        service.rollback(a)
        service.close_session(a)
        service.close_session(b)
        assert service.aggregate_stats().sessions_closed == 2
        stack.stop()


class TestConfig:
    def test_needs_a_block_per_shard(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="shards"):
            ShardedServiceConfig(
                shards=4, initial_locklist_pages=2 * PAGES_PER_BLOCK
            )

    def test_rejects_degenerate_values(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ShardedServiceConfig(shards=0)
        with pytest.raises(ConfigurationError):
            ShardedServiceConfig(deadlock_interval_s=0)


class TestSnapshotReport:
    def test_report_covers_every_shard(self):
        stack = make_stack(shards=3)
        service = stack.service
        with service.session() as app:
            service.lock_row(app, 0, 0, LockMode.S)
            report = service.snapshot_report()
            for idx in range(3):
                assert f"shard {idx}" in report
            service.rollback(app)
        stack.stop()
