"""Tests for the clock abstraction."""

import time

import pytest

from repro.engine.des import Environment
from repro.service.clock import ManualClock, MonotonicClock, VirtualClock


class TestMonotonicClock:
    def test_starts_near_zero(self):
        clock = MonotonicClock()
        assert 0.0 <= clock.now() < 0.5

    def test_advances_with_real_time(self):
        clock = MonotonicClock()
        first = clock.now()
        time.sleep(0.01)
        assert clock.now() > first

    def test_independent_origins(self):
        first = MonotonicClock()
        time.sleep(0.01)
        second = MonotonicClock()
        assert second.now() < first.now()


class TestVirtualClock:
    def test_tracks_environment_time(self):
        env = Environment()
        clock = VirtualClock(env)
        assert clock.now() == 0.0

        def proc():
            yield env.timeout(12.5)

        env.process(proc())
        env.run(until=100)
        assert clock.now() == env.now


class TestManualClock:
    def test_starts_where_told(self):
        assert ManualClock().now() == 0.0
        assert ManualClock(5.0).now() == 5.0

    def test_advance(self):
        clock = ManualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5
        clock.advance(0.0)  # zero advance is legal
        assert clock.now() == 2.5

    def test_set_absolute(self):
        clock = ManualClock()
        clock.set(10.0)
        assert clock.now() == 10.0
        clock.set(10.0)  # same instant is legal

    def test_refuses_to_go_backwards(self):
        clock = ManualClock(5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(4.0)
