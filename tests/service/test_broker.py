"""Tests for the whole-memory broker: estimators, pressure, trading.

The centrepiece is the deterministic :class:`ManualClock` scenario the
PR's acceptance criterion asks for: a scripted demand sequence
(bufferpool-heavy, then a sort-spill surge, then a lock surge) must
produce an *exact* expected trade/posture audit sequence, with total
pages across all heaps plus the free pool equal to ``DATABASE_MEMORY``
after every interval.
"""

import pytest

from repro.errors import MemoryAccountingError
from repro.memory.bufferpool import BufferpoolModel
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.obs.audit import BROKER_REASONS
from repro.obs.registry import MetricRegistry
from repro.service.admission import AdmissionController
from repro.service.broker import (
    BrokerConfig,
    BufferpoolEstimator,
    LockListEstimator,
    MemoryBroker,
    PressureConfig,
    PressureMonitor,
    RateMeter,
    as_rate,
    default_estimators,
    WorkloadProfile,
)
from repro.service.broker.estimators import BenefitEstimator
from repro.service.clock import ManualClock


class ScriptedEstimator(BenefitEstimator):
    """An estimator whose slope and demand the test scripts directly."""

    def __init__(self, heap, slope_fn, demand_fn, tradeable=True):
        super().__init__(heap, 1.0)  # rate 1.0: benefit == slope
        self._slope_fn = slope_fn
        self._demand_fn = demand_fn
        self.tradeable = tradeable

    def _slope(self):
        return self._slope_fn()

    def demand_pages(self):
        return self._demand_fn()


class TestRateHelpers:
    def test_as_rate_constant_and_callable(self):
        assert as_rate(5)() == 5.0
        assert as_rate(lambda: 7.5)() == 7.5

    def test_as_rate_rejects_negative_constant(self):
        with pytest.raises(ValueError):
            as_rate(-1.0)

    def test_rate_meter_differentiates(self):
        counter = {"n": 0}
        meter = RateMeter(lambda: counter["n"])
        assert meter.sample(1.0) == 0.0  # no interval yet
        counter["n"] = 50
        assert meter.sample(6.0) == pytest.approx(10.0)

    def test_rate_meter_non_advancing_clock_is_zero(self):
        meter = RateMeter(lambda: 100.0)
        meter.sample(1.0)
        assert meter.sample(1.0) == 0.0

    def test_rate_meter_counter_reset_clamps_to_zero(self):
        counter = {"n": 100}
        meter = RateMeter(lambda: counter["n"])
        meter.sample(1.0)
        counter["n"] = 0
        assert meter.sample(2.0) == 0.0


class TestEstimators:
    def test_bufferpool_demand_from_hit_curve(self):
        heap = MemoryHeap("bufferpool", HeapCategory.PMC, 100)
        model = BufferpoolModel(half_saturation_pages=1_000)
        est = BufferpoolEstimator(heap, model, 500.0, demand_fraction=0.75)
        # s = h * f / (1 - f) = 1000 * 3
        assert est.demand_pages() == 3_000
        est.observe(0.0)
        assert est.benefit == pytest.approx(
            model.marginal_benefit(100) * 500.0
        )

    def test_locklist_estimator_is_signal_only(self):
        heap = MemoryHeap("locklist", HeapCategory.PMC, 100)
        est = LockListEstimator(
            heap, lambda: 80.0, 2.0, min_free_fraction=0.50
        )
        assert est.tradeable is False
        # used / (1 - minFree) = 160, above the current size
        assert est.demand_pages() == 160
        est.observe(0.0)
        assert est.benefit == pytest.approx(2.0 * 0.25 / 100)

    def test_locklist_demand_never_below_current_size(self):
        heap = MemoryHeap("locklist", HeapCategory.PMC, 400)
        est = LockListEstimator(heap, lambda: 10.0, 0.0)
        assert est.demand_pages() == 400

    def test_default_estimators_cover_registered_heaps_only(self):
        registry = DatabaseMemoryRegistry(total_pages=4_096)
        registry.register(MemoryHeap("bufferpool", HeapCategory.PMC, 1_024))
        registry.register(MemoryHeap("sortheap", HeapCategory.PMC, 256))
        ests = default_estimators(registry, WorkloadProfile())
        assert sorted(e.heap_name for e in ests) == [
            "bufferpool",
            "sortheap",
        ]

    def test_default_estimators_locklist_needs_used_pages(self):
        registry = DatabaseMemoryRegistry(total_pages=4_096)
        registry.register(MemoryHeap("locklist", HeapCategory.PMC, 128))
        assert default_estimators(registry, WorkloadProfile()) == []
        ests = default_estimators(
            registry, WorkloadProfile(), locklist_used_pages=lambda: 10.0
        )
        assert [e.heap_name for e in ests] == ["locklist"]


class TestPressureMonitor:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PressureConfig(throttle_enter=1.3, queue_enter=1.2)
        with pytest.raises(ValueError):
            PressureConfig(release_margin=-0.1)
        with pytest.raises(ValueError):
            PressureConfig(release_intervals=0)

    def test_escalates_one_rung_per_interval(self):
        monitor = PressureMonitor()
        # A shed-level surge still walks the ladder rung by rung.
        assert monitor.update(9.9) == (
            "normal", "throttle", "pressure-throttle"
        )
        assert monitor.update(9.9) == ("throttle", "queue", "pressure-queue")
        assert monitor.update(9.9) == ("queue", "shed", "pressure-shed")
        assert monitor.update(9.9) is None  # already at the top

    def test_release_needs_consecutive_calm_intervals(self):
        monitor = PressureMonitor(
            config=PressureConfig(release_intervals=2)
        )
        monitor.update(1.10)  # -> throttle
        assert monitor.update(0.90) is None  # calm 1
        monitor.update(1.04)  # inside the margin: streak resets
        assert monitor.update(0.90) is None  # calm 1 again
        assert monitor.update(0.90) == (
            "throttle", "normal", "pressure-release"
        )

    def test_limits_per_posture(self):
        admission = AdmissionController(8, max_queue_depth=16)
        monitor = PressureMonitor(admission)
        assert monitor.limits_for("normal") == (8, 16)
        assert monitor.limits_for("throttle") == (4, 16)
        assert monitor.limits_for("queue") == (2, 16)
        assert monitor.limits_for("shed") == (2, 0)

    def test_in_flight_never_below_one(self):
        admission = AdmissionController(1, max_queue_depth=0)
        monitor = PressureMonitor(admission)
        assert monitor.limits_for("shed") == (1, 0)

    def test_actuates_admission_controller(self):
        admission = AdmissionController(8, max_queue_depth=16)
        monitor = PressureMonitor(admission)
        monitor.update(2.0)  # throttle
        assert admission.max_in_flight == 4
        monitor.update(2.0)  # queue
        monitor.update(2.0)  # shed
        assert admission.max_in_flight == 2
        assert admission.max_queue_depth == 0
        for _ in range(6):
            monitor.update(0.5)
        assert monitor.posture == "normal"
        assert admission.max_in_flight == 8
        assert admission.max_queue_depth == 16


class TestBrokerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BrokerConfig(trade_block_pages=0)
        with pytest.raises(ValueError):
            BrokerConfig(max_trades_per_interval=-1)
        with pytest.raises(ValueError):
            BrokerConfig(min_benefit_ratio=0.5)

    def test_duplicate_estimator_heaps_rejected(self):
        registry = DatabaseMemoryRegistry(total_pages=1_024)
        heap = registry.register(MemoryHeap("a", HeapCategory.PMC, 128))
        ests = [
            ScriptedEstimator(heap, lambda: 1.0, lambda: 128),
            ScriptedEstimator(heap, lambda: 1.0, lambda: 128),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            MemoryBroker(registry, ests)


class TestDeterministicScenario:
    """The acceptance scenario: scripted demand, exact audit sequence."""

    TOTAL = 1_024

    def build(self):
        registry = DatabaseMemoryRegistry(
            total_pages=self.TOTAL, overflow_goal_pages=32
        )
        bufferpool = registry.register(
            MemoryHeap("bufferpool", HeapCategory.PMC, 512, min_pages=32)
        )
        sortheap = registry.register(
            MemoryHeap("sortheap", HeapCategory.PMC, 256, min_pages=32)
        )
        locklist = registry.register(
            MemoryHeap("locklist", HeapCategory.PMC, 128, min_pages=32)
        )
        state = {
            "benefit": {"bufferpool": 10.0, "sortheap": 1.0, "locklist": 0.0},
            "demand": {"bufferpool": 640, "sortheap": 128, "locklist": 128},
        }

        def est(heap, tradeable=True):
            return ScriptedEstimator(
                heap,
                lambda: state["benefit"][heap.name],
                lambda: state["demand"][heap.name],
                tradeable=tradeable,
            )

        admission = AdmissionController(8, max_queue_depth=16)
        broker = MemoryBroker(
            registry,
            [est(bufferpool), est(sortheap), est(locklist, tradeable=False)],
            admission=admission,
            config=BrokerConfig(
                trade_block_pages=32,
                max_trades_per_interval=2,
                min_benefit_ratio=1.25,
            ),
        )
        return registry, broker, admission, state

    def test_exact_trade_and_posture_sequence(self):
        registry, broker, admission, state = self.build()
        clock = ManualClock()
        observed = []
        for interval in range(1, 11):
            if interval == 3:  # sort-spill surge
                state["benefit"]["sortheap"] = 50.0
                state["demand"]["sortheap"] = 320
            if interval == 4:  # lock surge on top
                state["benefit"]["locklist"] = 5.0
                state["demand"]["locklist"] = 512
            if interval == 6:  # both surges subside
                state["benefit"]["sortheap"] = 1.0
                state["demand"]["sortheap"] = 128
                state["benefit"]["locklist"] = 0.0
                state["demand"]["locklist"] = 128
            clock.advance(1.0)
            records = broker.run_interval(clock.now())
            observed.append(
                [
                    (r.reason, r.heap_from, r.heap_to, r.pages, r.posture)
                    for r in records
                ]
            )
            # The conservation invariant, after *every* interval.
            snapshot = registry.snapshot()
            assert sum(snapshot.values()) == self.TOTAL
            assert registry.overflow_pages >= 0

        assert observed == [
            # bufferpool-heavy: sortheap donates to the bufferpool
            [("trade-benefit", "sortheap", "bufferpool", 64, "normal")],
            [("trade-benefit", "sortheap", "bufferpool", 64, "normal")],
            # sort-spill surge reverses the flow and crosses 1.05
            [
                ("trade-benefit", "bufferpool", "sortheap", 64, "normal"),
                ("pressure-throttle", "", "", 0, "throttle"),
            ],
            # lock surge stacks demand past 1.25
            [
                ("trade-benefit", "bufferpool", "sortheap", 64, "throttle"),
                ("pressure-queue", "", "", 0, "queue"),
            ],
            # sortheap reaches its demand; pressure holds below shed
            [("trade-benefit", "bufferpool", "sortheap", 64, "queue")],
            # calm: flow reverses again, hysteresis counts calm interval 1
            [("trade-benefit", "sortheap", "bufferpool", 64, "queue")],
            # calm interval 2 releases one rung
            [
                ("trade-benefit", "sortheap", "bufferpool", 64, "queue"),
                ("pressure-release", "", "", 0, "throttle"),
            ],
            [("trade-benefit", "sortheap", "bufferpool", 64, "throttle")],
            # bufferpool sated: nothing to trade, second calm pair releases
            [("pressure-release", "", "", 0, "normal")],
            [],
        ]

    def test_final_sizes_and_counters(self):
        registry, broker, admission, state = self.build()
        clock = ManualClock()
        for interval in range(1, 11):
            if interval == 3:
                state["benefit"]["sortheap"] = 50.0
                state["demand"]["sortheap"] = 320
            if interval == 4:
                state["benefit"]["locklist"] = 5.0
                state["demand"]["locklist"] = 512
            if interval == 6:
                state["benefit"]["sortheap"] = 1.0
                state["demand"]["sortheap"] = 128
                state["benefit"]["locklist"] = 0.0
                state["demand"]["locklist"] = 128
            clock.advance(1.0)
            broker.run_interval(clock.now())
        assert registry.heap("bufferpool").size_pages == 640
        assert registry.heap("sortheap").size_pages == 128
        assert registry.heap("locklist").size_pages == 128  # never traded
        assert registry.overflow_pages == 128
        assert broker.intervals_run == 10
        assert broker.trades_total == 8
        assert broker.pages_traded_total == 512
        # Admission limits restored with the posture.
        assert admission.max_in_flight == 8
        assert admission.max_queue_depth == 16
        # Every recorded reason belongs to the closed vocabulary.
        assert set(broker.audit.reasons()) <= set(BROKER_REASONS)

    def test_postures_actuate_admission_mid_run(self):
        registry, broker, admission, state = self.build()
        clock = ManualClock()
        state["benefit"]["sortheap"] = 50.0
        state["demand"]["sortheap"] = 320
        state["demand"]["locklist"] = 512
        clock.advance(1.0)
        broker.run_interval(clock.now())  # -> throttle
        assert admission.max_in_flight == 4
        clock.advance(1.0)
        broker.run_interval(clock.now())  # -> queue
        assert admission.max_in_flight == 2

    def test_metrics_published(self):
        registry, broker, admission, state = self.build()
        broker.metrics = metrics = MetricRegistry()
        clock = ManualClock()
        clock.advance(1.0)
        broker.run_interval(clock.now())
        gauges = {g.name: g.value for g in metrics.gauges()}
        assert gauges["broker.pressure.score"] == pytest.approx(0.90625)
        assert gauges["broker.posture"] == 0.0
        assert gauges['broker.heap.size_pages{heap="bufferpool"}'] == 576.0
        assert gauges['broker.heap.demand_pages{heap="bufferpool"}'] == 640.0
        counters = {c.name: c.value for c in metrics.counters()}
        assert counters["broker.trades"] == 1.0
        assert counters["broker.pages_traded"] == 64.0

    def test_status_block_shape(self):
        registry, broker, admission, state = self.build()
        clock = ManualClock()
        clock.advance(1.0)
        broker.run_interval(clock.now())
        status = broker.status()
        assert status["posture"] == "normal"
        assert status["total_pages"] == self.TOTAL
        heaps = {h["heap"]: h for h in status["heaps"]}
        assert heaps["locklist"]["tradeable"] is False
        assert heaps["bufferpool"]["size_pages"] == 576
        assert status["audit"][0]["reason"] == "trade-benefit"


class TestAdmissionSetLimits:
    def test_raising_in_flight_wakes_queued_waiters(self):
        import threading

        from tests.service.sched import wait_until

        admission = AdmissionController(1, max_queue_depth=4)
        admission.acquire()
        admitted = threading.Event()

        def waiter():
            admission.acquire()
            admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        wait_until(
            lambda: admission.queue_depth() == 1, what="waiter queued"
        )
        admission.set_limits(max_in_flight=2)
        thread.join(5.0)
        assert admitted.is_set()

    def test_lowering_never_evicts_running_sessions(self):
        admission = AdmissionController(4, max_queue_depth=0)
        for _ in range(4):
            admission.acquire()
        admission.set_limits(max_in_flight=1)
        assert admission.in_flight() == 4  # existing work finishes
        for _ in range(4):
            admission.release()
        admission.acquire()
        from repro.errors import AdmissionRejectedError

        with pytest.raises(AdmissionRejectedError):
            admission.acquire()

    def test_validation(self):
        admission = AdmissionController(4)
        with pytest.raises(ValueError):
            admission.set_limits(max_in_flight=0)
        with pytest.raises(ValueError):
            admission.set_limits(max_queue_depth=-1)


class TestServiceStackIntegration:
    """The broker wired into the live stack (driven synchronously)."""

    def make_stack(self, **overrides):
        from repro.service.stack import ServiceConfig, ServiceStack

        defaults = dict(
            total_memory_pages=16_384,
            initial_locklist_pages=128,
            tuner_interval_s=30.0,  # drive tuning manually
            broker=True,
        )
        defaults.update(overrides)
        return ServiceStack(ServiceConfig(**defaults))

    def test_broker_heaps_registered_and_traded(self):
        stack = self.make_stack()
        assert stack.broker is not None
        for name in ("sortheap", "hashjoin", "pkgcache"):
            assert name in stack.registry
        # STMM's own PMC rebalance is off: page moves are broker trades.
        assert stack.stmm.config.pmc_rebalance_fraction == 0.0
        with stack:
            for _ in range(6):
                stack.tuner.tune_now()
        assert stack.broker.intervals_run == 6
        assert stack.broker.trades_total > 0
        assert set(stack.broker.audit.reasons()) <= set(BROKER_REASONS)
        snapshot = stack.registry.snapshot()
        assert sum(snapshot.values()) == 16_384
        stack.check_invariants()

    def test_default_profile_stays_normal(self):
        """The stock profile must not throttle a default-sized run."""
        stack = self.make_stack()
        with stack:
            for _ in range(4):
                stack.tuner.tune_now()
        assert stack.broker.pressure.posture == "normal"
        assert stack.admission.max_in_flight == stack.config.max_in_flight

    def test_ops_stmm_carries_the_broker_block(self):
        stack = self.make_stack()
        with stack:
            stack.tuner.tune_now()
            block = stack.ops_stmm()["broker"]
        assert block is not None
        assert block["posture"] == "normal"
        assert {h["heap"] for h in block["heaps"]} >= {
            "bufferpool",
            "sortheap",
            "hashjoin",
            "pkgcache",
            "locklist",
        }

    def test_broker_off_by_default(self):
        stack = self.make_stack(broker=False)
        assert stack.broker is None
        assert "sortheap" not in stack.registry
        with stack:
            stack.tuner.tune_now()
        assert stack.ops_stmm()["broker"] is None

    def test_broker_crash_rides_the_freeze_path(self):
        stack = self.make_stack()

        def bomb(now):
            raise RuntimeError("broker bug")

        stack.broker.run_interval = bomb
        with stack:
            with pytest.raises(RuntimeError, match="broker bug"):
                stack.tuner.tune_now()
            assert stack.tuner.frozen
            assert stack.service.frozen_reason is not None
        stack.check_invariants()

    def test_telemetry_carries_broker_records(self, tmp_path):
        from repro.obs.events import RunTelemetry
        from repro.service.telemetry import service_telemetry

        stack = self.make_stack()
        with stack:
            for _ in range(6):
                stack.tuner.tune_now()
        telemetry = service_telemetry(stack, label="broker-run")
        assert telemetry.broker  # trades happened above
        path = str(tmp_path / "broker.jsonl")
        telemetry.write_jsonl(path)
        reloaded = RunTelemetry.from_jsonl(path)
        assert reloaded.broker == telemetry.broker


class TestConservationUnderFault:
    def test_oversubscription_is_caught_by_the_interval_proof(self):
        registry = DatabaseMemoryRegistry(total_pages=256)
        heap = registry.register(
            MemoryHeap("bufferpool", HeapCategory.PMC, 128)
        )
        broker = MemoryBroker(
            registry,
            [ScriptedEstimator(heap, lambda: 1.0, lambda: 128)],
        )
        # Corrupt the accounting behind the registry's back.
        heap._size_pages += 512
        with pytest.raises(MemoryAccountingError):
            broker.run_interval(1.0)
