"""Unit tests for the shard memory ledger and the aggregate chain.

The distribution arithmetic (largest-remainder grant splits, the
most-free-first shrink scan, all-or-nothing release semantics) is what
keeps the sharded stack's accounting equal to the unsharded stack's --
so it gets pinned here in isolation, with hand-computed expectations.
"""

from types import SimpleNamespace

import pytest

from repro.errors import ServiceError
from repro.lockmgr.blocks import LockBlockChain
from repro.service.ledger import AggregateLockChain, ShardMemoryLedger
from repro.units import LOCKS_PER_BLOCK, PAGES_PER_BLOCK


def make_shards(*initial_blocks):
    """Fake shards exposing just the ``chain`` surface the ledger reads."""
    return [
        SimpleNamespace(chain=LockBlockChain(initial_blocks=blocks))
        for blocks in initial_blocks
    ]


def occupy(chain: LockBlockChain, slots: int):
    return [chain.allocate_slot() for _ in range(slots)]


class TestGrantSplit:
    def test_idle_shards_split_evenly_with_low_index_ties(self):
        shards = make_shards(1, 1, 1)
        ledger = ShardMemoryLedger(shards)
        # weights [1, 1, 1]; 4 blocks -> floors [1, 1, 1], remainder 1
        # goes to the lowest index
        assert ledger.grant_split(4) == [2, 1, 1]
        assert ledger.grant_split(0) == [0, 0, 0]
        assert ledger.grant_split(3) == [1, 1, 1]

    def test_split_follows_demand(self):
        shards = make_shards(1, 1, 1)
        occupy(shards[0].chain, 30)
        occupy(shards[1].chain, 10)
        ledger = ShardMemoryLedger(shards)
        assert ledger.demand_weights() == [31, 11, 1]
        # shares of 10 blocks: [7.209, 2.558, 0.232] -> floors [7, 2, 0],
        # remainder 1 to the largest fraction (shard 1)
        assert ledger.grant_split(10) == [7, 3, 0]

    def test_split_always_sums_to_the_grant(self):
        shards = make_shards(1, 1, 1, 1, 1)
        occupy(shards[1].chain, 17)
        occupy(shards[3].chain, 1200)
        ledger = ShardMemoryLedger(shards)
        for blocks in range(0, 40):
            split = ledger.grant_split(blocks)
            assert sum(split) == blocks
            assert all(share >= 0 for share in split)

    def test_negative_grant_rejected(self):
        ledger = ShardMemoryLedger(make_shards(1))
        with pytest.raises(ValueError):
            ledger.grant_split(-1)


class TestBorrowAccounting:
    def test_borrows_accumulate_per_shard(self):
        ledger = ShardMemoryLedger(make_shards(1, 1))
        ledger.record_sync_borrow(0, 2)
        ledger.record_sync_borrow(0, 1)
        ledger.record_sync_borrow(1, 4)
        assert ledger.borrowed_blocks(0) == 3
        assert ledger.borrowed_blocks(1) == 4
        assert ledger.total_borrowed_blocks() == 7

    def test_negative_borrow_rejected(self):
        ledger = ShardMemoryLedger(make_shards(1))
        with pytest.raises(ValueError):
            ledger.record_sync_borrow(0, -1)

    def test_occupancy_mirrors_the_chains(self):
        shards = make_shards(2, 1)
        occupy(shards[0].chain, 5)
        ledger = ShardMemoryLedger(shards)
        ledger.record_sync_borrow(1, 2)
        occ = ledger.occupancy()
        assert [o.shard for o in occ] == [0, 1]
        assert occ[0].used_slots == 5
        assert occ[0].capacity_slots == 2 * LOCKS_PER_BLOCK
        assert occ[0].entirely_free_blocks == 1
        assert occ[1].used_slots == 0
        assert occ[1].borrowed_blocks == 2


class TestAggregateChain:
    def test_reads_are_sums(self):
        shards = make_shards(2, 3)
        occupy(shards[0].chain, 10)
        occupy(shards[1].chain, 20)
        chain = AggregateLockChain(
            [s.chain for s in shards], ShardMemoryLedger(shards)
        )
        assert chain.block_count == 5
        assert chain.capacity_slots == 5 * LOCKS_PER_BLOCK
        assert chain.used_slots == 30
        assert chain.free_slots == 5 * LOCKS_PER_BLOCK - 30
        assert chain.allocated_pages == 5 * PAGES_PER_BLOCK
        assert chain.entirely_free_blocks() == 3
        assert 0.0 < chain.free_fraction() < 1.0

    def test_add_blocks_lands_where_demand_is(self):
        shards = make_shards(1, 1)
        occupy(shards[0].chain, 100)
        chain = AggregateLockChain(
            [s.chain for s in shards], ShardMemoryLedger(shards)
        )
        # weights [101, 1]: all 3 blocks go to shard 0
        assert chain.add_blocks(3) == 3
        assert shards[0].chain.block_count == 4
        assert shards[1].chain.block_count == 1

    def test_release_prefers_most_free_then_highest_index(self):
        shards = make_shards(3, 4, 4)
        occupy(shards[0].chain, 2 * LOCKS_PER_BLOCK)  # 1 free block
        occupy(shards[1].chain, LOCKS_PER_BLOCK)      # 3 free blocks
        occupy(shards[2].chain, LOCKS_PER_BLOCK)      # 3 free blocks
        chain = AggregateLockChain(
            [s.chain for s in shards], ShardMemoryLedger(shards)
        )
        # shard 1 and 2 tie at 3 free; the highest index drains first
        assert chain.release_blocks(3) == 3
        assert shards[2].chain.block_count == 1
        assert shards[1].chain.block_count == 4
        assert shards[0].chain.block_count == 3
        # next release spills from shard 1 into shard 0's single free block
        assert chain.release_blocks(4) == 4
        assert shards[1].chain.block_count == 1
        assert shards[0].chain.block_count == 2

    def test_release_is_all_or_nothing_without_partial(self):
        shards = make_shards(2, 2)
        occupy(shards[0].chain, LOCKS_PER_BLOCK + 1)  # pins 2 blocks
        occupy(shards[1].chain, 1)                    # pins 1 block
        chain = AggregateLockChain(
            [s.chain for s in shards], ShardMemoryLedger(shards)
        )
        assert chain.entirely_free_blocks() == 1
        # asking for 2 when only 1 is jointly free: nothing moves
        assert chain.release_blocks(2) == 0
        assert chain.block_count == 4
        # partial takes what exists
        assert chain.release_blocks(2, partial=True) == 1
        assert chain.block_count == 3

    def test_constructor_rejects_mismatched_ledger(self):
        shards = make_shards(1, 1)
        ledger = ShardMemoryLedger(shards)
        with pytest.raises(ServiceError, match="ledger tracks"):
            AggregateLockChain([shards[0].chain], ledger)
        with pytest.raises(ServiceError):
            AggregateLockChain([], ledger)
        with pytest.raises(ServiceError):
            ShardMemoryLedger([])
