"""Deterministic concurrency harness for the live-service tests.

The service tests drive real threads against real mutexes -- but a
test that sleeps a fixed interval and hopes the other thread got there
is a flake factory.  This module replaces sleep-based timing with
three small primitives that make every interleaving *scripted*:

:func:`wait_until`
    Block until an observable predicate over service state holds
    ("session 3 is parked in the wait queue"), polling at
    sub-millisecond granularity with one generous overall deadline.
    The test then proceeds from a *known* state instead of an assumed
    one; the deadline only bounds genuine hangs.

:class:`Gate`
    A named rendezvous point.  A thread calls ``gate.block()`` where
    the script wants it to pause (typically from inside an injected
    callback, e.g. a wrapped growth provider); the test calls
    ``gate.open()`` when the interleaving says it may continue.
    ``arrived`` is observable, so the test can :func:`wait_until` the
    thread is parked at the gate before acting.

:class:`ScriptedThread`
    A worker that records its result or exception; ``result(timeout)``
    joins and re-raises, so a failure inside the thread fails the test
    at the join site instead of vanishing into a daemon thread.

None of these primitives makes threads artificially synchronous: the
real locks, condition variables and generators run exactly as in
production.  The script only pins down *which* interleaving the test
exercises.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

#: One ceiling for every scripted step: far beyond any legitimate
#: scheduling delay, so hitting it always means a real hang.
DEFAULT_DEADLINE_S = 10.0

_POLL_S = 0.0002


def wait_until(
    predicate: Callable[[], bool],
    *,
    timeout_s: float = DEFAULT_DEADLINE_S,
    what: str = "condition",
) -> None:
    """Block until ``predicate()`` is true; raise on a genuine hang."""
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"{what} not reached within {timeout_s:.1f}s"
            )
        time.sleep(_POLL_S)


class Gate:
    """A scripted pause point another thread blocks on until opened."""

    def __init__(self, name: str = "gate") -> None:
        self.name = name
        self._open = threading.Event()
        self._arrivals = 0
        self._lock = threading.Lock()

    @property
    def arrived(self) -> int:
        """How many threads have reached (or passed) this gate."""
        return self._arrivals

    def block(self, timeout_s: float = DEFAULT_DEADLINE_S) -> None:
        """Called by the scripted thread at its pause point."""
        with self._lock:
            self._arrivals += 1
        if not self._open.wait(timeout_s):
            raise TimeoutError(
                f"gate {self.name!r} never opened within {timeout_s:.1f}s"
            )

    def open(self) -> None:
        """Called by the test when the paused thread may continue."""
        self._open.set()

    def await_arrival(self, count: int = 1) -> None:
        """Block the test until ``count`` threads are parked here."""
        wait_until(
            lambda: self._arrivals >= count,
            what=f"{count} arrival(s) at gate {self.name!r}",
        )


class ScriptedThread:
    """A worker thread whose outcome the test must consume.

    ``result()`` joins and returns the callable's return value, or
    re-raises whatever the thread raised -- so thread failures surface
    at a deterministic point in the test body.  ``outcome()`` is the
    non-raising variant for scripts that *expect* an exception.
    """

    def __init__(
        self, fn: Callable[..., Any], *args: Any, name: str = "scripted", **kwargs: Any
    ) -> None:
        self._value: Any = None
        self._error: Optional[BaseException] = None

        def run() -> None:
            try:
                self._value = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - re-raised at join
                self._error = exc

        self._thread = threading.Thread(target=run, name=name, daemon=True)
        self._thread.start()

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def join(self, timeout_s: float = DEFAULT_DEADLINE_S) -> None:
        self._thread.join(timeout_s)
        if self._thread.is_alive():
            raise TimeoutError(
                f"thread {self._thread.name!r} still running after "
                f"{timeout_s:.1f}s"
            )

    def result(self, timeout_s: float = DEFAULT_DEADLINE_S) -> Any:
        self.join(timeout_s)
        if self._error is not None:
            raise self._error
        return self._value

    def outcome(self, timeout_s: float = DEFAULT_DEADLINE_S) -> Any:
        """Join and return the raised exception, or the return value."""
        self.join(timeout_s)
        return self._error if self._error is not None else self._value
