"""Cross-shard deadlock detection: merged graphs, sweeps, victim rules.

Shard-local cycles cannot exist (each shard keeps immediate
detection), so these tests build cycles that genuinely span shard
boundaries and assert the sweep finds them in ONE pass, picks victims
by global footprint with the documented lowest-app-id tie-break, and
that the degraded path (graph-merge invariant violation) fails loudly.
"""

import pytest

from repro.errors import DeadlockError, LockManagerError
from repro.lockmgr.detector import merge_wait_graphs
from repro.lockmgr.modes import LockMode
from repro.service.sharded import ShardedServiceConfig, ShardedServiceStack
from tests.service.sched import ScriptedThread, wait_until


def make_stack(shards: int, **cfg_kwargs) -> ShardedServiceStack:
    cfg_kwargs.setdefault("tuner_interval_s", None)
    return ShardedServiceStack(
        ShardedServiceConfig(shards=shards, **cfg_kwargs)
    )


def park_all(service, requests):
    """Issue blocking table requests on threads; wait until all parked."""
    threads = {
        app: ScriptedThread(
            service.lock_table, app, table, LockMode.X, name=f"app{app}"
        )
        for app, table in requests
    }
    expected = {app for app, _ in requests}
    wait_until(
        lambda: service.waiting_sessions() == expected,
        what="all cycle participants parked",
    )
    return threads


class TestCycleSpans:
    def test_two_shard_cycle_found_in_one_sweep(self):
        stack = make_stack(2)
        service = stack.service
        a, b = service.open_session(), service.open_session()
        service.lock_table(a, 0, LockMode.X)  # shard 0
        service.lock_table(b, 1, LockMode.X)  # shard 1
        threads = park_all(service, [(a, 1), (b, 0)])

        assert stack.detector.check() == 1
        assert stack.detector.stats.checks == 1
        assert stack.detector.stats.cycles_found == 1

        victim = stack.detector.stats.victims[0]
        assert isinstance(threads[victim].outcome(), DeadlockError)
        service.rollback(victim)
        survivor = b if victim == a else a
        threads[survivor].result()
        assert stack.manager_stats.deadlocks == 1
        for app in (a, b):
            service.rollback(app)
            service.close_session(app)
        stack.stop()
        stack.check_invariants()

    def test_three_shard_cycle_found_in_one_sweep(self):
        stack = make_stack(3)
        service = stack.service
        a, b, c = (service.open_session() for _ in range(3))
        service.lock_table(a, 0, LockMode.X)  # shard 0
        service.lock_table(b, 1, LockMode.X)  # shard 1
        service.lock_table(c, 2, LockMode.X)  # shard 2
        threads = park_all(service, [(a, 1), (b, 2), (c, 0)])

        assert stack.detector.check() == 1
        assert stack.detector.stats.cycles_found == 1
        # Equal global footprints (one table lock + one parked request
        # each): the tie-break picks the lowest application id.
        assert stack.detector.stats.victims == [a]

        assert isinstance(threads[a].outcome(), DeadlockError)
        # Unwinding the cycle is a chain: a's rollback grants c (who
        # waited on table 0), c's rollback then grants b.
        service.rollback(a)
        threads[c].result()
        service.rollback(c)
        threads[b].result()
        service.rollback(b)
        for app in (a, b, c):
            service.close_session(app)
        stack.stop()
        stack.check_invariants()

    def test_two_and_three_shard_cycles_in_the_same_sweep(self):
        """Disjoint cycles spanning 2 and 3 shards resolved together."""
        stack = make_stack(3)
        service = stack.service
        a, b, c, d, e = (service.open_session() for _ in range(5))
        # 2-shard cycle over tables 0 (shard 0) and 1 (shard 1).
        service.lock_table(a, 0, LockMode.X)
        service.lock_table(b, 1, LockMode.X)
        # 3-shard cycle over tables 3, 4, 5 (shards 0, 1, 2).
        service.lock_table(c, 3, LockMode.X)
        service.lock_table(d, 4, LockMode.X)
        service.lock_table(e, 5, LockMode.X)
        threads = park_all(
            service, [(a, 1), (b, 0), (c, 4), (d, 5), (e, 3)]
        )

        assert stack.detector.check() == 2
        assert stack.detector.stats.cycles_found == 2
        assert sorted(stack.detector.stats.victims) == [a, c]

        for victim in (a, c):
            assert isinstance(threads[victim].outcome(), DeadlockError)
            service.rollback(victim)
        # 2-cycle: a's rollback grants b directly.  3-cycle: c's
        # rollback grants e (who waited on table 3); e's rollback then
        # grants d.
        threads[b].result()
        threads[e].result()
        service.rollback(e)
        threads[d].result()
        assert stack.manager_stats.deadlocks == 2
        for app in (b, d):
            service.rollback(app)
        for app in (a, b, c, d, e):
            service.close_session(app)
        stack.stop()
        stack.check_invariants()


class TestVictimChoice:
    def test_victim_has_smallest_global_footprint(self):
        """Global, not per-shard, slot counts drive the choice."""
        stack = make_stack(2)
        service = stack.service
        a, b = service.open_session(), service.open_session()
        # Inflate a's GLOBAL footprint with row locks on an unrelated
        # table in the *other* shard -- a per-shard count at a's wait
        # site would miss them.
        for row in range(5):
            service.lock_row(a, 9, row, LockMode.X)  # table 9 -> shard 1
        service.lock_table(a, 0, LockMode.X)  # shard 0
        service.lock_table(b, 1, LockMode.X)  # shard 1
        threads = park_all(service, [(a, 1), (b, 0)])
        assert service.ledger.app_slots(a) > service.ledger.app_slots(b)

        assert stack.detector.check() == 1
        # b holds fewer structures globally, so b is the victim even
        # though a has the lower id.
        assert stack.detector.stats.victims == [b]
        assert isinstance(threads[b].outcome(), DeadlockError)
        service.rollback(b)
        threads[a].result()
        for app in (a, b):
            service.rollback(app)
            service.close_session(app)
        stack.stop()
        stack.check_invariants()

    def test_tie_break_is_lowest_app_id(self):
        """Documented contract: equal footprints -> lowest id loses."""
        stack = make_stack(2)
        service = stack.service
        # Open in reverse-ish order so id order != creation order of
        # the cycle edges.
        a, b = service.open_session(), service.open_session()
        service.lock_table(b, 1, LockMode.X)
        service.lock_table(a, 0, LockMode.X)
        threads = park_all(service, [(b, 0), (a, 1)])
        assert service.ledger.app_slots(a) == service.ledger.app_slots(b)

        stack.detector.check()
        assert stack.detector.stats.victims == [min(a, b)]
        assert isinstance(threads[min(a, b)].outcome(), DeadlockError)
        service.rollback(min(a, b))
        threads[max(a, b)].result()
        for app in (a, b):
            service.rollback(app)
            service.close_session(app)
        stack.stop()


class TestSweepThread:
    def test_background_sweep_resolves_cycle_without_manual_check(self):
        stack = make_stack(2, deadlock_interval_s=0.02)
        with stack:
            service = stack.service
            a, b = service.open_session(), service.open_session()
            service.lock_table(a, 0, LockMode.X)
            service.lock_table(b, 1, LockMode.X)
            ta = ScriptedThread(service.lock_table, a, 1, LockMode.X)
            tb = ScriptedThread(service.lock_table, b, 0, LockMode.X)
            wait_until(
                lambda: stack.detector.stats.victims,
                what="background sweep picked a victim",
            )
            victim = stack.detector.stats.victims[0]
            tv, ts = (ta, tb) if victim == a else (tb, ta)
            assert isinstance(tv.outcome(), DeadlockError)
            # The survivor grants only once the victim's held table
            # lock is gone.
            service.rollback(victim)
            ts.result()
            assert stack.detector.crash is None
            for app in (a, b):
                service.rollback(app)
                service.close_session(app)
        stack.check_invariants()


class TestMergeBackstop:
    def test_duplicate_waiter_across_shards_is_rejected(self):
        """One session waiting in two shards means the one-in-flight
        invariant broke upstream; the merge must not paper over it."""
        with pytest.raises(LockManagerError, match="two shards"):
            merge_wait_graphs([{7: [1]}, {7: [2]}])

    def test_one_in_flight_is_enforced_globally(self):
        from repro.errors import ServiceError

        stack = make_stack(2)
        service = stack.service
        blocker = service.open_session()
        app = service.open_session()
        service.lock_table(blocker, 0, LockMode.X)
        thread = ScriptedThread(service.lock_table, app, 0, LockMode.X)
        wait_until(
            lambda: app in service.waiting_sessions(),
            what="first request parked",
        )
        # A second concurrent request -- even routed to the OTHER
        # shard -- must be refused, or the merged wait-for graph would
        # contain this session twice.
        with pytest.raises(ServiceError, match="in flight"):
            service.lock_table(app, 1, LockMode.X)
        service.rollback(blocker)
        thread.result()
        for s in (blocker, app):
            service.rollback(s)
            service.close_session(s)
        stack.stop()
