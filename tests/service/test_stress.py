"""The acceptance stress: heavy thread concurrency with exact accounting.

Eight worker threads issue >= 5000 lock requests each against a small
initial LOCKLIST while the tuning pressure knobs are set so that both
*synchronous growth* and *lock escalation* fire during the run.  At
shutdown the accounting must be byte-exact: zero leaked structures, the
registry's locklist heap equal to the chain's allocation, and every
cross-layer invariant intact.  A lost wakeup would hang a worker (the
watchdog join catches it); a double grant would corrupt the manager's
slot accounting (the invariant sweep catches it).
"""

import threading
import time

import pytest

from repro.core.params import TuningParameters
from repro.engine.transactions import TransactionMix
from repro.service.driver import LoadDriver
from repro.service.stack import ServiceConfig, ServiceStack
from tests.service.sched import wait_until

THREADS = 8
REQUESTS_PER_THREAD = 5_000


@pytest.mark.slow
class TestServiceStress:
    def test_stress_with_growth_and_escalation(self):
        # Small machine, small LOCKLIST, huge transactions and a low
        # MAXLOCKS curve: memory pressure must be answered by synchronous
        # growth until overflow runs dry, and per-application pressure by
        # escalation -- the two paper mechanisms, both under real threads.
        config = ServiceConfig(
            total_memory_pages=4_096,
            initial_locklist_pages=32,
            tuner_interval_s=0.05,
            params=TuningParameters(maxlocks_p=3.0),
            max_in_flight=THREADS,
            admission_queue_depth=2 * THREADS,
        )
        stack = ServiceStack(config)
        mix = TransactionMix(
            locks_per_txn_mean=200.0,
            think_time_mean_s=0.0,
            work_time_per_lock_s=0.0,
            rows_per_table=500_000,
            write_fraction=0.10,
            hot_access_probability=0.02,
        )
        driver = LoadDriver(
            stack,
            mix=mix,
            threads=THREADS,
            requests_per_thread=REQUESTS_PER_THREAD,
            seed=42,
            request_timeout_s=10.0,
        )
        with stack:
            report = driver.run()

        # every worker finished its quota and none raised
        assert report.worker_errors == []
        assert report.lock_requests >= THREADS * REQUESTS_PER_THREAD
        assert report.transactions > 0

        # both tuning mechanisms really fired during the run
        stats = stack.service.manager.stats
        assert stats.sync_growth_blocks > 0, "sync growth never exercised"
        assert stats.escalations.count > 0, "escalation never exercised"

        # no worker left anything behind: no waiter, no session, no slot
        assert stack.service.manager.waiting_apps() == set()
        assert stack.service.session_count() == 0
        assert stack.chain.used_slots == 0

        # byte-exact memory accounting across every layer
        assert (
            stack.registry.heap("locklist").size_pages
            == stack.chain.allocated_pages
        )
        stack.check_invariants()
        for obj in stack.service.manager._objects.values():
            obj.check_invariants()

        # the tuner daemon survived the whole run
        assert stack.tuner.crash is None
        assert stack.tuner.intervals_run > 0

    def test_no_threads_leak(self):
        """Service-owned threads are all gone after stop()."""
        before = threading.active_count()
        stack = ServiceStack(
            ServiceConfig(total_memory_pages=4_096, tuner_interval_s=0.02)
        )
        with stack:
            LoadDriver(
                stack, threads=4, requests_per_thread=200, seed=7
            ).run()
        wait_until(
            lambda: threading.active_count() <= before,
            what="stack threads exiting after stop",
        )
        assert threading.active_count() <= before
