"""The stress exit-code contract: admission sheds fail the run.

Satellite 4 of ISSUE 9: a stress run that degraded into the ``shed``
admission posture used to exit 0.  The shed count now feeds the final
verdict -- any shed beyond the ``--allow-sheds`` budget (default 0) is
a failure, pinned here against a fake driver so the contract cannot
regress silently.
"""

import pytest

import repro.service.cli as cli
from repro.service.driver import DriverReport


class FakeDriver:
    """Stands in for LoadDriver: returns a canned report, runs nothing."""

    report = DriverReport()

    def __init__(self, stack, **kwargs):
        self.stack = stack

    def run(self):
        return self.report


@pytest.fixture
def fake_driver(monkeypatch):
    def set_report(**fields):
        FakeDriver.report = DriverReport(**fields)

    monkeypatch.setattr(cli, "LoadDriver", FakeDriver)
    return set_report


class TestShedExitCode:
    def test_sheds_fail_the_run_by_default(self, fake_driver, capsys):
        fake_driver(
            threads=1, lock_requests=1, commits=1, admission_sheds=3,
            wall_s=0.01,
        )
        exit_code = cli.main(["stress", "--threads", "1", "--requests", "1"])
        assert exit_code == 1
        err = capsys.readouterr().err
        assert "3 admission sheds" in err
        assert "--allow-sheds" in err

    def test_allow_sheds_budget_tolerates_declared_overload(
        self, fake_driver
    ):
        fake_driver(
            threads=1, lock_requests=1, commits=1, admission_sheds=3,
            wall_s=0.01,
        )
        exit_code = cli.main(
            ["stress", "--threads", "1", "--requests", "1",
             "--allow-sheds", "3"]
        )
        assert exit_code == 0

    def test_sheds_beyond_the_budget_still_fail(self, fake_driver, capsys):
        fake_driver(
            threads=1, lock_requests=1, commits=1, admission_sheds=5,
            wall_s=0.01,
        )
        exit_code = cli.main(
            ["stress", "--threads", "1", "--requests", "1",
             "--allow-sheds", "3"]
        )
        assert exit_code == 1
        assert "5 admission sheds" in capsys.readouterr().err

    def test_clean_run_still_passes(self, fake_driver):
        fake_driver(threads=1, lock_requests=1, commits=1, wall_s=0.01)
        exit_code = cli.main(["stress", "--threads", "1", "--requests", "1"])
        assert exit_code == 0


class TestShedFailuresHelper:
    def test_zero_budget_zero_sheds_is_clean(self):
        import argparse

        args = argparse.Namespace(allow_sheds=0)
        assert cli._shed_failures(args, DriverReport()) == []

    def test_missing_attribute_defaults_to_zero_budget(self):
        import argparse

        report = DriverReport(admission_sheds=1)
        assert cli._shed_failures(argparse.Namespace(), report)
