"""Demand-trace capture and the live-to-simulation round trip."""

import io
import threading
import time

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.modes import LockMode
from repro.service.capture import (
    DemandTraceRecorder,
    downsample,
    load_trace_jsonl,
)
from repro.service.clock import ManualClock
from repro.service.driver import LoadDriver
from repro.service.stack import ServiceConfig, ServiceStack
from repro.workloads.replay import LockDemandReplay
from tests.conftest import make_database


class TestRecorder:
    def test_manual_sampling(self):
        chain = LockBlockChain(initial_blocks=1)
        clock = ManualClock()
        recorder = DemandTraceRecorder(chain, clock=clock)
        clock.advance(1.0)
        assert recorder.sample_now()
        clock.advance(1.0)
        assert recorder.sample_now()
        assert recorder.to_trace() == [(1.0, 0), (2.0, 0)]

    def test_non_advancing_samples_dropped(self):
        chain = LockBlockChain(initial_blocks=1)
        clock = ManualClock()
        recorder = DemandTraceRecorder(chain, clock=clock)
        clock.advance(1.0)
        assert recorder.sample_now()
        assert not recorder.sample_now()  # same timestamp
        assert recorder.dropped == 1
        assert len(recorder) == 1

    def test_sample_cap(self):
        chain = LockBlockChain(initial_blocks=1)
        clock = ManualClock()
        recorder = DemandTraceRecorder(chain, clock=clock, max_samples=2)
        for _ in range(4):
            clock.advance(1.0)
            recorder.sample_now()
        assert len(recorder) == 2
        assert recorder.dropped == 2

    def test_background_thread_samples(self):
        chain = LockBlockChain(initial_blocks=1)
        recorder = DemandTraceRecorder(chain, period_s=0.01)
        with recorder:
            deadline = time.monotonic() + 10.0
            while len(recorder) < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        trace = recorder.to_trace()
        assert len(trace) >= 3
        times = [t for t, _ in trace]
        assert times == sorted(times)
        assert len(set(times)) == len(times)  # strictly increasing

    def test_validation(self):
        chain = LockBlockChain(initial_blocks=1)
        with pytest.raises(ServiceError):
            DemandTraceRecorder(chain, period_s=0)
        with pytest.raises(ServiceError):
            DemandTraceRecorder(chain, max_samples=0)
        recorder = DemandTraceRecorder(chain)
        recorder.start()
        with pytest.raises(ServiceError):
            recorder.start()
        recorder.stop()


class TestJsonlRoundTrip:
    def test_write_and_load(self):
        chain = LockBlockChain(initial_blocks=1)
        clock = ManualClock()
        recorder = DemandTraceRecorder(chain, clock=clock)
        for _ in range(5):
            clock.advance(0.5)
            recorder.sample_now()
        buffer = io.StringIO()
        assert recorder.write_jsonl(buffer) == 5
        buffer.seek(0)
        assert load_trace_jsonl(buffer) == recorder.to_trace()

    def test_load_rejects_corrupt_traces(self):
        with pytest.raises(ConfigurationError, match="bad trace record"):
            load_trace_jsonl(io.StringIO("not json\n"))
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            load_trace_jsonl(
                io.StringIO(
                    '{"time": 1.0, "target_locks": 5}\n'
                    '{"time": 1.0, "target_locks": 6}\n'
                )
            )
        with pytest.raises(ConfigurationError, match="negative"):
            load_trace_jsonl(io.StringIO('{"time": 1.0, "target_locks": -2}\n'))
        with pytest.raises(ConfigurationError, match="empty"):
            load_trace_jsonl(io.StringIO("\n\n"))

    def test_file_round_trip(self, tmp_path):
        chain = LockBlockChain(initial_blocks=1)
        clock = ManualClock()
        recorder = DemandTraceRecorder(chain, clock=clock)
        clock.advance(1.0)
        recorder.sample_now()
        path = tmp_path / "trace.jsonl"
        assert recorder.save(str(path)) == 1
        assert load_trace_jsonl(str(path)) == [(1.0, 0)]


class TestDownsample:
    def test_short_traces_untouched(self):
        trace = [(0.0, 1), (1.0, 2)]
        assert downsample(trace, 10) == trace

    def test_keeps_endpoints_and_monotonicity(self):
        trace = [(float(i), i) for i in range(100)]
        thin = downsample(trace, 10)
        assert len(thin) == 10
        assert thin[0] == trace[0]
        assert thin[-1] == trace[-1]
        times = [t for t, _ in thin]
        assert times == sorted(set(times))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            downsample([(0.0, 1)], 1)


@pytest.mark.slow
class TestLiveToSimulationRoundTrip:
    def test_captured_live_demand_replays_in_simulation(self):
        """Record a live service's lock demand, then replay the captured
        trace through a fresh *simulated* database -- the offline
        controller-study loop the capture format exists for."""
        stack = ServiceStack(
            ServiceConfig(
                total_memory_pages=8_192,
                initial_locklist_pages=32,
                tuner_interval_s=0.05,
            )
        )
        recorder = DemandTraceRecorder(
            stack.chain, clock=stack.clock, period_s=0.01
        )
        with stack, recorder:
            LoadDriver(
                stack, threads=4, requests_per_thread=1_500, seed=11
            ).run()
        trace = recorder.to_trace()
        assert len(trace) >= 2
        assert max(target for _, target in trace) > 0  # demand was captured

        # thin dense wall-clock captures before simulating
        trace = downsample(trace, 50)
        db = make_database(seed=5)
        replay = LockDemandReplay(db, trace, batch_size=128)
        replay.start()
        db.run(until=trace[-1][0] + 1.0)
        # the replay tracked the captured demand to batch granularity
        final_target = trace[-1][1]
        assert abs(replay.held_locks - final_target) <= 128
        db.check_invariants()

    def test_capture_inside_a_simulation_via_virtual_clock(self):
        """The recorder's manual mode also works on simulated time."""
        from repro.service.clock import VirtualClock

        db = make_database(seed=3)
        recorder = DemandTraceRecorder(
            db.chain, clock=VirtualClock(db.env)
        )
        replay = LockDemandReplay(
            db, [(1.0, 500), (5.0, 2_000), (9.0, 200)], batch_size=100
        )
        replay.start()

        def sampler():
            while True:
                yield db.env.timeout(0.5)
                recorder.sample_now()

        db.env.process(sampler())
        db.run(until=10.0)
        trace = recorder.to_trace()
        assert len(trace) >= 10
        assert max(n for _, n in trace) >= 1_900
