"""Tests for the DSS reporting query."""

import pytest

from repro.core.optimizer import LockGranularity
from repro.lockmgr.resources import table_resource
from repro.workloads.dss import ReportingQuery
from tests.conftest import make_database


class TestValidation:
    def test_zero_rows_rejected(self):
        db = make_database()
        with pytest.raises(ValueError):
            ReportingQuery(db, start_time_s=0, row_count=0)

    def test_negative_duration_rejected(self):
        db = make_database()
        with pytest.raises(ValueError):
            ReportingQuery(db, 0, 10, acquisition_duration_s=-1)


class TestExecution:
    def test_small_query_completes_with_row_locks(self):
        db = make_database(seed=1)
        query = ReportingQuery(
            db, start_time_s=5, row_count=500,
            acquisition_duration_s=2, hold_duration_s=1,
        )
        query.start()
        db.run(until=60)
        assert query.result is not None
        assert query.result.completed
        assert query.result.granularity is LockGranularity.ROW
        assert query.result.rows_locked == 500
        assert query.result.started_at == 5.0

    def test_locks_released_after_completion(self):
        db = make_database(seed=1)
        query = ReportingQuery(db, 0, 300, acquisition_duration_s=1,
                               hold_duration_s=1)
        query.start()
        db.run(until=30)
        assert db.chain.used_slots == 0
        assert db.connected_applications() == 0

    def test_memory_grows_during_scan(self):
        db = make_database(seed=2, initial_locklist_pages=32)
        query = ReportingQuery(db, 2, 5_000, acquisition_duration_s=3,
                               hold_duration_s=2)
        query.start()
        db.run(until=40)
        assert query.result.completed
        # 5000 locks need > 2 blocks: growth must have occurred
        assert db.metrics["lock_pages"].max() > 64

    def test_oversized_query_compiles_to_table_lock(self):
        db = make_database(seed=3)
        budget = db.registry.total_pages * 64 // 10  # compiler view cap
        query = ReportingQuery(
            db, 0, row_count=budget * 2,
            acquisition_duration_s=1, hold_duration_s=0,
        )
        assert query._choose_granularity() is LockGranularity.TABLE

    def test_table_granularity_takes_single_lock(self):
        db = make_database(seed=3)
        query = ReportingQuery(
            db, 0, row_count=200,
            acquisition_duration_s=1, hold_duration_s=1, use_optimizer=False,
        )
        # force the table path by faking the optimizer off + manual choice
        from repro.core.optimizer import LockGranularity as LG

        query._choose_granularity = lambda: LG.TABLE
        query.start()
        db.run(until=2)
        # exactly one structure: the table S lock
        assert db.chain.used_slots == 1
        db.env.run(until=30)
        assert query.result.completed
