"""Tests for the lock-demand replay driver."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.replay import LockDemandReplay
from tests.conftest import make_database


class TestValidation:
    def test_empty_trace_rejected(self):
        db = make_database()
        with pytest.raises(ConfigurationError):
            LockDemandReplay(db, [])

    def test_non_increasing_times_rejected(self):
        db = make_database()
        with pytest.raises(ConfigurationError):
            LockDemandReplay(db, [(1, 10), (1, 20)])

    def test_negative_target_rejected(self):
        db = make_database()
        with pytest.raises(ConfigurationError):
            LockDemandReplay(db, [(0, -5)])

    def test_bad_batch_rejected(self):
        db = make_database()
        with pytest.raises(ConfigurationError):
            LockDemandReplay(db, [(0, 10)], batch_size=0)


class TestReplay:
    def test_tracks_rising_demand(self):
        db = make_database(seed=1)
        replay = LockDemandReplay(
            db, [(1, 1_000), (10, 4_000)], batch_size=500
        )
        replay.start()
        db.run(until=5)
        assert replay.held_locks == 1_000
        db.env.run(until=15)
        assert replay.held_locks == 4_000

    def test_tracks_falling_demand_with_batch_granularity(self):
        db = make_database(seed=2)
        replay = LockDemandReplay(
            db, [(1, 4_000), (10, 1_000)], batch_size=500
        )
        replay.start()
        db.run(until=20)
        assert 1_000 <= replay.held_locks <= 1_500

    def test_drop_to_zero_releases_everything(self):
        db = make_database(seed=3)
        replay = LockDemandReplay(db, [(1, 2_000), (10, 0)], batch_size=512)
        replay.start()
        db.run(until=20)
        assert replay.held_locks == 0
        assert db.connected_applications() == 0

    def test_manager_sees_the_demand(self):
        db = make_database(seed=4)
        replay = LockDemandReplay(db, [(1, 3_000)], batch_size=1_000)
        replay.start()
        db.run(until=10)
        # row locks plus one intent lock per holder
        assert db.chain.used_slots == 3_000 + 3

    def test_controller_follows_replayed_surge_and_slump(self):
        """End to end: the adaptive controller reacts to a replayed
        spike exactly as it does to a client-driven one."""
        db = make_database(seed=5)
        replay = LockDemandReplay(
            db, [(1, 30_000), (120, 1_000)], batch_size=2_048
        )
        replay.start()
        db.run(until=400)
        pages = db.metrics["lock_pages"]
        peak = pages.max()
        assert peak > 512  # grew past the 2 MB floor for the spike
        assert pages.last < peak  # and relaxed after the slump
        assert db.lock_manager.stats.escalations.count == 0
        db.check_invariants()

    def test_pinned_memory_forces_escalation(self):
        """Against a pinned 1-block lock list the replay's demand is
        answered by escalation: holders end up covered by table locks
        and the actual structure usage stays bounded by the block."""
        from repro.baselines.static_locklist import StaticLocklistPolicy

        db = make_database(
            seed=6,
            policy=StaticLocklistPolicy(locklist_pages=32, maxlocks_fraction=1.0),
        )
        replay = LockDemandReplay(db, [(1, 50_000)], batch_size=512)
        replay.start()
        db.run(until=10)
        assert db.lock_manager.stats.escalations.count >= 1
        assert db.chain.used_slots <= 2_048
        db.check_invariants()
