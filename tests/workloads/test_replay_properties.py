"""Property tests: the replay driver tracks arbitrary demand traces."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.replay import LockDemandReplay
from tests.conftest import make_database


@st.composite
def demand_traces(draw):
    """Random valid traces: strictly increasing times, bounded targets."""
    n = draw(st.integers(min_value=1, max_value=6))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=1.0, max_value=50.0),
                min_size=n, max_size=n, unique=True,
            )
        )
    )
    targets = draw(
        st.lists(
            st.integers(min_value=0, max_value=6_000),
            min_size=n, max_size=n,
        )
    )
    return list(zip(times, targets))


class TestReplayProperties:
    @settings(max_examples=15, deadline=None)
    @given(trace=demand_traces())
    def test_final_demand_tracked_within_batch(self, trace):
        db = make_database(seed=97)
        batch = 512
        replay = LockDemandReplay(db, trace, batch_size=batch)
        replay.start()
        db.run(until=trace[-1][0] + 20)
        final_target = trace[-1][1]
        assert final_target <= replay.held_locks < final_target + batch
        db.check_invariants()

    @settings(max_examples=10, deadline=None)
    @given(trace=demand_traces())
    def test_holders_fully_release_on_zero(self, trace):
        trace = trace + [(trace[-1][0] + 5.0, 0)]
        db = make_database(seed=98)
        replay = LockDemandReplay(db, trace, batch_size=256)
        replay.start()
        db.run(until=trace[-1][0] + 20)
        assert replay.held_locks == 0
        assert db.chain.used_slots == 0
        assert db.connected_applications() == 0
