"""Contention-model zoo: regimes, wait depth, thrashing, traces."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.contention import (
    BASE_MIX,
    REGIMES,
    ThrashingDetector,
    build_regime,
    build_trace,
    diurnal_trace,
    flash_crowd_trace,
    hot_page_mix,
    max_wait_depth,
    wait_depth,
)


class TestRegimes:
    def test_every_regime_builds_a_valid_mix(self):
        for name in REGIMES:
            mix = build_regime(name)
            assert mix.locks_per_txn_mean > 0, name
            assert 0.0 <= mix.write_fraction <= 1.0, name
            assert 0.0 <= mix.hot_access_probability <= 1.0, name

    def test_regimes_move_exactly_their_lever(self):
        """Each regime differs from the base in the lever under test."""
        assert build_regime("uniform").hot_access_probability == 0.0
        hot = build_regime("hot_page")
        assert hot.hot_access_probability > BASE_MIX.hot_access_probability
        assert build_regime("hot_page_extreme").hot_access_probability == 0.9
        assert build_regime("write_heavy").write_fraction == 0.8
        update = build_regime("update_heavy")
        assert update.update_lock_fraction == 0.9
        assert build_regime("read_mostly").write_fraction == 0.05
        hungry = build_regime("lock_hungry")
        assert hungry.locks_per_txn_mean > BASE_MIX.locks_per_txn_mean

    def test_unknown_regime_raises(self):
        with pytest.raises(ConfigurationError):
            build_regime("no-such-regime")

    def test_hot_page_skew_validation(self):
        with pytest.raises(ConfigurationError):
            hot_page_mix(skew=1.5)


class TestWaitDepth:
    def test_empty_graph(self):
        assert wait_depth({}) == 0

    def test_chain_depth(self):
        # 1 -> 2 -> 3 -> 4 (running): depth 3 edges.
        graph = {1: [2], 2: [3], 3: [4]}
        assert wait_depth(graph) == 3

    def test_fan_out_takes_longest_branch(self):
        graph = {1: [2, 3], 3: [4], 4: [5]}
        assert wait_depth(graph) == 3

    def test_cycle_is_cut_not_recursed(self):
        # A 2-cycle: the back edge is cut once, so the walk terminates
        # and the first-visited node sees the other as a depth-1 waiter.
        graph = {1: [2], 2: [1]}
        assert wait_depth(graph) == 2
        graph = {1: [2], 2: [3], 3: [1], 4: [1]}
        assert wait_depth(graph) >= 2  # terminates, counts the chain in

    def test_live_manager_wait_depth(self):
        from repro.engine.des import Environment
        from repro.lockmgr.blocks import LockBlockChain
        from repro.lockmgr.manager import LockManager
        from repro.lockmgr.modes import LockMode

        env = Environment()
        manager = LockManager(
            env, LockBlockChain(initial_blocks=2), maxlocks_fraction=1.0
        )

        def drive(gen):
            try:
                next(gen)
                return gen
            except StopIteration:
                return None

        assert drive(manager.lock_row(1, 0, 0, LockMode.X)) is None
        assert max_wait_depth(manager) == 0
        blocked = drive(manager.lock_row(2, 0, 0, LockMode.X))
        assert blocked is not None
        assert max_wait_depth(manager) == 1


class TestThrashingDetector:
    def test_peak_then_collapse_is_thrashing(self):
        detector = ThrashingDetector(drop_fraction=0.2)
        for mpl, tp in [(1, 100), (2, 180), (4, 240), (8, 150), (16, 90)]:
            detector.add(mpl, tp)
        assert detector.is_thrashing()
        assert detector.thrashing_point() == 4  # the knee MPL

    def test_monotone_curve_is_not_thrashing(self):
        detector = ThrashingDetector()
        for mpl, tp in [(1, 100), (2, 180), (4, 240), (8, 250)]:
            detector.add(mpl, tp)
        assert not detector.is_thrashing()
        assert detector.thrashing_point() is None
        assert detector.peak() == (8, 250)

    def test_shallow_dip_below_threshold_is_tolerated(self):
        detector = ThrashingDetector(drop_fraction=0.2)
        detector.add(1, 100)
        detector.add(2, 90)  # a 10 % dip is not a collapse
        assert not detector.is_thrashing()

    def test_mpl_must_increase(self):
        detector = ThrashingDetector()
        detector.add(4, 100)
        with pytest.raises(ConfigurationError):
            detector.add(4, 110)
        with pytest.raises(ConfigurationError):
            detector.add(2, 110)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThrashingDetector(drop_fraction=0.0)
        detector = ThrashingDetector()
        with pytest.raises(ConfigurationError):
            detector.add(1, -5)
        assert detector.peak() is None
        assert detector.thrashing_point() is None


class TestTraces:
    @pytest.mark.parametrize("name", ["diurnal", "flash_crowd"])
    def test_traces_are_valid_replay_input(self, name):
        trace = build_trace(name)
        assert trace
        times = [t for t, _ in trace]
        assert times == sorted(times)
        assert len(set(times)) == len(times)  # strictly increasing
        assert all(t > 0 for t in times)
        assert all(target >= 0 for _, target in trace)

    def test_diurnal_peaks_and_troughs(self):
        trace = diurnal_trace(
            base_locks=100, peak_locks=1_000, period_s=10.0, cycles=2,
            step_s=0.5,
        )
        targets = [target for _, target in trace]
        assert max(targets) == 1_000
        assert min(targets) <= 110  # returns to (near) the base each night
        # Two cycles: the peak is reached (at least) twice.
        assert targets.count(max(targets)) >= 2

    def test_flash_crowd_shape(self):
        trace = flash_crowd_trace(
            base_locks=100, spike_locks=2_000, ramp_s=1.0, hold_s=2.0,
            start_s=2.0, tail_s=2.0, step_s=0.5,
        )
        targets = dict(trace)
        assert targets[0.5] == 100  # flat base before the surge
        assert max(targets.values()) == 2_000
        assert trace[-1][1] <= 110  # decayed back down by the tail
        # The plateau holds the spike for its whole duration.
        plateau = [v for t, v in trace if 3.0 <= t < 5.0]
        assert plateau and all(v == 2_000 for v in plateau)

    def test_trace_replays_through_the_engine(self):
        """The generated traces drive LockDemandReplay end to end."""
        from repro.workloads.replay import LockDemandReplay
        from tests.conftest import make_database

        trace = flash_crowd_trace(
            base_locks=50, spike_locks=400, ramp_s=1.0, hold_s=1.0,
            start_s=1.0, tail_s=1.0, step_s=0.5,
        )
        db = make_database(seed=3)
        replay = LockDemandReplay(db, trace, batch_size=64)
        replay.start()
        peak_held = 0

        def sampler():
            nonlocal peak_held
            while True:
                yield db.env.timeout(0.25)
                peak_held = max(peak_held, replay.held_locks)

        db.env.process(sampler())
        db.run(until=trace[-1][0] + 1.0)
        # The replay tracked the surge up to (at least near) the spike.
        assert peak_held >= 400 - 64
        assert replay.shortfalls == 0
        db.check_invariants()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_trace("no-such-trace")
        with pytest.raises(ConfigurationError):
            diurnal_trace(base_locks=500, peak_locks=100)
        with pytest.raises(ConfigurationError):
            flash_crowd_trace(ramp_s=0.0)
