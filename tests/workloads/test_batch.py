"""Tests for batch update jobs."""

import pytest

from repro.workloads.batch import BatchUpdateJob
from tests.conftest import make_database


class TestValidation:
    def test_zero_rows_rejected(self):
        db = make_database()
        with pytest.raises(ValueError):
            BatchUpdateJob(db, 0, row_count=0)

    def test_negative_duration_rejected(self):
        db = make_database()
        with pytest.raises(ValueError):
            BatchUpdateJob(db, 0, 10, duration_s=-1)


class TestExecution:
    def test_job_completes_and_releases(self):
        db = make_database(seed=1)
        job = BatchUpdateJob(db, start_time_s=2, row_count=1_000, duration_s=3)
        job.start()
        db.run(until=40)
        assert job.result is not None
        assert job.result.completed
        assert job.result.rows_updated == 1_000
        assert db.chain.used_slots == 0

    def test_peak_then_relaxation(self):
        """Section 3.4's motivation: a batch peak relaxes afterwards."""
        db = make_database(seed=2, initial_locklist_pages=32)
        # 40,000 X locks ~ 625 pages used: forces growth past the 2 MB
        # minLockMemory floor (512 pages), so relaxation is observable.
        job = BatchUpdateJob(db, start_time_s=5, row_count=40_000, duration_s=5)
        job.start()
        db.run(until=400)
        pages = db.metrics["lock_pages"]
        peak = pages.max()
        assert peak > 512  # grew past the minimum for the batch
        assert pages.last < peak  # delta_reduce relaxed it afterwards

    def test_commit_counted(self):
        db = make_database(seed=3)
        job = BatchUpdateJob(db, 0, 500, duration_s=1)
        job.start()
        db.run(until=30)
        assert db.commits == 1

    def test_escalation_flag_records(self):
        from repro.baselines.static_locklist import StaticLocklistPolicy

        db = make_database(
            seed=4,
            policy=StaticLocklistPolicy(locklist_pages=32, maxlocks_fraction=0.9),
        )
        job = BatchUpdateJob(db, 0, row_count=5_000, duration_s=1)
        job.start()
        db.run(until=30)
        assert job.result.escalated
