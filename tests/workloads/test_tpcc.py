"""Tests for the TPC-C-like transaction model."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.lockmgr.modes import LockMode
from repro.workloads.schedule import ClientSchedule
from repro.workloads.tpcc import (
    DELIVERY,
    NEW_ORDER,
    ORDER_STATUS,
    PAYMENT,
    STANDARD_WEIGHTS,
    STOCK_LEVEL,
    TableTouch,
    TpccMix,
    TpccTable,
    TpccWorkload,
)
from tests.conftest import make_database


class TestProfiles:
    def test_standard_weights_cover_five_profiles(self):
        assert len(STANDARD_WEIGHTS) == 5
        assert sum(STANDARD_WEIGHTS.values()) == pytest.approx(1.0)

    def test_new_order_footprint(self):
        rng = random.Random(1)
        accesses = NEW_ORDER.draw_accesses(rng, warehouses=1)
        tables = {a.table_id for a in accesses}
        assert TpccTable.STOCK in tables
        assert TpccTable.ORDER_LINE in tables
        # clause 2.4: 5-15 order lines
        order_lines = [a for a in accesses if a.table_id == TpccTable.ORDER_LINE]
        assert 5 <= len(order_lines) <= 15
        assert all(a.mode is LockMode.X for a in order_lines)

    def test_order_status_is_read_only(self):
        rng = random.Random(2)
        accesses = ORDER_STATUS.draw_accesses(rng, warehouses=2)
        assert all(a.mode is LockMode.S for a in accesses)

    def test_delivery_is_the_big_writer(self):
        rng = random.Random(3)
        delivery = DELIVERY.draw_accesses(rng, warehouses=1)
        payment = PAYMENT.draw_accesses(rng, warehouses=1)
        assert len(delivery) > 5 * len(payment)
        assert all(a.mode is LockMode.X for a in delivery)

    def test_stock_level_reads_hundreds_of_rows(self):
        rng = random.Random(4)
        accesses = STOCK_LEVEL.draw_accesses(rng, warehouses=1)
        assert len(accesses) >= 250

    def test_rows_within_warehouse_partition(self):
        rng = random.Random(5)
        for _ in range(20):
            for access in NEW_ORDER.draw_accesses(rng, warehouses=3):
                cardinality = TpccTable.CARDINALITIES[access.table_id]
                assert 0 <= access.row_id < 3 * cardinality

    def test_invalid_touch_range_rejected(self):
        with pytest.raises(ConfigurationError):
            TableTouch(TpccTable.STOCK, (5, 2), LockMode.S)


class TestTpccMix:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TpccMix(weights={})
        with pytest.raises(ConfigurationError):
            TpccMix(warehouses=0)
        with pytest.raises(ConfigurationError):
            TpccMix(think_time_mean_s=-1)

    def test_profile_draw_respects_weights(self):
        mix = TpccMix(weights={NEW_ORDER: 0.9, STOCK_LEVEL: 0.1})
        rng = random.Random(6)
        draws = [mix.draw_profile(rng).name for _ in range(2_000)]
        share = draws.count("new-order") / len(draws)
        assert share == pytest.approx(0.9, abs=0.03)

    def test_draw_transaction_counts_executions(self):
        mix = TpccMix()
        rng = random.Random(7)
        for _ in range(50):
            mix.draw_transaction(rng)
        assert sum(mix.executed.values()) == 50

    def test_think_time(self):
        mix = TpccMix(think_time_mean_s=0)
        assert mix.draw_think_time(random.Random(1)) == 0.0


class TestTpccWorkload:
    def test_runs_against_database(self):
        db = make_database(seed=31)
        workload = TpccWorkload(
            db,
            ClientSchedule.constant(8),
            mix=TpccMix(think_time_mean_s=0.1),
        )
        workload.start()
        db.run(until=60)
        assert workload.commits > 20
        counts = workload.profile_counts()
        assert counts["new-order"] > 0
        assert counts["payment"] > 0
        assert db.lock_manager.stats.escalations.count == 0
        db.check_invariants()

    def test_mixed_modes_create_realistic_contention(self):
        """The TPC-C district row is the classic hot spot: payment and
        new-order both write it, so waits must appear."""
        db = make_database(seed=32)
        workload = TpccWorkload(
            db,
            ClientSchedule.constant(12),
            mix=TpccMix(warehouses=1, think_time_mean_s=0.05),
        )
        workload.start()
        db.run(until=60)
        assert db.lock_manager.stats.waits > 0
        assert workload.commits > 0
