"""Tests for client-count schedules."""

import pytest

from repro.engine.client import ClientPool
from repro.errors import ConfigurationError
from repro.workloads.oltp import standard_mix
from repro.workloads.schedule import ClientSchedule
from tests.conftest import make_database


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientSchedule([])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientSchedule([(0, 1), (0, 2)])

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientSchedule([(-1, 1)])

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientSchedule([(0, -1)])


class TestConstructors:
    def test_constant(self):
        schedule = ClientSchedule.constant(50)
        assert schedule.count_at(0) == 50
        assert schedule.count_at(1_000) == 50

    def test_step(self):
        schedule = ClientSchedule.step(50, 130, at=120)
        assert schedule.count_at(119.9) == 50
        assert schedule.count_at(120) == 130

    def test_step_time_validation(self):
        with pytest.raises(ConfigurationError):
            ClientSchedule.step(1, 2, at=0)

    def test_ramp_endpoints(self):
        schedule = ClientSchedule.ramp(1, 130, start=0, duration=60)
        assert schedule.count_at(0) == 1
        assert schedule.count_at(60) == 130

    def test_ramp_monotone(self):
        schedule = ClientSchedule.ramp(1, 130, start=0, duration=60, steps=10)
        counts = [schedule.count_at(t) for t in range(0, 61, 6)]
        assert counts == sorted(counts)

    def test_ramp_collapses_duplicates(self):
        schedule = ClientSchedule.ramp(10, 10, start=0, duration=60)
        assert len(schedule.steps) == 1

    def test_count_before_first_step_zero(self):
        schedule = ClientSchedule([(10, 5)])
        assert schedule.count_at(9.9) == 0

    def test_end_time(self):
        assert ClientSchedule.step(1, 2, at=50).end_time == 50


class TestDrive:
    def test_drive_applies_steps(self):
        db = make_database(seed=1)
        mix = standard_mix(
            locks_per_txn_mean=3, think_time_mean_s=0.05,
            work_time_per_lock_s=0.001,
        )
        pool = ClientPool(db, mix)
        schedule = ClientSchedule([(0, 3), (10, 6), (20, 1)])
        db.env.process(schedule.drive(pool))
        db.run(until=5)
        assert pool.active_count == 3
        db.env.run(until=15)
        assert pool.active_count == 6
        db.env.run(until=40)
        assert pool.active_count == 1
