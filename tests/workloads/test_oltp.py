"""Tests for OLTP workload construction."""

from repro.workloads.oltp import OltpWorkload, heavy_mix, standard_mix
from repro.workloads.schedule import ClientSchedule
from tests.conftest import make_database


class TestMixes:
    def test_standard_mix_defaults(self):
        mix = standard_mix()
        assert mix.locks_per_txn_mean == 100.0
        assert 0 < mix.write_fraction < 1

    def test_heavy_mix_is_hungrier(self):
        assert heavy_mix().locks_per_txn_mean > standard_mix().locks_per_txn_mean
        assert heavy_mix().think_time_mean_s < standard_mix().think_time_mean_s

    def test_overrides(self):
        mix = standard_mix(locks_per_txn_mean=7, think_time_mean_s=0.1)
        assert mix.locks_per_txn_mean == 7
        assert mix.think_time_mean_s == 0.1


class TestWorkload:
    def test_runs_and_commits(self):
        db = make_database(seed=1)
        workload = OltpWorkload(
            db,
            ClientSchedule.constant(4),
            mix=standard_mix(
                locks_per_txn_mean=5, think_time_mean_s=0.05,
                work_time_per_lock_s=0.001,
            ),
        )
        workload.start()
        db.run(until=30)
        assert workload.commits > 0
        assert workload.commits == db.commits

    def test_schedule_changes_population(self):
        db = make_database(seed=2)
        workload = OltpWorkload(
            db,
            ClientSchedule.step(2, 5, at=10),
            mix=standard_mix(
                locks_per_txn_mean=3, think_time_mean_s=0.05,
                work_time_per_lock_s=0.001,
            ),
        )
        workload.start()
        db.run(until=5)
        assert db.connected_applications() == 2
        db.env.run(until=20)
        assert db.connected_applications() == 5
