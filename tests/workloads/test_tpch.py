"""Tests for the TPC-H-like query stream."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.tpch import (
    Q_HEAVY,
    Q_LIGHT,
    Q_MEDIUM,
    QueryProfile,
    STANDARD_QUERY_WEIGHTS,
    TpchQueryStream,
)
from tests.conftest import make_database


class TestQueryProfile:
    def test_standard_profiles_ordered_by_weight_of_footprint(self):
        assert Q_LIGHT.scan_rows < Q_MEDIUM.scan_rows < Q_HEAVY.scan_rows
        assert sum(STANDARD_QUERY_WEIGHTS.values()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QueryProfile("bad", scan_rows=0, scan_duration_s=1)
        with pytest.raises(ConfigurationError):
            QueryProfile("bad", scan_rows=10, scan_duration_s=-1)
        with pytest.raises(ConfigurationError):
            QueryProfile("bad", scan_rows=10, scan_duration_s=1, sort_rows=-1)


class TestStreamValidation:
    def test_bad_weights(self):
        db = make_database()
        with pytest.raises(ConfigurationError):
            TpchQueryStream(db, weights={})

    def test_bad_times(self):
        db = make_database()
        with pytest.raises(ConfigurationError):
            TpchQueryStream(db, start_time_s=10, stop_time_s=5)

    def test_bad_scale(self):
        db = make_database()
        with pytest.raises(ConfigurationError):
            TpchQueryStream(db, scale=0)


class TestStreamExecution:
    def test_queries_run_one_after_another(self):
        db = make_database(seed=61)
        stream = TpchQueryStream(
            db, start_time_s=5, stop_time_s=150,
            weights={Q_LIGHT: 1.0}, think_time_mean_s=1.0, scale=0.2,
        )
        stream.start()
        db.run(until=200)
        assert stream.completed_count() >= 5
        for record in stream.records:
            assert record.completed
            assert record.rows_locked == 1_000  # 5000 * 0.2
        # sequential: each query submitted after the previous finished
        for earlier, later in zip(stream.records, stream.records[1:]):
            assert later.submitted_at >= earlier.submitted_at + earlier.duration_s

    def test_stop_time_respected(self):
        db = make_database(seed=62)
        stream = TpchQueryStream(
            db, start_time_s=0, stop_time_s=30,
            weights={Q_LIGHT: 1.0}, think_time_mean_s=0.5, scale=0.1,
        )
        stream.start()
        db.run(until=300)
        assert all(r.submitted_at <= 30 for r in stream.records)

    def test_mix_respects_weights(self):
        db = make_database(seed=63)
        stream = TpchQueryStream(
            db, weights={Q_LIGHT: 0.9, Q_MEDIUM: 0.1},
            think_time_mean_s=0.1, scale=0.05, stop_time_s=250,
        )
        stream.start()
        db.run(until=260)
        counts = stream.profile_counts()
        assert counts.get("q-light", 0) > counts.get("q-medium", 0)

    def test_locks_released_between_queries(self):
        db = make_database(seed=64)
        stream = TpchQueryStream(
            db, weights={Q_LIGHT: 1.0}, think_time_mean_s=5.0, scale=0.2,
            stop_time_s=100,
        )
        stream.start()
        db.run(until=150)
        assert db.chain.used_slots == 0
        db.check_invariants()

    def test_heavy_stream_drives_lock_memory_cycles(self):
        """A heavy query stream produces the grow-then-relax cycles the
        self-tuning algorithm exists for: memory rises for each query
        and delta_reduce brings it back between them."""
        db = make_database(seed=65, total_memory_pages=131_072)
        stream = TpchQueryStream(
            db, weights={Q_HEAVY: 1.0}, think_time_mean_s=90.0,
            stop_time_s=250,
        )
        stream.start()
        db.run(until=420)
        pages = db.metrics["lock_pages"]
        assert pages.max() > 1_000  # grew for the scans
        assert pages.last < pages.max()  # and relaxed in the gaps
        assert db.lock_manager.stats.escalations.exclusive_count == 0
