"""Cross-module integration tests: the whole system running together."""

import pytest

from repro.baselines.static_locklist import StaticLocklistPolicy
from repro.core.policy import AdaptiveLockMemoryPolicy
from repro.engine.client import ClientPool
from repro.engine.transactions import TransactionMix
from repro.workloads.dss import ReportingQuery
from repro.workloads.oltp import OltpWorkload, standard_mix
from repro.workloads.schedule import ClientSchedule
from tests.conftest import make_database

BUSY_MIX = TransactionMix(
    locks_per_txn_mean=40,
    write_fraction=0.3,
    think_time_mean_s=0.1,
    work_time_per_lock_s=0.01,
    num_tables=5,
    rows_per_table=200_000,
)


class TestAdaptiveEndToEnd:
    def test_no_escalations_under_adaptive_tuning(self):
        db = make_database(seed=21, policy=AdaptiveLockMemoryPolicy())
        workload = OltpWorkload(db, ClientSchedule.constant(12), mix=BUSY_MIX)
        workload.start()
        db.run(until=120)
        assert db.lock_manager.stats.escalations.count == 0
        assert db.commits > 50
        db.check_invariants()

    def test_locklist_heap_and_chain_stay_consistent(self):
        db = make_database(seed=22, policy=AdaptiveLockMemoryPolicy())
        workload = OltpWorkload(db, ClientSchedule.constant(8), mix=BUSY_MIX)
        workload.start()
        query = ReportingQuery(db, 30, 20_000, acquisition_duration_s=5,
                               hold_duration_s=5)
        query.start()
        db.run(until=120)
        db.check_invariants()
        db.policy.controller.check_consistency()
        assert sum(db.registry.snapshot().values()) == db.registry.total_pages

    def test_lock_memory_respects_global_bounds(self):
        db = make_database(seed=23, policy=AdaptiveLockMemoryPolicy())
        workload = OltpWorkload(db, ClientSchedule.constant(10), mix=BUSY_MIX)
        workload.start()
        query = ReportingQuery(db, 20, 40_000, acquisition_duration_s=10,
                               hold_duration_s=5)
        query.start()
        db.run(until=150)
        max_pages = db.policy.controller.max_lock_memory_pages()
        assert db.metrics["lock_pages"].max() <= max_pages

    def test_maxlocks_externalized_in_metrics(self):
        db = make_database(seed=24, policy=AdaptiveLockMemoryPolicy())
        workload = OltpWorkload(db, ClientSchedule.constant(6), mix=BUSY_MIX)
        workload.start()
        db.run(until=60)
        series = db.metrics["maxlocks_percent"]
        assert 1.0 <= series.min() <= series.max() <= 98.0


class TestAdaptiveVersusStatic:
    def test_adaptive_avoids_escalations_static_suffers_them(self):
        """Same seed, same workload: the static 1-block lock list
        escalates (mostly exclusively) while the adaptive policy grows
        lock memory instead and never escalates.  The full throughput-
        collapse comparison at 130 clients lives in the fig7/fig8
        scenario (see tests/analysis/test_scenarios_small.py)."""
        mix = TransactionMix(
            locks_per_txn_mean=120,
            write_fraction=0.3,
            think_time_mean_s=0.1,
            work_time_per_lock_s=0.02,
            num_tables=5,
            rows_per_table=200_000,
        )

        def run(policy):
            db = make_database(seed=25, policy=policy, initial_locklist_pages=64)
            workload = OltpWorkload(db, ClientSchedule.constant(25), mix=mix)
            workload.start()
            db.run(until=120)
            return db

        static = run(StaticLocklistPolicy(locklist_pages=32, maxlocks_fraction=0.10))
        adaptive = run(AdaptiveLockMemoryPolicy())
        assert static.lock_manager.stats.escalations.count > 0
        assert static.lock_manager.stats.escalations.exclusive_count > 0
        assert static.metrics["lock_pages"].max() == 32  # pinned
        assert adaptive.lock_manager.stats.escalations.count == 0
        assert adaptive.metrics["lock_pages"].max() > 32  # grew instead

    def test_same_seed_same_results(self):
        def run():
            db = make_database(seed=26, policy=AdaptiveLockMemoryPolicy())
            workload = OltpWorkload(
                db, ClientSchedule.constant(8),
                mix=standard_mix(locks_per_txn_mean=10, think_time_mean_s=0.1,
                                 work_time_per_lock_s=0.005),
            )
            workload.start()
            db.run(until=60)
            return (db.commits, db.lock_manager.stats.requests,
                    db.metrics["lock_pages"].values)

        assert run() == run()


class TestChurnAndCleanup:
    def test_client_churn_leaves_no_residue(self):
        db = make_database(seed=27)
        pool = ClientPool(
            db,
            standard_mix(locks_per_txn_mean=8, think_time_mean_s=0.05,
                         work_time_per_lock_s=0.002),
        )
        schedule = ClientSchedule([(0, 10), (20, 2), (40, 15), (60, 0)])
        db.env.process(schedule.drive(pool))
        db.run(until=120)
        assert db.connected_applications() == 0
        assert db.chain.used_slots == 0
        db.check_invariants()

    def test_overflow_returns_to_goal_after_spike(self):
        db = make_database(seed=28, policy=AdaptiveLockMemoryPolicy())
        query = ReportingQuery(db, 5, 50_000, acquisition_duration_s=5,
                               hold_duration_s=5)
        query.start()
        db.run(until=300)
        assert query.result.completed
        # after the spike and several tuning intervals, overflow is back
        # at (or above) its goal
        assert db.registry.overflow_pages >= db.registry.overflow_goal_pages
