"""Trace-context propagation across the awkward client lifecycles.

The happy path (one sampled request, one worker, one connection) is
covered by the pool smoke; these tests pin the two lifecycles where a
trace could plausibly be double-counted or silently dropped:

* **reconnect after a server restart** -- the in-flight traced request
  fails with the socket, the next one rides a fresh connection; every
  sampled request must land exactly one finished trace (the failure
  with its error outcome, the retry with full hops), never zero, never
  two;
* **session adoption** (``OP_ADOPT_SESSION``) -- the first touch of a
  table owned by a non-home worker sends an adoption request *before*
  the traced lock request.  Adoption must not consume a trace sample,
  must not add hops to the following trace, and the adopted worker's
  server ring must carry the child span.
"""

import time

import pytest

from repro.lockmgr.modes import LockMode
from repro.net.client import ConnectionLostError, RoutedLockClient
from repro.net.server import ServiceBackend, ThreadedLockServer
from repro.obs.tracing import HOP_NAMES, RequestTracer, ServerTracer
from repro.service.stack import ServiceConfig, ServiceStack


def small_config() -> ServiceConfig:
    return ServiceConfig(
        total_memory_pages=8192,
        initial_locklist_pages=128,
        tuner_interval_s=0.05,
        max_in_flight=16,
        admission_queue_depth=64,
    )


def traced_server(stack, sock_path: str):
    """A threaded server over ``stack.service`` with a span ring."""
    tracer = ServerTracer()
    server = ThreadedLockServer(
        ServiceBackend(stack.service, tracer=tracer), path=sock_path
    )
    server.start()
    return server, tracer


def assert_complete(trace: dict) -> None:
    """All seven hops present, disjoint, summing to the total."""
    assert set(trace["hops"]) == set(HOP_NAMES), trace
    hop_sum = sum(trace["hops"].values())
    assert trace["total_s"] > 0, trace
    assert abs(hop_sum - trace["total_s"]) <= 0.10 * trace["total_s"], trace


class TestTraceAcrossRestart:
    def test_every_sampled_request_lands_exactly_one_trace(self, tmp_path):
        sock = str(tmp_path / "w0.sock")
        with ServiceStack(small_config()) as stack:
            first, _ = traced_server(stack, sock)
            tracer = RequestTracer(1)
            client = RoutedLockClient(
                [first.address], pool_size=1, tracer=tracer
            )
            try:
                app = client.open_session()
                client.lock_row(app, 0, 1, LockMode.X)
                assert tracer.finished == 1
                assert_complete(tracer.to_dicts()[-1])

                first.stop()
                # The in-flight traced request dies with the socket:
                # one finished trace with the error outcome, client-side
                # hops only -- counted once, not truncated, not doubled.
                with pytest.raises((ConnectionLostError, OSError)):
                    client.lock_row(app, 0, 2, LockMode.X)
                assert tracer.started == tracer.finished == 2
                assert tracer.truncated == 0
                failed = tracer.to_dicts()[-1]
                assert failed["outcome"] != "ok"
                assert set(failed["hops"]) < set(HOP_NAMES)

                second, second_ring = traced_server(stack, sock)
                try:
                    # A fresh session rides the reconnect; its sampled
                    # request traces end to end again, and the restarted
                    # server's ring carries the child span.
                    deadline = time.monotonic() + 10.0
                    while True:
                        try:
                            app2 = client.open_session()
                            break
                        except (ConnectionLostError, OSError):
                            assert time.monotonic() < deadline
                            time.sleep(0.05)
                    client.lock_row(app2, 0, 3, LockMode.X)
                    assert client.reconnects >= 1
                    assert tracer.started == tracer.finished == 3
                    assert tracer.truncated == 0
                    revived = tracer.to_dicts()[-1]
                    assert_complete(revived)
                    spans = second_ring.to_dicts()
                    assert [s["trace_id"] for s in spans] == [
                        revived["trace_id"]
                    ]
                finally:
                    second.stop()
            finally:
                client.close()

    def test_trace_ids_stay_unique_across_the_restart(self, tmp_path):
        sock = str(tmp_path / "w0.sock")
        with ServiceStack(small_config()) as stack:
            first, _ = traced_server(stack, sock)
            tracer = RequestTracer(1)
            client = RoutedLockClient(
                [first.address], pool_size=1, tracer=tracer
            )
            try:
                app = client.open_session()
                client.lock_row(app, 0, 1, LockMode.X)
                first.stop()
                second, _ = traced_server(stack, sock)
                try:
                    deadline = time.monotonic() + 10.0
                    while True:
                        try:
                            app2 = client.open_session()
                            break
                        except (ConnectionLostError, OSError):
                            assert time.monotonic() < deadline
                            time.sleep(0.05)
                    client.lock_row(app2, 0, 2, LockMode.X)
                    ids = [t["trace_id"] for t in tracer.to_dicts()]
                    assert len(ids) == len(set(ids))
                finally:
                    second.stop()
            finally:
                client.close()


class TestTraceAcrossAdoption:
    def test_adoption_neither_samples_nor_adds_hops(self, tmp_path):
        with ServiceStack(small_config()) as stack0, ServiceStack(
            small_config()
        ) as stack1:
            server0, ring0 = traced_server(stack0, str(tmp_path / "w0.sock"))
            server1, ring1 = traced_server(stack1, str(tmp_path / "w1.sock"))
            tracer = RequestTracer(1)
            client = RoutedLockClient(
                [server0.address, server1.address],
                pool_size=1,
                tracer=tracer,
            )
            try:
                app = client.open_session()  # home: worker 0
                # First touch of an odd table routes to worker 1 and
                # must adopt the session there first.  The adoption
                # round trip happens before the trace window opens.
                client.lock_row(app, 1, 1, LockMode.X)
                assert tracer.seen == 1  # open_session + adopt: unsampled
                assert tracer.finished == 1
                trace = tracer.to_dicts()[-1]
                assert trace["worker"] == 1
                assert_complete(trace)

                # The adopted worker recorded the child span; the home
                # worker (which only ever saw session ops) recorded none.
                assert ring0.recorded == 0
                spans = ring1.to_dicts()
                assert len(spans) == 1
                assert spans[0]["trace_id"] == trace["trace_id"]
                assert spans[0]["span_id"] == trace["span_id"] + 1

                # A second request on the adopted worker reuses the
                # adoption: exactly one more sample, one more span.
                client.lock_row(app, 1, 2, LockMode.X)
                assert tracer.finished == 2
                assert ring1.recorded == 2
                assert_complete(tracer.to_dicts()[-1])
                client.close_session(app)
            finally:
                client.close()
                server0.stop()
                server1.stop()

    def test_untraced_client_sends_untraced_frames_after_adoption(
        self, tmp_path
    ):
        # Control: without a tracer the same adoption path produces no
        # spans on either worker -- the extension is strictly opt-in.
        with ServiceStack(small_config()) as stack0, ServiceStack(
            small_config()
        ) as stack1:
            server0, ring0 = traced_server(stack0, str(tmp_path / "w0.sock"))
            server1, ring1 = traced_server(stack1, str(tmp_path / "w1.sock"))
            client = RoutedLockClient(
                [server0.address, server1.address], pool_size=1
            )
            try:
                app = client.open_session()
                client.lock_row(app, 1, 1, LockMode.X)
                client.close_session(app)
                assert ring0.recorded == 0
                assert ring1.recorded == 0
            finally:
                client.close()
                server0.stop()
                server1.stop()
