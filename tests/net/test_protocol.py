"""Wire-protocol codec and framing edge cases.

The framing layer has to survive everything a TCP stream does to
message boundaries: single-byte dribbles, length prefixes torn across
reads, many frames coalesced into one read, and hostile length
announcements.  The codec side must round-trip every operation and
rebuild the exact exception class across the wire.
"""

import struct

import pytest

from repro.errors import (
    AdmissionRejectedError,
    AdmissionTimeoutError,
    DeadlockError,
    RequestCancelledError,
    ServiceClosedError,
    ServiceError,
)
from repro.lockmgr.manager import LockListFullError, LockTimeoutError
from repro.lockmgr.modes import LockMode
from repro.net import protocol as wire


def frames_of(*payloads: bytes) -> bytes:
    return b"".join(wire.encode_frame(p) for p in payloads)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


class TestFrameDecoder:
    def test_single_frame_roundtrip(self):
        decoder = wire.FrameDecoder()
        assert decoder.feed(wire.encode_frame(b"hello")) == [b"hello"]
        assert decoder.pending_bytes == 0

    def test_byte_by_byte_partial_reads(self):
        payload = wire.encode_ping(12345)
        stream = wire.encode_frame(payload)
        decoder = wire.FrameDecoder()
        out = []
        for i in range(len(stream)):
            out.extend(decoder.feed(stream[i : i + 1]))
        assert out == [payload]
        assert decoder.pending_bytes == 0

    def test_torn_length_prefix(self):
        stream = wire.encode_frame(b"abcdef")
        decoder = wire.FrameDecoder()
        # Two bytes of the four-byte prefix, then the rest.
        assert decoder.feed(stream[:2]) == []
        assert decoder.pending_bytes == 2
        assert decoder.feed(stream[2:]) == [b"abcdef"]

    def test_many_frames_one_read(self):
        payloads = [bytes([i]) * (i + 1) for i in range(5)]
        decoder = wire.FrameDecoder()
        assert decoder.feed(frames_of(*payloads)) == payloads

    def test_frame_boundary_straddles_reads(self):
        first, second = b"x" * 10, b"y" * 20
        stream = frames_of(first, second)
        decoder = wire.FrameDecoder()
        cut = len(wire.encode_frame(first)) + 7  # mid-second-frame
        out = decoder.feed(stream[:cut])
        out.extend(decoder.feed(stream[cut:]))
        assert out == [first, second]

    def test_oversized_announcement_rejected_before_body(self):
        # Only the prefix arrives; the decoder must refuse to wait for
        # (or buffer) a body it will never accept.
        prefix = struct.pack("!I", wire.MAX_FRAME_BYTES + 1)
        decoder = wire.FrameDecoder()
        with pytest.raises(wire.FrameTooLargeError):
            decoder.feed(prefix)

    def test_empty_frame_is_legal_framing(self):
        decoder = wire.FrameDecoder()
        assert decoder.feed(wire.encode_frame(b"")) == [b""]

    def test_encode_frame_rejects_oversized_payload(self):
        with pytest.raises(wire.FrameTooLargeError):
            wire.encode_frame(b"\x00" * (wire.MAX_FRAME_BYTES + 1))


class TestSplitFrames:
    def test_matches_decoder_feed_on_random_chunkings(self):
        payloads = [wire.encode_ping(i) for i in range(20)]
        stream = frames_of(*payloads)
        # Deterministic pseudo-random chunk sizes.
        sizes, x = [], 123456789
        pos = 0
        while pos < len(stream):
            x = (1103515245 * x + 12345) % (1 << 31)
            size = 1 + x % 37
            sizes.append(size)
            pos += size
        fast_decoder = wire.FrameDecoder()
        slow_decoder = wire.FrameDecoder()
        fast, slow = [], []
        pos = 0
        for size in sizes:
            chunk = stream[pos : pos + size]
            pos += size
            fast.extend(wire.split_frames(chunk, fast_decoder))
            slow.extend(slow_decoder.feed(chunk))
        assert fast == slow == payloads

    def test_trailing_partial_goes_through_decoder(self):
        whole = wire.encode_frame(b"complete")
        partial = wire.encode_frame(b"partial!")[:5]
        decoder = wire.FrameDecoder()
        assert wire.split_frames(whole + partial, decoder) == [b"complete"]
        assert decoder.pending_bytes > 0
        rest = wire.encode_frame(b"partial!")[5:]
        assert wire.split_frames(rest, decoder) == [b"partial!"]

    def test_oversized_rejected_on_fast_path(self):
        bad = struct.pack("!I", wire.MAX_FRAME_BYTES + 1) + b"x"
        with pytest.raises(wire.FrameTooLargeError):
            wire.split_frames(bad, wire.FrameDecoder())

    def test_iter_frames_rejects_trailing_garbage(self):
        data = frames_of(b"ok") + b"\x00\x00"
        with pytest.raises(wire.ProtocolError):
            list(wire.iter_frames(data))


# ---------------------------------------------------------------------------
# Request codec
# ---------------------------------------------------------------------------


class TestRequestCodec:
    def test_open_session_roundtrip(self):
        req = wire.decode_request(wire.encode_open_session(7))
        assert (req.op, req.request_id) == (wire.OP_OPEN_SESSION, 7)

    @pytest.mark.parametrize("no_reply", [False, True])
    def test_close_session_roundtrip(self, no_reply):
        payload = wire.encode_close_session(9, 42, no_reply=no_reply)
        req = wire.decode_request(payload)
        assert req.op == wire.OP_CLOSE_SESSION
        assert req.app_id == 42
        assert req.no_reply is no_reply

    @pytest.mark.parametrize("no_reply", [False, True])
    def test_release_all_roundtrip(self, no_reply):
        req = wire.decode_request(
            wire.encode_release_all(3, 17, no_reply=no_reply)
        )
        assert req.op == wire.OP_RELEASE_ALL
        assert (req.app_id, req.no_reply) == (17, no_reply)

    def test_adopt_and_cancel_roundtrip(self):
        adopt = wire.decode_request(wire.encode_adopt_session(1, 23))
        assert (adopt.op, adopt.app_id) == (wire.OP_ADOPT_SESSION, 23)
        cancel = wire.decode_request(wire.encode_cancel(2, 23))
        assert (cancel.op, cancel.app_id) == (wire.OP_CANCEL, 23)

    def test_lock_row_roundtrip_without_timeout(self):
        payload = wire.encode_lock_row(
            11, 5, -3, 99, wire.wire_mode(LockMode.X)
        )
        req = wire.decode_request(payload)
        assert (req.app_id, req.table_id, req.row_id) == (5, -3, 99)
        assert req.lock_mode is LockMode.X
        assert not req.has_timeout and req.timeout_s is None

    def test_lock_row_roundtrip_with_timeout(self):
        payload = wire.encode_lock_row(
            11, 5, 3, 99, wire.wire_mode(LockMode.S), timeout_s=2.5
        )
        req = wire.decode_request(payload)
        assert req.has_timeout and req.timeout_s == 2.5

    def test_lock_table_roundtrip(self):
        payload = wire.encode_lock_table(
            4, 8, 15, wire.wire_mode(LockMode.IX), timeout_s=-1.0
        )
        req = wire.decode_request(payload)
        assert (req.app_id, req.table_id) == (8, 15)
        assert req.timeout_s == -1.0

    def test_batch_lock_roundtrip(self):
        accesses = [(1, 2, 0), (3, 4, 1), (-5, 6, 2)]
        req = wire.decode_request(wire.encode_batch_lock(6, 77, accesses))
        assert req.app_id == 77
        assert req.accesses == accesses

    def test_batch_over_limit_rejected_at_encode(self):
        too_many = [(0, i, 0) for i in range(wire.MAX_BATCH_ACCESSES + 1)]
        with pytest.raises(wire.ProtocolError):
            wire.encode_batch_lock(1, 1, too_many)

    def test_batch_over_limit_rejected_at_decode(self):
        # Hand-craft a header announcing an absurd count: must be
        # rejected on the count alone, before touching the accesses.
        payload = (
            struct.pack("!BBQ", wire.OP_BATCH_LOCK, 0, 1)
            + struct.pack("!QI", 1, wire.MAX_BATCH_ACCESSES + 1)
        )
        with pytest.raises(wire.ProtocolError):
            wire.decode_request(payload)

    def test_unlock_read_stats_ping_roundtrip(self):
        unlock = wire.decode_request(wire.encode_unlock_read(1, 2, 3, 4))
        assert (unlock.app_id, unlock.table_id, unlock.row_id) == (2, 3, 4)
        assert wire.decode_request(wire.encode_stats(5)).op == wire.OP_STATS
        assert wire.decode_request(wire.encode_ping(6)).op == wire.OP_PING

    def test_truncated_header_rejected(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode_request(b"\x01\x00")

    def test_unknown_op_rejected(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode_request(struct.pack("!BBQ", 0x7F, 0, 1))

    def test_wrong_body_size_rejected(self):
        payload = wire.encode_close_session(1, 2) + b"\x00"
        with pytest.raises(wire.ProtocolError):
            wire.decode_request(payload)

    def test_timeout_flag_without_value_rejected(self):
        payload = struct.pack("!BBQ", wire.OP_LOCK_ROW, wire.FLAG_HAS_TIMEOUT, 1)
        with pytest.raises(wire.ProtocolError):
            wire.decode_request(payload)

    def test_unknown_mode_byte_raises_on_access(self):
        req = wire.decode_request(wire.encode_lock_row(1, 2, 3, 4, 250))
        with pytest.raises(wire.ProtocolError):
            req.lock_mode

    def test_wire_mode_idempotent_on_ints(self):
        for mode in LockMode:
            byte = wire.wire_mode(mode)
            assert wire.wire_mode(byte) == byte


# ---------------------------------------------------------------------------
# Response codec and the error vocabulary
# ---------------------------------------------------------------------------


class TestResponseCodec:
    def test_ok_roundtrip_with_value(self):
        resp = wire.decode_response(wire.encode_ok(9, value=-12))
        assert resp.ok and resp.request_id == 9 and resp.value == -12
        resp.raise_if_error()  # no-op on OK

    def test_ok_roundtrip_with_data(self):
        resp = wire.decode_response(wire.encode_ok(1, 0, b'{"a":1}'))
        assert resp.data == b'{"a":1}'

    @pytest.mark.parametrize(
        "exc_cls",
        [
            ServiceError,
            ServiceClosedError,
            RequestCancelledError,
            DeadlockError,
            LockTimeoutError,
            LockListFullError,
            AdmissionTimeoutError,
            wire.ProtocolError,
        ],
    )
    def test_error_class_survives_the_wire(self, exc_cls):
        payload = wire.encode_error(5, exc_cls("boom"))
        resp = wire.decode_response(payload)
        assert not resp.ok and resp.request_id == 5
        with pytest.raises(exc_cls) as info:
            resp.raise_if_error()
        assert "boom" in str(info.value)

    def test_admission_rejection_carries_retry_hint(self):
        payload = wire.encode_error(
            1, AdmissionRejectedError("full", retry_after_s=0.5)
        )
        with pytest.raises(AdmissionRejectedError) as info:
            wire.decode_response(payload).raise_if_error()
        assert info.value.retry_after_s > 0

    def test_unknown_exception_maps_to_service_error(self):
        assert wire.code_for_exception(KeyError("x")) == 1

    def test_subclass_maps_to_nearest_registered_base(self):
        class CustomTimeout(LockTimeoutError):
            pass

        code = wire.code_for_exception(CustomTimeout("t"))
        assert wire.ERROR_CODES[code] is LockTimeoutError

    def test_truncated_responses_rejected(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode_response(b"\x80")
        with pytest.raises(wire.ProtocolError):
            wire.decode_response(struct.pack("!BBQ", wire.RESP_OK, 0, 1))
        with pytest.raises(wire.ProtocolError):
            wire.decode_response(struct.pack("!BBQ", wire.RESP_ERR, 0, 1))

    def test_unknown_response_op_rejected(self):
        with pytest.raises(wire.ProtocolError):
            wire.decode_response(struct.pack("!BBQq", 0x55, 0, 1, 0))


# ---------------------------------------------------------------------------
# Hot-path fast frames must stay bit-identical to the general codec
# ---------------------------------------------------------------------------


class TestFastPaths:
    def test_pack_lock_row_frame_matches_codec(self):
        slow = wire.encode_frame(wire.encode_lock_row(7, 1, 2, 3, 4))
        assert wire.pack_lock_row_frame(7, 1, 2, 3, 4) == slow

    def test_pack_lock_row_frame_with_timeout_matches_codec(self):
        slow = wire.encode_frame(
            wire.encode_lock_row(7, 1, 2, 3, 4, timeout_s=1.5)
        )
        assert wire.pack_lock_row_frame(7, 1, 2, 3, 4, timeout_s=1.5) == slow

    def test_pack_ok_frame_matches_codec(self):
        assert wire.pack_ok_frame(3, 11) == wire.encode_frame(
            wire.encode_ok(3, 11)
        )

    def test_try_parse_lock_row_both_variants(self):
        plain = wire.encode_lock_row(9, 1, -2, 3, 4)
        assert wire.try_parse_lock_row(plain) == (9, 1, -2, 3, 4, None)
        timed = wire.encode_lock_row(9, 1, 2, 3, 4, timeout_s=0.25)
        assert wire.try_parse_lock_row(timed) == (9, 1, 2, 3, 4, 0.25)

    def test_try_parse_lock_row_falls_back_on_other_ops(self):
        assert wire.try_parse_lock_row(wire.encode_ping(1)) is None

    def test_try_parse_ok_roundtrip_and_fallback(self):
        payload = wire.encode_ok(5, 17)
        assert wire.try_parse_ok(payload) == (5, 17)
        assert wire.try_parse_ok(wire.encode_ok(5, 0, b"data")) is None
        assert (
            wire.try_parse_ok(wire.encode_error(5, ServiceError("x"))) is None
        )


# ---------------------------------------------------------------------------
# FLAG_TRACE frame extension
# ---------------------------------------------------------------------------


class TestTraceExtension:
    TRACE = (0xABCD_0000_0000_0042, 7, True)

    def test_trace_tail_roundtrip(self):
        payload = wire.encode_lock_row(
            11, 5, -3, 99, wire.wire_mode(LockMode.X), trace=self.TRACE
        )
        req = wire.decode_request(payload)
        assert (req.trace_id, req.trace_span) == self.TRACE[:2]
        assert req.trace_sampled is True
        # The body parses exactly as the untraced frame would.
        assert (req.app_id, req.table_id, req.row_id) == (5, -3, 99)
        assert req.lock_mode is LockMode.X
        assert not req.has_timeout

    def test_trace_tail_roundtrip_with_timeout(self):
        payload = wire.encode_lock_row(
            11, 5, 3, 99, wire.wire_mode(LockMode.S),
            timeout_s=2.5, trace=(1, 2, False),
        )
        req = wire.decode_request(payload)
        assert req.has_timeout and req.timeout_s == 2.5
        assert (req.trace_id, req.trace_span) == (1, 2)
        assert req.trace_sampled is False

    def test_untraced_frames_stay_byte_identical(self):
        # The extension must cost nothing when unused: no flag bit, no
        # tail, byte-for-byte the pre-extension layout.
        plain = wire.encode_lock_row(11, 5, 3, 99, 4)
        explicit = wire.encode_lock_row(11, 5, 3, 99, 4, trace=None)
        assert plain == explicit
        assert not plain[1] & wire.FLAG_TRACE
        req = wire.decode_request(plain)
        assert (req.trace_id, req.trace_span, req.trace_sampled) == (
            0, 0, False,
        )

    def test_traced_frame_is_untraced_plus_tail(self):
        plain = wire.encode_lock_row(11, 5, 3, 99, 4)
        traced = wire.encode_lock_row(11, 5, 3, 99, 4, trace=self.TRACE)
        assert len(traced) == len(plain) + wire.TRACE_CTX_BYTES
        # Identical except the flags byte and the appended tail.
        assert traced[2:-wire.TRACE_CTX_BYTES] == plain[2:]

    def test_trace_flag_without_tail_rejected(self):
        payload = struct.pack(
            "!BBQ", wire.OP_LOCK_ROW, wire.FLAG_TRACE, 1
        )
        with pytest.raises(wire.ProtocolError):
            wire.decode_request(payload)

    @pytest.mark.parametrize("timeout_s", [None, 1.5])
    def test_fast_pack_matches_codec_traced(self, timeout_s):
        slow = wire.encode_frame(
            wire.encode_lock_row(
                7, 1, 2, 3, 4, timeout_s=timeout_s, trace=self.TRACE
            )
        )
        fast = wire.pack_lock_row_frame(
            7, 1, 2, 3, 4, timeout_s=timeout_s, trace=self.TRACE
        )
        assert fast == slow

    def test_fast_parse_falls_back_on_traced_frames(self):
        # The server's fast parse handles only the two untraced shapes;
        # traced frames must fall through to decode_request (which
        # strips the tail), never mis-parse.
        traced = wire.encode_lock_row(9, 1, 2, 3, 4, trace=self.TRACE)
        assert wire.try_parse_lock_row(traced) is None
        timed = wire.encode_lock_row(
            9, 1, 2, 3, 4, timeout_s=0.25, trace=self.TRACE
        )
        assert wire.try_parse_lock_row(timed) is None

    def test_rewrite_request_id_preserves_trace_tail(self):
        payload = wire.encode_lock_row(111, 1, 2, 3, 4, trace=self.TRACE)
        req = wire.decode_request(wire.rewrite_request_id(payload, 222))
        assert req.request_id == 222
        assert (req.trace_id, req.trace_span) == self.TRACE[:2]
        assert req.trace_sampled is True

    def test_hop_report_roundtrip(self):
        packed = wire.pack_hop_report(0.001, 0.25, 0.0, 0.0005)
        assert len(packed) == wire.HOP_REPORT_BYTES
        assert wire.parse_hop_report(packed) == (0.001, 0.25, 0.0, 0.0005)

    def test_hop_report_rejects_wrong_size(self):
        assert wire.parse_hop_report(b"") is None
        assert wire.parse_hop_report(b"\x00" * 31) is None
        assert wire.parse_hop_report(b"\x00" * 33) is None


# ---------------------------------------------------------------------------
# Router helpers
# ---------------------------------------------------------------------------


class TestRouterHelpers:
    def test_rewrite_and_peek_request_id(self):
        payload = wire.encode_lock_row(111, 1, 2, 3, 4, timeout_s=9.0)
        rewritten = wire.rewrite_request_id(payload, 222)
        assert wire.peek_request_id(rewritten) == 222
        # Everything but the id is untouched.
        req = wire.decode_request(rewritten)
        assert (req.app_id, req.table_id, req.row_id) == (1, 2, 3)
        assert req.timeout_s == 9.0

    def test_helpers_reject_short_payloads(self):
        with pytest.raises(wire.ProtocolError):
            wire.rewrite_request_id(b"\x01", 1)
        with pytest.raises(wire.ProtocolError):
            wire.peek_request_id(b"\x01")
