"""End-to-end socket server + client library behavior.

A real :class:`ServiceStack` behind a real socket (TCP and Unix
domain), driven by the client library: session lifecycle and
recycling, pipelined requests, error classes crossing the wire,
disconnect cleanup, reconnect after a server restart, and the
oversized-frame teardown.
"""

import socket
import struct
import threading
import time

import pytest

from repro.lockmgr.manager import LockTimeoutError
from repro.lockmgr.modes import LockMode
from repro.net import protocol as wire
from repro.net.client import ConnectionLostError, LockClient, NetClientStack
from repro.net.server import serve_service
from repro.service.stack import ServiceConfig, ServiceStack


def small_config() -> ServiceConfig:
    return ServiceConfig(
        total_memory_pages=8192,
        initial_locklist_pages=128,
        tuner_interval_s=0.05,
        max_in_flight=16,
        admission_queue_depth=64,
    )


@pytest.fixture()
def stack():
    with ServiceStack(small_config()) as service_stack:
        yield service_stack


@pytest.fixture()
def server(stack):
    srv = serve_service(stack.service, host="127.0.0.1", port=0)
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    with LockClient(*server.address, pool_size=2) as lock_client:
        yield lock_client


def wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestRoundTrips:
    def test_ping_and_stats(self, client):
        client.ping()
        payload = client.stats()
        assert payload["sessions"] == 0
        assert "service" in payload and "manager" in payload

    def test_lock_rows_and_rollback(self, client):
        app = client.open_session()
        client.lock_row(app, 1, 1, LockMode.X)
        client.lock_row(app, 1, 2, LockMode.S, timeout_s=1.0)
        granted = client.lock_rows(
            app, [(2, 1, LockMode.X), (2, 2, LockMode.X)]
        )
        assert granted == 2
        assert client.rollback(app) > 0
        assert client.close_session(app) == 0

    def test_unlock_read_over_the_wire(self, client):
        app = client.open_session()
        client.lock_row(app, 3, 9, LockMode.S)
        assert client.release_read_lock(app, 3, 9) is True
        assert client.release_read_lock(app, 3, 9) is False
        client.close_session(app)

    def test_lock_table(self, client):
        app = client.open_session()
        client.lock_table(app, 5, LockMode.IX)
        client.close_session(app)

    def test_unknown_app_is_a_service_error(self, client):
        with pytest.raises(wire.ServiceError):
            client.lock_row(999_999, 1, 1, LockMode.X)

    def test_timeout_error_class_crosses_the_wire(self, client):
        holder = client.open_session()
        waiter = client.open_session()
        client.lock_row(holder, 7, 7, LockMode.X)
        with pytest.raises(LockTimeoutError):
            client.lock_row(waiter, 7, 7, LockMode.X, timeout_s=0.05)
        client.close_session(holder)
        client.close_session(waiter)


class TestSessionLifecycle:
    def test_scope_recycles_the_session(self, server):
        # Recycling is per-connection: pin the pool to one socket so
        # both scopes land on it.
        with LockClient(*server.address, pool_size=1) as lock_client:
            with lock_client.session() as first:
                lock_client.lock_row(first, 1, 1, LockMode.X)
            with lock_client.session() as second:
                lock_client.lock_row(second, 1, 1, LockMode.X)
            # Scope exit released the locks (fire-and-forget
            # release_all is ordered by the TCP stream) and parked
            # the session for the second scope to adopt.
            assert second == first
            assert lock_client.session_count == 1

    def test_close_session_releases_locks_serverside(self, client, stack):
        app = client.open_session()
        client.lock_row(app, 1, 1, LockMode.X)
        assert stack.service.session_count() == 1
        client.close_session(app)
        assert stack.service.session_count() == 0
        assert stack.chain.used_slots == 0

    def test_disconnect_force_closes_sessions(self, server, stack):
        lock_client = LockClient(*server.address, pool_size=1)
        app = lock_client.open_session()
        lock_client.lock_row(app, 1, 1, LockMode.X)
        assert stack.service.session_count() == 1
        lock_client.close()
        # The server's reader notices the dead socket and cleans up.
        assert wait_until(lambda: stack.service.session_count() == 0)
        assert wait_until(lambda: stack.chain.used_slots == 0)


class TestPipelining:
    def test_concurrent_threads_on_a_small_pool(self, server):
        with LockClient(*server.address, pool_size=1) as lock_client:
            errors = []

            def worker(i: int) -> None:
                try:
                    for j in range(50):
                        with lock_client.session() as app:
                            lock_client.lock_row(
                                app, i, j, LockMode.X, timeout_s=5.0
                            )
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []


class TestReconnect:
    def test_client_survives_server_restart(self, stack):
        first = serve_service(stack.service, host="127.0.0.1", port=0)
        host, port = first.address
        lock_client = LockClient(host, port, pool_size=1)
        try:
            app = lock_client.open_session()
            lock_client.lock_row(app, 1, 1, LockMode.X)
            first.stop()
            # In-flight state is gone: the session died with its socket.
            with pytest.raises((ConnectionLostError, wire.ServiceError)):
                lock_client.lock_row(app, 1, 2, LockMode.X)
            second = serve_service(stack.service, host=host, port=port)
            try:
                # Next use reconnects transparently; new scopes work.
                # (The old session's server-side state survives a
                # front-end restart -- only a client *disconnect*
                # force-closes it -- so lock fresh rows here.)
                assert wait_until(lambda: _can_ping(lock_client))
                with lock_client.session() as fresh:
                    lock_client.lock_row(fresh, 2, 2, LockMode.X)
                assert lock_client.reconnects >= 1
            finally:
                second.stop()
        finally:
            lock_client.close()


def _can_ping(lock_client: LockClient) -> bool:
    try:
        lock_client.ping()
        return True
    except (ConnectionLostError, OSError):
        return False


class TestFraming:
    def test_oversized_frame_tears_the_connection_down(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(struct.pack("!I", wire.MAX_FRAME_BYTES + 1))
            sock.settimeout(5.0)
            # The server answers with one ProtocolError frame, then
            # closes the connection -- it never buffers the body.
            data = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                data += chunk
            frames = list(wire.iter_frames(data))
            assert len(frames) == 1
            resp = wire.decode_response(frames[0])
            assert not resp.ok
            assert wire.ERROR_CODES[resp.error_code] is wire.ProtocolError

        # And the server still serves new connections afterwards.
        with LockClient(host, port) as lock_client:
            lock_client.ping()

    def test_no_reply_ordering(self, server, stack):
        # A fire-and-forget release_all is ordered before the next
        # request on the same stream: the lock must be free by the
        # time a second session asks for it.
        with LockClient(*server.address, pool_size=1) as lock_client:
            app = lock_client.open_session()
            lock_client.lock_row(app, 1, 1, LockMode.X)
            conn = lock_client._session_conn(app)
            conn.send_only(wire.encode_release_all(0, app, no_reply=True))
            other = lock_client.open_session()
            lock_client.lock_row(other, 1, 1, LockMode.X, timeout_s=0.5)


class TestUnixDomain:
    def test_uds_roundtrip(self, stack, tmp_path):
        sock_path = str(tmp_path / "svc.sock")
        server = serve_service(stack.service, path=sock_path)
        try:
            with NetClientStack(*server.address, pool_size=1) as net:
                assert net.service.host.startswith("unix:")
                with net.service.session() as app:
                    net.service.lock_row(app, 1, 1, LockMode.X)
                net.service.ping()
        finally:
            server.stop()
