"""Tests for DATABASE_MEMORY self-tuning against the OS."""

import pytest

from repro.errors import ConfigurationError, MemoryAccountingError
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.os_model import DatabaseMemoryTuner, OperatingSystemModel
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig


def build(db_total=50_000, ram=100_000, other=20_000):
    registry = DatabaseMemoryRegistry(db_total, overflow_goal_pages=2_000)
    registry.register(
        MemoryHeap("bufferpool", HeapCategory.PMC, db_total // 2,
                   min_pages=db_total // 10,
                   benefit=lambda h: 1_000.0 / h.size_pages)
    )
    os_model = OperatingSystemModel(ram, other_demand_pages=other)
    tuner = DatabaseMemoryTuner(
        registry, os_model,
        target_free_fraction=0.10, band_fraction=0.02, step_fraction=0.10,
    )
    return registry, os_model, tuner


class TestResizeTotal:
    def test_grow_enlarges_overflow(self):
        registry, _os, _tuner = build()
        overflow_before = registry.overflow_pages
        registry.resize_total(60_000)
        assert registry.total_pages == 60_000
        assert registry.overflow_pages == overflow_before + 10_000

    def test_shrink_limited_by_overflow(self):
        registry, _os, _tuner = build()
        overflow = registry.overflow_pages
        with pytest.raises(MemoryAccountingError):
            registry.resize_total(registry.total_pages - overflow - 1)
        new_total = registry.resize_total(
            registry.total_pages - overflow - 1, partial=True
        )
        assert new_total == 50_000 - overflow
        assert registry.overflow_pages == 0

    def test_zero_total_rejected(self):
        registry, _os, _tuner = build()
        with pytest.raises(ConfigurationError):
            registry.resize_total(0)


class TestOperatingSystemModel:
    def test_free_pages(self):
        os_model = OperatingSystemModel(100_000, other_demand_pages=30_000)
        assert os_model.free_pages(50_000) == 20_000
        assert os_model.free_pages(80_000) == 0  # clamped

    def test_demand_updates(self):
        os_model = OperatingSystemModel(100_000)
        os_model.set_other_demand(70_000)
        assert os_model.free_pages(20_000) == 10_000
        with pytest.raises(ConfigurationError):
            os_model.set_other_demand(-1)


class TestTunerValidation:
    def test_bad_target(self):
        registry, os_model, _ = build()
        with pytest.raises(ConfigurationError):
            DatabaseMemoryTuner(registry, os_model, target_free_fraction=0)

    def test_band_exceeding_target(self):
        registry, os_model, _ = build()
        with pytest.raises(ConfigurationError):
            DatabaseMemoryTuner(
                registry, os_model,
                target_free_fraction=0.05, band_fraction=0.06,
            )


class TestTuning:
    def test_grows_when_os_has_slack(self):
        # free = 100k - 20k - 50k = 30k; target 10k -> grow
        registry, _os, tuner = build()
        action = tuner.tune(0.0)
        assert action is not None and action.kind == "grow"
        assert registry.total_pages == 55_000  # step cap: 10% of 50k

    def test_holds_inside_band(self):
        # free = 100k - 40k - 50k = 10k = target -> no action
        registry, _os, tuner = build(other=40_000)
        assert tuner.tune(0.0) is None
        assert registry.total_pages == 50_000

    def test_shrinks_under_os_pressure(self):
        # free = 100k - 48k - 50k = 2k < 8k lower band -> shrink
        registry, _os, tuner = build(other=48_000)
        action = tuner.tune(0.0)
        assert action is not None and action.kind == "shrink"
        assert registry.total_pages < 50_000

    def test_shrink_reclaims_from_donors_when_overflow_thin(self):
        registry, os_model, tuner = build(other=48_000)
        # consume almost all overflow into the bufferpool first
        registry.grow_heap("bufferpool", registry.overflow_pages - 100)
        bufferpool_before = registry.heap("bufferpool").size_pages
        action = tuner.tune(0.0)
        assert action is not None and action.kind == "shrink"
        assert registry.heap("bufferpool").size_pages < bufferpool_before

    def test_respects_min_total(self):
        registry, os_model, tuner = build(other=95_000)
        tuner.min_total_pages = 49_500
        tuner.tune(0.0)
        assert registry.total_pages >= 49_500

    def test_respects_max_total(self):
        registry, os_model, tuner = build(other=0)
        tuner.max_total_pages = 52_000
        tuner.tune(0.0)
        assert registry.total_pages <= 52_000

    def test_overflow_goal_tracks_total(self):
        registry, _os, tuner = build()
        tuner.tune(0.0)
        assert registry.overflow_goal_pages == int(0.05 * registry.total_pages)

    def test_converges_to_target_band(self):
        registry, os_model, tuner = build()
        for i in range(50):
            tuner.tune(float(i))
        free = os_model.free_pages(registry.total_pages)
        target = int(0.10 * os_model.total_ram_pages)
        band = int(0.02 * os_model.total_ram_pages)
        assert target - band <= free <= target + band


class TestStmmIntegration:
    def test_global_tuner_runs_each_interval(self):
        registry, os_model, tuner = build()
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        stmm.register_global_tuner(tuner.tune)
        stmm.tune(0.0)
        stmm.tune(30.0)
        assert len(tuner.actions) == 2
        assert registry.total_pages > 50_000

    def test_lock_memory_ceiling_follows_database_memory(self):
        """maxLockMemory = 20% of databaseMemory: growing the database
        raises the lock memory ceiling automatically."""
        from repro.core.controller import LockMemoryController
        from repro.lockmgr.blocks import LockBlockChain

        registry, os_model, tuner = build()
        registry.register(MemoryHeap("locklist", HeapCategory.FMC, 128))
        chain = LockBlockChain(initial_blocks=4)
        controller = LockMemoryController(registry, chain)
        ceiling_before = controller.max_lock_memory_pages()
        tuner.tune(0.0)
        assert controller.max_lock_memory_pages() > ceiling_before
