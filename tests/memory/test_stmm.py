"""Unit tests for the Self-Tuning Memory Manager."""

import pytest

from repro.engine.des import Environment
from repro.errors import ConfigurationError
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig


class FakeTuner:
    """Deterministic tuner with a scriptable target."""

    heap_name = "locklist"

    def __init__(self, registry, target=None, shrink_achievable=1.0):
        self.registry = registry
        self.target = target
        self.shrink_achievable = shrink_achievable
        self.grown = 0
        self.shrunk = 0
        self.interval_ends = 0

    def compute_target_pages(self):
        if self.target is None:
            return self.registry.heap(self.heap_name).size_pages
        return self.target

    def grow_physical(self, pages):
        self.grown += pages
        return pages

    def shrink_physical(self, pages):
        achieved = int(pages * self.shrink_achievable)
        self.shrunk += achieved
        return achieved

    def on_interval_end(self, now):
        self.interval_ends += 1


def build(total=10_000, goal=1_000, locklist=1_000):
    registry = DatabaseMemoryRegistry(total_pages=total, overflow_goal_pages=goal)
    registry.register(
        MemoryHeap("bufferpool", HeapCategory.PMC, 5_000, min_pages=1_000,
                   benefit=lambda h: 10_000.0 / h.size_pages)
    )
    registry.register(
        MemoryHeap("sort", HeapCategory.PMC, 2_000, min_pages=100,
                   benefit=lambda h: 100.0 / h.size_pages)
    )
    registry.register(MemoryHeap("locklist", HeapCategory.FMC, locklist))
    return registry


class TestConfig:
    def test_bad_interval(self):
        with pytest.raises(ConfigurationError):
            StmmConfig(interval_s=0)

    def test_bad_interval_bounds(self):
        with pytest.raises(ConfigurationError):
            StmmConfig(min_interval_s=100, max_interval_s=10)

    def test_bad_rebalance_fraction(self):
        with pytest.raises(ConfigurationError):
            StmmConfig(pmc_rebalance_fraction=2.0)


class TestRegistration:
    def test_unknown_heap_rejected(self):
        registry = build()
        stmm = Stmm(registry)

        class Bad(FakeTuner):
            heap_name = "nope"

        with pytest.raises(ConfigurationError):
            stmm.register_deterministic_tuner(Bad(registry))

    def test_duplicate_tuner_rejected(self):
        registry = build()
        stmm = Stmm(registry)
        stmm.register_deterministic_tuner(FakeTuner(registry))
        with pytest.raises(ConfigurationError):
            stmm.register_deterministic_tuner(FakeTuner(registry))


class TestDeterministicTuning:
    def test_grow_to_target_uses_overflow_first(self):
        registry = build()  # overflow = 2,000
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        tuner = FakeTuner(registry, target=2_000)
        stmm.register_deterministic_tuner(tuner)
        stmm.tune(0.0)
        assert registry.heap("locklist").size_pages == 2_000
        assert tuner.grown == 1_000

    def test_grow_beyond_overflow_reclaims_donors(self):
        registry = build()  # overflow 2,000; sort is least needy donor
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        tuner = FakeTuner(registry, target=4_500)
        stmm.register_deterministic_tuner(tuner)
        stmm.tune(0.0)
        assert registry.heap("locklist").size_pages == 4_500
        # sort (lowest benefit) donated before bufferpool
        assert registry.heap("sort").size_pages < 2_000

    def test_shrink_releases_to_overflow_then_distributes(self):
        registry = build(locklist=3_000)
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        tuner = FakeTuner(registry, target=1_000)
        stmm.register_deterministic_tuner(tuner)
        stmm.tune(0.0)
        assert registry.heap("locklist").size_pages == 1_000
        assert tuner.shrunk == 2_000
        # surplus over the goal went to the neediest PMC (bufferpool)
        assert registry.overflow_pages == registry.overflow_goal_pages
        assert registry.heap("bufferpool").size_pages > 5_000

    def test_partial_physical_shrink_respected(self):
        registry = build(locklist=3_000)
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        tuner = FakeTuner(registry, target=1_000, shrink_achievable=0.5)
        stmm.register_deterministic_tuner(tuner)
        stmm.tune(0.0)
        assert registry.heap("locklist").size_pages == 2_000

    def test_hold_makes_no_change(self):
        registry = build()
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        tuner = FakeTuner(registry, target=None)
        stmm.register_deterministic_tuner(tuner)
        before = registry.heap("locklist").size_pages
        stmm.tune(0.0)
        assert registry.heap("locklist").size_pages == before

    def test_negative_target_rejected(self):
        registry = build()
        stmm = Stmm(registry)
        stmm.register_deterministic_tuner(FakeTuner(registry, target=-1))
        with pytest.raises(ConfigurationError):
            stmm.tune(0.0)

    def test_interval_end_hook_called(self):
        registry = build()
        stmm = Stmm(registry)
        tuner = FakeTuner(registry)
        stmm.register_deterministic_tuner(tuner)
        stmm.tune(0.0)
        stmm.tune(30.0)
        assert tuner.interval_ends == 2


class TestOverflowGoal:
    def test_deficit_restored_from_donors(self):
        registry = build(goal=3_000)  # overflow 2,000 -> deficit 1,000
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        stmm.tune(0.0)
        assert registry.overflow_pages == 3_000

    def test_surplus_distributed_to_neediest(self):
        registry = build(goal=500)  # overflow 2,000 -> surplus 1,500
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        stmm.tune(0.0)
        assert registry.overflow_pages == 500
        assert registry.heap("bufferpool").size_pages == 6_500


class TestPmcRebalance:
    def test_moves_from_low_to_high_benefit(self):
        registry = build(goal=2_000)  # overflow exactly at goal
        stmm = Stmm(
            registry,
            StmmConfig(pmc_rebalance_fraction=0.10, pmc_rebalance_threshold=1.1),
        )
        stmm.tune(0.0)
        # bufferpool benefit (2/page) > sort benefit (0.05/page): sort donates
        assert registry.heap("sort").size_pages == 1_800
        assert registry.heap("bufferpool").size_pages == 5_200

    def test_disabled_when_fraction_zero(self):
        registry = build(goal=2_000)
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        stmm.tune(0.0)
        assert registry.heap("sort").size_pages == 2_000


class TestAdaptiveInterval:
    def test_fixed_interval_by_default(self):
        registry = build()
        stmm = Stmm(registry, StmmConfig(interval_s=30))
        stmm.register_deterministic_tuner(FakeTuner(registry, target=2_000))
        stmm.tune(0.0)
        assert stmm.current_interval_s == 30

    def test_adaptive_shrinks_after_change_and_grows_when_quiet(self):
        registry = build()
        config = StmmConfig(
            interval_s=120, adaptive_interval=True,
            min_interval_s=30, max_interval_s=600,
            pmc_rebalance_fraction=0,
        )
        stmm = Stmm(registry, config)
        tuner = FakeTuner(registry, target=2_000)
        stmm.register_deterministic_tuner(tuner)
        stmm.tune(0.0)  # change happened -> halve
        assert stmm.current_interval_s == 60
        tuner.target = None
        registry.shrink_heap("bufferpool", registry.overflow_deficit_pages)
        # reach a quiet state: no deficit, no surplus, no target change
        stmm.tune(60.0)
        stmm.tune(120.0)
        assert stmm.current_interval_s > 60

    def test_run_process_tunes_on_schedule(self):
        env = Environment()
        registry = build()
        stmm = Stmm(registry, StmmConfig(interval_s=30, pmc_rebalance_fraction=0))
        env.process(stmm.run(env))
        env.run(until=100)
        assert len(stmm.reports) == 3
        assert [r.time for r in stmm.reports] == [30.0, 60.0, 90.0]


class TestReports:
    def test_actions_recorded(self):
        registry = build()
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        stmm.register_deterministic_tuner(FakeTuner(registry, target=2_000))
        report = stmm.tune(0.0)
        assert report.changed
        kinds = {a.kind for a in report.actions}
        assert "resize" in kinds
