"""Unit tests for the bufferpool hit-ratio model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.bufferpool import BufferpoolModel


class TestValidation:
    def test_bad_half_saturation(self):
        with pytest.raises(ConfigurationError):
            BufferpoolModel(half_saturation_pages=0)

    def test_bad_max_hit_ratio(self):
        with pytest.raises(ConfigurationError):
            BufferpoolModel(max_hit_ratio=1.5)

    def test_negative_costs(self):
        with pytest.raises(ConfigurationError):
            BufferpoolModel(miss_penalty_s=-1)


class TestHitRatio:
    def test_zero_size_zero_hits(self):
        assert BufferpoolModel().hit_ratio(0) == 0.0

    def test_half_saturation_point(self):
        model = BufferpoolModel(half_saturation_pages=10_000, max_hit_ratio=0.9)
        assert model.hit_ratio(10_000) == pytest.approx(0.45)

    def test_asymptote(self):
        model = BufferpoolModel(half_saturation_pages=100, max_hit_ratio=0.99)
        assert model.hit_ratio(10_000_000) == pytest.approx(0.99, abs=1e-4)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BufferpoolModel().hit_ratio(-1)

    @settings(max_examples=50, deadline=None)
    @given(a=st.integers(0, 10**7), b=st.integers(0, 10**7))
    def test_monotone_in_size(self, a, b):
        model = BufferpoolModel()
        lo, hi = sorted((a, b))
        assert model.hit_ratio(lo) <= model.hit_ratio(hi)


class TestAccessTime:
    def test_small_pool_costs_more(self):
        model = BufferpoolModel()
        assert model.page_access_time(1_000) > model.page_access_time(100_000)

    def test_bounds(self):
        model = BufferpoolModel(miss_penalty_s=0.004, hit_cost_s=0.00002)
        t = model.page_access_time(50_000)
        assert 0.00002 <= t <= 0.004


class TestMarginalBenefit:
    @settings(max_examples=50, deadline=None)
    @given(a=st.integers(0, 10**6), b=st.integers(0, 10**6))
    def test_strictly_decreasing(self, a, b):
        model = BufferpoolModel()
        lo, hi = sorted((a, b))
        if lo != hi:
            assert model.marginal_benefit(lo) > model.marginal_benefit(hi)

    def test_always_positive(self):
        model = BufferpoolModel()
        assert model.marginal_benefit(10**9) > 0

    def test_matches_numeric_derivative(self):
        model = BufferpoolModel()
        size = 40_000
        h = 10
        numeric = (
            model.page_access_time(size) - model.page_access_time(size + h)
        ) / h
        assert model.marginal_benefit(size) == pytest.approx(numeric, rel=1e-3)
