"""Unit tests for the database shared memory registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, MemoryAccountingError
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry


def make_registry(total=10_000, goal=500):
    return DatabaseMemoryRegistry(total_pages=total, overflow_goal_pages=goal)


class TestConstruction:
    def test_invalid_total_rejected(self):
        with pytest.raises(ConfigurationError):
            DatabaseMemoryRegistry(total_pages=0)

    def test_goal_above_total_rejected(self):
        with pytest.raises(ConfigurationError):
            DatabaseMemoryRegistry(total_pages=10, overflow_goal_pages=20)

    def test_default_goal_is_two_percent(self):
        registry = DatabaseMemoryRegistry(total_pages=10_000)
        assert registry.overflow_goal_pages == 200

    def test_everything_starts_in_overflow(self):
        registry = make_registry()
        assert registry.overflow_pages == 10_000


class TestRegistration:
    def test_register_carves_from_overflow(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 4_000))
        assert registry.overflow_pages == 6_000

    def test_duplicate_name_rejected(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 100))
        with pytest.raises(ConfigurationError):
            registry.register(MemoryHeap("a", HeapCategory.PMC, 100))

    def test_oversubscription_rejected(self):
        registry = make_registry()
        with pytest.raises(ConfigurationError):
            registry.register(MemoryHeap("a", HeapCategory.PMC, 10_001))

    def test_unknown_heap_lookup_lists_known(self):
        registry = make_registry()
        registry.register(MemoryHeap("known", HeapCategory.PMC, 10))
        with pytest.raises(KeyError, match="known"):
            registry.heap("missing")

    def test_contains(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 10))
        assert "a" in registry
        assert "b" not in registry


class TestGrowShrink:
    def test_grow_takes_from_overflow(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 1_000))
        granted = registry.grow_heap("a", 500)
        assert granted == 500
        assert registry.heap("a").size_pages == 1_500
        assert registry.overflow_pages == 8_500

    def test_grow_beyond_overflow_raises_without_partial(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 9_000))
        with pytest.raises(MemoryAccountingError):
            registry.grow_heap("a", 2_000)

    def test_grow_partial_clips(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 9_000))
        assert registry.grow_heap("a", 2_000, partial=True) == 1_000
        assert registry.overflow_pages == 0

    def test_grow_respects_heap_max(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 100, max_pages=150))
        assert registry.grow_heap("a", 500, partial=True) == 50

    def test_shrink_returns_to_overflow(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 1_000))
        assert registry.shrink_heap("a", 400) == 400
        assert registry.overflow_pages == 9_400

    def test_shrink_respects_min_without_partial(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 1_000, min_pages=800))
        with pytest.raises(MemoryAccountingError):
            registry.shrink_heap("a", 400)
        assert registry.shrink_heap("a", 400, partial=True) == 200

    def test_negative_amounts_rejected(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 100))
        with pytest.raises(ValueError):
            registry.grow_heap("a", -1)
        with pytest.raises(ValueError):
            registry.shrink_heap("a", -1)


class TestTransfer:
    def test_transfer_moves_pages(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 1_000))
        registry.register(MemoryHeap("b", HeapCategory.PMC, 1_000))
        overflow_before = registry.overflow_pages
        assert registry.transfer("a", "b", 300) == 300
        assert registry.heap("a").size_pages == 700
        assert registry.heap("b").size_pages == 1_300
        assert registry.overflow_pages == overflow_before

    def test_self_transfer_rejected(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 100))
        with pytest.raises(ValueError):
            registry.transfer("a", "a", 1)

    def test_transfer_partial_clips_on_donor_min(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 500, min_pages=400))
        registry.register(MemoryHeap("b", HeapCategory.PMC, 100))
        assert registry.transfer("a", "b", 300, partial=True) == 100


class TestDonorsReceivers:
    def _registry_with_benefits(self):
        registry = make_registry()
        registry.register(
            MemoryHeap("low", HeapCategory.PMC, 1_000, benefit=lambda h: 1.0)
        )
        registry.register(
            MemoryHeap("high", HeapCategory.PMC, 1_000, benefit=lambda h: 10.0)
        )
        registry.register(MemoryHeap("fmc", HeapCategory.FMC, 1_000))
        return registry

    def test_donors_sorted_least_needy_first(self):
        registry = self._registry_with_benefits()
        assert [h.name for h in registry.pmc_donors()] == ["low", "high"]

    def test_receivers_sorted_most_needy_first(self):
        registry = self._registry_with_benefits()
        assert [h.name for h in registry.pmc_receivers()] == ["high", "low"]

    def test_fmc_never_a_donor_or_receiver(self):
        registry = self._registry_with_benefits()
        names = {h.name for h in registry.pmc_donors()}
        names |= {h.name for h in registry.pmc_receivers()}
        assert "fmc" not in names

    def test_exclude_filters(self):
        registry = self._registry_with_benefits()
        assert [h.name for h in registry.pmc_donors(exclude=["low"])] == ["high"]

    def test_reclaim_from_donors_least_needy_first(self):
        registry = self._registry_with_benefits()
        reclaimed = registry.reclaim_from_donors(1_500)
        assert reclaimed == 1_500
        assert registry.heap("low").size_pages == 0
        assert registry.heap("high").size_pages == 500

    def test_reclaim_clips_at_donor_minimums(self):
        registry = make_registry()
        registry.register(
            MemoryHeap("a", HeapCategory.PMC, 1_000, min_pages=900)
        )
        assert registry.reclaim_from_donors(500) == 100


class TestShortfallPaths:
    """Under-budget shortfalls: exact clip amounts and strict raises."""

    def test_transfer_shortfall_raises_without_partial(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 500, min_pages=400))
        registry.register(MemoryHeap("b", HeapCategory.PMC, 100))
        with pytest.raises(MemoryAccountingError, match="transfer"):
            registry.transfer("a", "b", 300)
        # the failed transfer moved nothing
        assert registry.heap("a").size_pages == 500
        assert registry.heap("b").size_pages == 100

    def test_transfer_clips_on_receiver_max(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 500))
        registry.register(
            MemoryHeap("b", HeapCategory.PMC, 100, max_pages=150)
        )
        with pytest.raises(MemoryAccountingError):
            registry.transfer("a", "b", 300)
        assert registry.transfer("a", "b", 300, partial=True) == 50

    def test_grow_clipped_by_overflow_and_heap_max_together(self):
        registry = make_registry(total=1_000)
        registry.register(
            MemoryHeap("a", HeapCategory.PMC, 900, max_pages=950)
        )
        registry.register(MemoryHeap("b", HeapCategory.PMC, 80))
        # overflow 20, headroom 50: overflow binds
        assert registry.grow_heap("a", 100, partial=True) == 20

    def test_grow_zero_available_partial_grants_nothing(self):
        registry = make_registry(total=100, goal=10)
        registry.register(MemoryHeap("a", HeapCategory.PMC, 100))
        registry.register(MemoryHeap("b", HeapCategory.PMC, 0))
        assert registry.grow_heap("b", 10, partial=True) == 0
        with pytest.raises(MemoryAccountingError):
            registry.grow_heap("b", 10)

    def test_resize_total_shrink_shortfall(self):
        registry = make_registry(total=1_000)
        registry.register(MemoryHeap("a", HeapCategory.PMC, 900))
        with pytest.raises(MemoryAccountingError, match="databaseMemory"):
            registry.resize_total(500)
        # partial releases only the unassigned overflow
        assert registry.resize_total(500, partial=True) == 900
        assert registry.overflow_pages == 0

    def test_oversubscription_detected_by_overflow_property(self):
        registry = make_registry(total=100, goal=10)
        heap = registry.register(MemoryHeap("a", HeapCategory.PMC, 100))
        heap._size_pages += 1  # corrupt accounting behind the registry
        with pytest.raises(MemoryAccountingError, match="oversubscribe"):
            _ = registry.overflow_pages
        with pytest.raises(MemoryAccountingError):
            registry.snapshot()

    def test_reclaim_shortfall_reports_achieved_pages(self):
        registry = make_registry()
        registry.register(
            MemoryHeap("a", HeapCategory.PMC, 1_000, min_pages=950)
        )
        registry.register(
            MemoryHeap("b", HeapCategory.PMC, 500, min_pages=500)
        )
        assert registry.reclaim_from_donors(200) == 50


class TestInvariant:
    def test_snapshot_sums_to_total(self):
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 3_000))
        registry.register(MemoryHeap("b", HeapCategory.FMC, 2_000))
        registry.grow_heap("a", 123)
        registry.shrink_heap("b", 45)
        snapshot = registry.snapshot()
        assert sum(snapshot.values()) == registry.total_pages

    def test_deficit_and_surplus(self):
        registry = make_registry(total=1_000, goal=300)
        registry.register(MemoryHeap("a", HeapCategory.PMC, 800))
        assert registry.overflow_pages == 200
        assert registry.overflow_deficit_pages == 100
        assert registry.overflow_surplus_pages == 0
        registry.shrink_heap("a", 300)
        assert registry.overflow_deficit_pages == 0
        assert registry.overflow_surplus_pages == 200

    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["grow", "shrink", "transfer"]),
                st.integers(min_value=0, max_value=2_000),
            ),
            max_size=40,
        )
    )
    def test_random_ops_preserve_total(self, ops):
        """Property: no operation sequence changes total accounted pages."""
        registry = make_registry()
        registry.register(MemoryHeap("a", HeapCategory.PMC, 2_000))
        registry.register(MemoryHeap("b", HeapCategory.PMC, 2_000))
        for op, amount in ops:
            if op == "grow":
                registry.grow_heap("a", amount, partial=True)
            elif op == "shrink":
                registry.shrink_heap("a", amount, partial=True)
            else:
                registry.transfer("a", "b", amount, partial=True)
            assert sum(registry.snapshot().values()) == registry.total_pages
