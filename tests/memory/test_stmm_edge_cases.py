"""Edge-case tests for STMM redistribution paths."""

import pytest

from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig


class GreedyTuner:
    """Deterministic tuner that always wants everything it can get."""

    heap_name = "locklist"

    def __init__(self, registry, target):
        self.registry = registry
        self.target = target

    def compute_target_pages(self):
        return self.target

    def grow_physical(self, pages):
        return pages

    def shrink_physical(self, pages):
        return pages

    def on_interval_end(self, now):
        pass


def build(total=10_000, goal=500, bufferpool_min=1_000):
    registry = DatabaseMemoryRegistry(total, overflow_goal_pages=goal)
    registry.register(
        MemoryHeap("bufferpool", HeapCategory.PMC, 6_000,
                   min_pages=bufferpool_min,
                   benefit=lambda h: 1_000.0 / h.size_pages)
    )
    registry.register(MemoryHeap("locklist", HeapCategory.FMC, 1_000))
    return registry


class TestPartialGrants:
    def test_growth_clipped_when_donors_exhausted(self):
        """Target beyond what overflow + donors can fund: the heap gets
        everything available, nothing more, and accounting balances."""
        registry = build()
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        stmm.register_deterministic_tuner(GreedyTuner(registry, target=50_000))
        stmm.tune(0.0)
        # everything except the bufferpool's minimum was handed over
        assert registry.heap("bufferpool").size_pages == 1_000
        assert registry.heap("locklist").size_pages == 9_000
        assert registry.overflow_pages == 0
        assert sum(registry.snapshot().values()) == registry.total_pages

    def test_overflow_restore_clipped_at_donor_minimums(self):
        registry = build(goal=9_500)  # unreachable goal
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        stmm.tune(0.0)
        assert registry.heap("bufferpool").size_pages == 1_000
        assert registry.overflow_pages == 8_000  # the best achievable

    def test_greedy_tuner_competes_with_overflow_goal(self):
        """Deterministic heaps are funded first; the overflow goal then
        takes what remains from the donors."""
        registry = build(goal=2_000)
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        stmm.register_deterministic_tuner(GreedyTuner(registry, target=6_000))
        stmm.tune(0.0)
        locklist = registry.heap("locklist").size_pages
        assert locklist == 6_000  # tuner satisfied first
        assert registry.overflow_pages == 2_000  # then the goal
        assert registry.heap("bufferpool").size_pages == 2_000

    def test_repeated_tuning_is_stable_at_the_clip(self):
        registry = build()
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        stmm.register_deterministic_tuner(GreedyTuner(registry, target=50_000))
        for t in range(5):
            stmm.tune(float(t * 30))
        snapshot_a = registry.snapshot()
        stmm.tune(999.0)
        assert registry.snapshot() == snapshot_a  # no oscillation


class TestReceiverDistribution:
    def test_surplus_split_across_receivers_with_caps(self):
        registry = DatabaseMemoryRegistry(10_000, overflow_goal_pages=100)
        registry.register(
            MemoryHeap("a", HeapCategory.PMC, 1_000, max_pages=1_200,
                       benefit=lambda h: 10.0)
        )
        registry.register(
            MemoryHeap("b", HeapCategory.PMC, 1_000,
                       benefit=lambda h: 1.0)
        )
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
        stmm.tune(0.0)
        # the needier receiver filled to its cap; the rest went to b
        assert registry.heap("a").size_pages == 1_200
        assert registry.heap("b").size_pages == 10_000 - 1_200 - 100
        assert registry.overflow_pages == 100
