"""Tests for the hash join heap model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.hashjoin import HashJoinModel


class TestValidation:
    def test_bad_row_bytes(self):
        with pytest.raises(ConfigurationError):
            HashJoinModel(row_bytes=0)

    def test_bad_ratio(self):
        with pytest.raises(ConfigurationError):
            HashJoinModel(probe_to_build_ratio=0)

    def test_bad_inputs(self):
        model = HashJoinModel()
        with pytest.raises(ValueError):
            model.build_pages(-1)
        with pytest.raises(ValueError):
            model.partitioning_levels(10, 0)


class TestPartitioning:
    def test_in_memory_join_no_levels(self):
        model = HashJoinModel(row_bytes=64)
        assert model.partitioning_levels(build_rows=6_000, heap_pages=100) == 0

    def test_spill_at_least_one_level(self):
        model = HashJoinModel(row_bytes=64)
        assert model.partitioning_levels(64_000, 100) >= 1

    def test_tiny_heap_recursive_partitioning(self):
        model = HashJoinModel(row_bytes=64)
        small = model.partitioning_levels(5_000_000, 5)
        big = model.partitioning_levels(5_000_000, 2_000)
        assert small > big


class TestJoinTime:
    def test_zero_build_is_free(self):
        assert HashJoinModel().join_time(0, 100) == 0.0

    def test_spill_costs_more(self):
        model = HashJoinModel(row_bytes=64)
        rows = 64_000
        assert model.join_time(rows, 100) > 2 * model.join_time(rows, 2_000)

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(1, 3_000_000),
        small=st.integers(2, 500),
        extra=st.integers(1, 4_000),
    )
    def test_monotone_in_heap(self, rows, small, extra):
        model = HashJoinModel()
        assert model.join_time(rows, small) >= model.join_time(rows, small + extra)

    def test_probe_ratio_scales_spill_cost(self):
        cheap = HashJoinModel(probe_to_build_ratio=1.0)
        costly = HashJoinModel(probe_to_build_ratio=10.0)
        rows = 500_000
        assert costly.join_time(rows, 100) > cheap.join_time(rows, 100)


class TestMarginalBenefit:
    def test_zero_without_joins(self):
        assert HashJoinModel().marginal_benefit(1_000, 0) == 0.0

    def test_zero_when_build_fits(self):
        model = HashJoinModel(row_bytes=64)
        assert model.marginal_benefit(10_000, typical_build_rows=1_000) == 0.0

    def test_positive_when_spilling(self):
        model = HashJoinModel(row_bytes=64)
        assert model.marginal_benefit(100, typical_build_rows=640_000) > 0

    def test_database_integration(self):
        from tests.conftest import make_database

        db = make_database()
        heap = db.registry.heap("hashjoin")
        assert heap.benefit() == 0.0
        db.hash_join_time(3_000_000)
        db.hash_join_time(3_000_000)
        assert heap.benefit() > 0.0
