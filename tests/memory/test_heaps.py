"""Unit tests for memory heaps."""

import pytest

from repro.errors import ConfigurationError, MemoryAccountingError
from repro.memory.heaps import HeapCategory, MemoryHeap


class TestValidation:
    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryHeap("h", HeapCategory.PMC, size_pages=-1)

    def test_size_below_min_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryHeap("h", HeapCategory.PMC, size_pages=10, min_pages=20)

    def test_size_above_max_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryHeap("h", HeapCategory.PMC, size_pages=30, max_pages=20)

    def test_max_below_min_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryHeap("h", HeapCategory.PMC, size_pages=5, min_pages=10, max_pages=5)


class TestCategories:
    def test_pmc_flags(self):
        heap = MemoryHeap("bp", HeapCategory.PMC, 100)
        assert heap.is_pmc and not heap.is_fmc

    def test_fmc_flags(self):
        heap = MemoryHeap("locklist", HeapCategory.FMC, 100)
        assert heap.is_fmc and not heap.is_pmc


class TestResize:
    def test_headroom_and_shrinkable(self):
        heap = MemoryHeap("h", HeapCategory.PMC, 100, min_pages=40, max_pages=150)
        assert heap.headroom_pages() == 50
        assert heap.shrinkable_pages() == 60

    def test_unbounded_headroom_is_huge(self):
        heap = MemoryHeap("h", HeapCategory.PMC, 100)
        assert heap.headroom_pages() > 10**15

    def test_apply_resize_respects_bounds(self):
        heap = MemoryHeap("h", HeapCategory.PMC, 100, min_pages=40, max_pages=150)
        heap._apply_resize(50)
        assert heap.size_pages == 150
        with pytest.raises(MemoryAccountingError):
            heap._apply_resize(1)
        heap._apply_resize(-110)
        assert heap.size_pages == 40
        with pytest.raises(MemoryAccountingError):
            heap._apply_resize(-1)


class TestBenefit:
    def test_default_benefit_zero(self):
        assert MemoryHeap("h", HeapCategory.PMC, 100).benefit() == 0.0

    def test_benefit_callable_receives_heap(self):
        heap = MemoryHeap(
            "h", HeapCategory.PMC, 200, benefit=lambda h: 1000.0 / h.size_pages
        )
        assert heap.benefit() == pytest.approx(5.0)

    def test_repr_mentions_name_and_size(self):
        heap = MemoryHeap("sort", HeapCategory.PMC, 123)
        assert "sort" in repr(heap)
        assert "123" in repr(heap)
