"""Tests for the sort heap performance model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memory.sortheap import SortHeapModel


class TestValidation:
    def test_bad_row_bytes(self):
        with pytest.raises(ConfigurationError):
            SortHeapModel(row_bytes=0)

    def test_negative_costs(self):
        with pytest.raises(ConfigurationError):
            SortHeapModel(cpu_time_per_row_s=-1)

    def test_bad_inputs(self):
        model = SortHeapModel()
        with pytest.raises(ValueError):
            model.data_pages(-1)
        with pytest.raises(ValueError):
            model.merge_passes(10, 0)


class TestMergePasses:
    def test_in_memory_sort_no_passes(self):
        model = SortHeapModel(row_bytes=64)  # 64 rows/page
        assert model.merge_passes(rows=6_000, heap_pages=100) == 0

    def test_spill_needs_at_least_one_pass(self):
        model = SortHeapModel(row_bytes=64)
        assert model.merge_passes(rows=64_000, heap_pages=100) >= 1

    def test_more_heap_fewer_passes(self):
        model = SortHeapModel(row_bytes=64)
        rows = 10_000_000
        assert model.merge_passes(rows, 10) > model.merge_passes(rows, 1_000)


class TestSortTime:
    def test_zero_rows_is_free(self):
        assert SortHeapModel().sort_time(0, 100) == 0.0

    def test_spilling_costs_more(self):
        model = SortHeapModel(row_bytes=64)
        rows = 64_000  # 1000 pages of data
        fast = model.sort_time(rows, heap_pages=2_000)  # fits
        slow = model.sort_time(rows, heap_pages=100)  # spills
        assert slow > 2 * fast

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(1, 5_000_000),
        small=st.integers(2, 500),
        extra=st.integers(1, 5_000),
    )
    def test_monotone_in_heap_size(self, rows, small, extra):
        model = SortHeapModel()
        assert model.sort_time(rows, small) >= model.sort_time(rows, small + extra)


class TestMarginalBenefit:
    def test_zero_without_sorting_workload(self):
        assert SortHeapModel().marginal_benefit(1_000, 0) == 0.0

    def test_zero_when_sort_already_fits(self):
        model = SortHeapModel(row_bytes=64)
        assert model.marginal_benefit(10_000, typical_sort_rows=1_000) == 0.0

    def test_positive_when_spilling(self):
        model = SortHeapModel(row_bytes=64)
        assert model.marginal_benefit(100, typical_sort_rows=640_000) > 0

    def test_never_negative(self):
        model = SortHeapModel()
        for heap in (10, 100, 1_000, 10_000):
            for rows in (0, 100, 100_000, 10_000_000):
                assert model.marginal_benefit(heap, rows) >= 0


class TestDatabaseIntegration:
    def test_sort_time_tracks_heap_size(self):
        from tests.conftest import make_database

        db = make_database()
        rows = 500_000
        time_with_full_heap = db.sort_time(rows)
        db.registry.shrink_heap("sort", db.registry.heap("sort").size_pages - 256)
        time_with_tiny_heap = db.sort_time(rows)
        assert time_with_tiny_heap > time_with_full_heap

    def test_sorting_raises_sort_heap_benefit(self):
        from tests.conftest import make_database

        db = make_database()
        sort_heap = db.registry.heap("sort")
        assert sort_heap.benefit() == 0.0  # no sorts yet: willing donor
        for _ in range(5):
            db.sort_time(5_000_000)  # far larger than the heap
        assert sort_heap.benefit() > 0.0  # now a demanding receiver

    def test_dss_query_with_sort_phase_runs_longer(self):
        from repro.workloads.dss import ReportingQuery
        from tests.conftest import make_database

        def run(sort_rows):
            db = make_database(seed=8)
            query = ReportingQuery(
                db, start_time_s=1, row_count=2_000,
                acquisition_duration_s=2, hold_duration_s=1,
                sort_rows=sort_rows,
            )
            query.start()
            db.run(until=600)
            assert query.result is not None and query.result.completed
            return query.result.finished_at - query.result.started_at

        assert run(sort_rows=2_000_000) > run(sort_rows=None)
