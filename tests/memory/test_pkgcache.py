"""Tests for the package cache (compiled statement cache) model."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.pkgcache import PackageCacheModel


class TestValidation:
    def test_bad_pages_per_statement(self):
        with pytest.raises(ConfigurationError):
            PackageCacheModel(pages_per_statement=0)

    def test_bad_skew(self):
        with pytest.raises(ConfigurationError):
            PackageCacheModel(zipf_skew=1.0)

    def test_negative_cache_rejected(self):
        with pytest.raises(ValueError):
            PackageCacheModel().cached_statements(-1)


class TestHitCurve:
    def test_zero_cache_zero_hits(self):
        model = PackageCacheModel()
        assert model.hit_ratio(0) == 0.0
        assert model.compile_overhead_s(0) == model.compile_time_s

    def test_full_working_set_always_hits(self):
        model = PackageCacheModel(
            pages_per_statement=8, distinct_statements=100
        )
        assert model.hit_ratio(800) == 1.0
        assert model.compile_overhead_s(800) == 0.0

    def test_concave_skewed_curve(self):
        """A small cache over a skewed workload captures most hits."""
        model = PackageCacheModel(
            pages_per_statement=8, distinct_statements=1_000, zipf_skew=0.8
        )
        tenth = model.hit_ratio(8 * 100)  # caches 10% of statements
        assert tenth > 0.6  # far more than 10% of executions

    def test_monotone_in_size(self):
        model = PackageCacheModel()
        sizes = [0, 100, 500, 1_000, 4_000, 10_000]
        ratios = [model.hit_ratio(s) for s in sizes]
        assert ratios == sorted(ratios)

    def test_no_skew_uniform_coverage(self):
        model = PackageCacheModel(
            pages_per_statement=1, distinct_statements=100, zipf_skew=0.01
        )
        assert model.hit_ratio(50) == pytest.approx(0.5, abs=0.02)


class TestMarginalBenefit:
    def test_zero_once_working_set_cached(self):
        model = PackageCacheModel(
            pages_per_statement=8, distinct_statements=100
        )
        assert model.marginal_benefit(800) == 0.0

    def test_positive_below_working_set(self):
        model = PackageCacheModel(
            pages_per_statement=8, distinct_statements=1_000
        )
        assert model.marginal_benefit(400) > 0

    def test_database_integration(self):
        from repro.engine.database import DatabaseConfig
        from tests.conftest import make_database

        # a plan working set that fits the small test database's cache
        config_model = PackageCacheModel(
            pages_per_statement=8, distinct_statements=50
        )
        db = make_database(pkgcache_model=config_model)
        # the default cache (4% of 16,384 = 655 pages) holds all 400
        # working-set pages: no overhead, willing donor
        assert db.statement_compile_time() == 0.0
        heap = db.registry.heap("pkgcache")
        assert heap.benefit() == 0.0
        # shrink it below the working set: overhead and benefit appear
        db.registry.shrink_heap("pkgcache", heap.size_pages - 300)
        assert db.statement_compile_time() > 0.0
        assert heap.benefit() > 0.0
