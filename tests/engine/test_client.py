"""Tests for clients and the client pool."""

import pytest

from repro.engine.client import Client, ClientPool
from repro.engine.transactions import TransactionMix
from tests.conftest import make_database

FAST_MIX = TransactionMix(
    locks_per_txn_mean=5,
    think_time_mean_s=0.05,
    work_time_per_lock_s=0.001,
    num_tables=2,
    rows_per_table=10_000,
)

CONTENDED_MIX = TransactionMix(
    locks_per_txn_mean=8,
    write_fraction=1.0,
    update_lock_fraction=0.0,
    think_time_mean_s=0.01,
    work_time_per_lock_s=0.02,
    num_tables=1,
    rows_per_table=10,  # tiny namespace -> heavy conflicts
)


class TestClient:
    def test_client_commits_transactions(self):
        db = make_database(seed=1)
        client = Client(db, db.next_app_id(), FAST_MIX)
        db.env.process(client.run())
        db.run(until=30)
        assert client.stats.commits > 10
        assert db.commits == client.stats.commits

    def test_client_registers_and_deregisters(self):
        db = make_database(seed=1)
        client = Client(db, db.next_app_id(), FAST_MIX)
        db.env.process(client.run())
        db.run(until=5)
        assert db.connected_applications() == 1
        client.stop()
        db.env.run(until=20)
        assert db.connected_applications() == 0

    def test_stopped_client_releases_locks(self):
        db = make_database(seed=2)
        client = Client(db, db.next_app_id(), FAST_MIX)
        db.env.process(client.run())
        db.run(until=5)
        client.stop()
        db.env.run(until=20)
        assert db.lock_manager.app_slots(client.app_id) == 0

    def test_deadlocks_roll_back_and_continue(self):
        db = make_database(seed=3)
        clients = [
            Client(db, db.next_app_id(), CONTENDED_MIX) for _ in range(4)
        ]
        for client in clients:
            db.env.process(client.run())
        db.run(until=60)
        total_deadlocks = sum(c.stats.deadlocks for c in clients)
        total_commits = sum(c.stats.commits for c in clients)
        assert total_deadlocks > 0  # contention really happened
        assert total_commits > 0  # and progress continued
        assert db.rollbacks == sum(c.stats.rollbacks for c in clients)
        db.check_invariants()


class TestClientPool:
    def test_set_target_grows(self):
        db = make_database(seed=4)
        pool = ClientPool(db, FAST_MIX)
        pool.set_target(5)
        db.run(until=2)
        assert pool.active_count == 5
        assert db.connected_applications() == 5

    def test_set_target_shrinks_newest_first(self):
        db = make_database(seed=4)
        pool = ClientPool(db, FAST_MIX)
        pool.set_target(5)
        db.run(until=2)
        pool.set_target(2)
        db.env.run(until=30)
        assert pool.active_count == 2
        assert db.connected_applications() == 2
        surviving = [c.app_id for c in pool.clients if c.active]
        assert surviving == sorted(surviving)[:2]

    def test_negative_target_rejected(self):
        db = make_database(seed=4)
        pool = ClientPool(db, FAST_MIX)
        with pytest.raises(ValueError):
            pool.set_target(-1)

    def test_totals_aggregate(self):
        db = make_database(seed=5)
        pool = ClientPool(db, FAST_MIX)
        pool.set_target(3)
        db.run(until=20)
        assert pool.total_commits() == db.commits
