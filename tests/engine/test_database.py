"""Tests for the wired database instance."""

import pytest

from repro.core.policy import AdaptiveLockMemoryPolicy
from repro.engine.database import Database, DatabaseConfig
from repro.errors import ConfigurationError
from repro.units import PAGES_PER_BLOCK
from tests.conftest import make_database


class TestConfigValidation:
    def test_oversubscribed_heaps_rejected(self):
        with pytest.raises(ConfigurationError):
            DatabaseConfig(bufferpool_fraction=0.95, sort_fraction=0.10)

    def test_tiny_locklist_rejected(self):
        with pytest.raises(ConfigurationError):
            DatabaseConfig(initial_locklist_pages=10)

    def test_zero_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            DatabaseConfig(total_memory_pages=0)


class TestAssembly:
    def test_heaps_registered(self):
        db = make_database()
        for name in ("bufferpool", "sort", "hashjoin", "pkgcache", "locklist"):
            assert name in db.registry

    def test_locklist_heap_matches_chain(self):
        db = make_database(initial_locklist_pages=130)  # rounds to 160
        assert db.registry.heap("locklist").size_pages == db.chain.allocated_pages
        assert db.chain.allocated_pages % PAGES_PER_BLOCK == 0

    def test_memory_invariant_holds(self):
        db = make_database()
        assert sum(db.registry.snapshot().values()) == db.registry.total_pages

    def test_default_policy_is_adaptive(self):
        db = Database(config=DatabaseConfig(total_memory_pages=16_384))
        assert isinstance(db.policy, AdaptiveLockMemoryPolicy)

    def test_app_id_allocation_monotonic(self):
        db = make_database()
        ids = [db.next_app_id() for _ in range(5)]
        assert ids == sorted(set(ids))


class TestApplications:
    def test_register_deregister(self):
        db = make_database()
        db.register_application(7)
        db.register_application(8)
        assert db.connected_applications() == 2
        db.deregister_application(7)
        assert db.connected_applications() == 1
        db.deregister_application(99)  # unknown: no-op
        assert db.connected_applications() == 1


class TestPerformanceModel:
    def test_smaller_bufferpool_slower_access(self):
        db = make_database()
        fast = db.row_access_time()
        db.registry.shrink_heap("bufferpool", 5_000)
        slow = db.row_access_time()
        assert slow > fast

    def test_memoization_tracks_size_changes(self):
        db = make_database()
        first = db.row_access_time()
        assert db.row_access_time() == first  # cached
        db.registry.grow_heap("bufferpool", 1_000)
        assert db.row_access_time() < first  # recomputed


class TestLifecycle:
    def test_start_twice_rejected(self):
        db = make_database()
        db.start()
        with pytest.raises(ConfigurationError):
            db.start()

    def test_run_starts_implicitly(self):
        db = make_database()
        db.run(until=3)
        assert db.env.now == 3

    def test_sampler_records_all_probes(self):
        db = make_database()
        db.run(until=5)
        for name in db.probes():
            assert name in db.metrics
            assert len(db.metrics[name]) >= 5

    def test_stmm_runs_on_interval(self):
        db = make_database()
        db.run(until=95)
        assert len(db.stmm.reports) == 3  # t=30, 60, 90

    def test_check_invariants_clean_run(self):
        db = make_database(seed=6)
        db.run(until=10)
        db.check_invariants()
