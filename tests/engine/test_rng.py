"""Unit tests for deterministic random-stream management."""

from repro.engine.rng import RngStreams


class TestRngStreams:
    def test_same_name_same_stream_object(self):
        streams = RngStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RngStreams(42).stream("client-1")
        b = RngStreams(42).stream("client-1")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_independent(self):
        streams = RngStreams(42)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random()
        b = RngStreams(2).stream("x").random()
        assert a != b

    def test_variance_isolation(self):
        """Adding a new consumer must not perturb existing streams."""
        base = RngStreams(7)
        before = [base.stream("oltp").random() for _ in range(5)]

        other = RngStreams(7)
        other.stream("dss")  # extra consumer created first
        after = [other.stream("oltp").random() for _ in range(5)]
        assert before == after

    def test_spawn_children_independent(self):
        parent = RngStreams(3)
        child_a = parent.spawn("a")
        child_b = parent.spawn("b")
        assert child_a.seed != child_b.seed
        assert child_a.stream("x").random() != child_b.stream("x").random()

    def test_spawn_reproducible(self):
        assert RngStreams(3).spawn("a").seed == RngStreams(3).spawn("a").seed

    def test_repr_lists_streams(self):
        streams = RngStreams(1)
        streams.stream("zeta")
        streams.stream("alpha")
        assert "alpha" in repr(streams)
        assert "seed=1" in repr(streams)
