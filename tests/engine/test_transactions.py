"""Tests for the transaction mix and its draws."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.transactions import RowAccess, TransactionMix, scaled
from repro.errors import ConfigurationError
from repro.lockmgr.modes import LockMode


class TestValidation:
    def test_mean_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            TransactionMix(locks_per_txn_mean=0.5)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            TransactionMix(write_fraction=1.5)

    def test_zero_tables_rejected(self):
        with pytest.raises(ConfigurationError):
            TransactionMix(num_tables=0)

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigurationError):
            TransactionMix(think_time_mean_s=-1)


class TestDraws:
    def test_lock_count_at_least_one(self):
        mix = TransactionMix(locks_per_txn_mean=5)
        rng = random.Random(1)
        assert all(mix.draw_lock_count(rng) >= 1 for _ in range(500))

    def test_lock_count_mean_approximates_parameter(self):
        mix = TransactionMix(locks_per_txn_mean=20)
        rng = random.Random(42)
        draws = [mix.draw_lock_count(rng) for _ in range(5_000)]
        assert sum(draws) / len(draws) == pytest.approx(20, rel=0.1)

    def test_mean_one_is_constant(self):
        mix = TransactionMix(locks_per_txn_mean=1)
        rng = random.Random(0)
        assert {mix.draw_lock_count(rng) for _ in range(50)} == {1}

    def test_access_within_namespace(self):
        mix = TransactionMix(num_tables=3, rows_per_table=100)
        rng = random.Random(7)
        for _ in range(500):
            access = mix.draw_access(rng)
            assert 0 <= access.table_id < 3
            assert 0 <= access.row_id < 100

    def test_write_fraction_zero_is_all_reads(self):
        mix = TransactionMix(write_fraction=0.0)
        rng = random.Random(7)
        assert all(
            mix.draw_access(rng).mode is LockMode.S for _ in range(200)
        )

    def test_write_fraction_one_is_all_writes(self):
        mix = TransactionMix(write_fraction=1.0, update_lock_fraction=0.0)
        rng = random.Random(7)
        assert all(
            mix.draw_access(rng).mode is LockMode.X for _ in range(200)
        )

    def test_update_lock_fraction_yields_u_mode(self):
        mix = TransactionMix(write_fraction=1.0, update_lock_fraction=1.0)
        rng = random.Random(7)
        assert all(
            mix.draw_access(rng).mode is LockMode.U for _ in range(100)
        )

    def test_hot_set_concentrates_accesses(self):
        mix = TransactionMix(
            rows_per_table=1_000_000,
            hot_row_fraction=0.0001,
            hot_access_probability=0.5,
        )
        rng = random.Random(3)
        hot_rows = 100
        hits = sum(
            1 for _ in range(2_000) if mix.draw_access(rng).row_id < hot_rows
        )
        assert hits / 2_000 == pytest.approx(0.5, abs=0.08)

    def test_think_time_zero(self):
        mix = TransactionMix(think_time_mean_s=0)
        assert mix.draw_think_time(random.Random(1)) == 0.0

    def test_think_time_mean(self):
        mix = TransactionMix(think_time_mean_s=2.0)
        rng = random.Random(11)
        draws = [mix.draw_think_time(rng) for _ in range(5_000)]
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.1)

    def test_transaction_reproducible_per_seed(self):
        mix = TransactionMix()
        a = mix.draw_transaction(random.Random(5))
        b = mix.draw_transaction(random.Random(5))
        assert a == b

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_draws_always_valid(self, seed):
        mix = TransactionMix(num_tables=4, rows_per_table=50)
        rng = random.Random(seed)
        txn = mix.draw_transaction(rng)
        assert 1 <= len(txn) <= 100_000
        for access in txn:
            assert isinstance(access, RowAccess)
            assert access.mode in (LockMode.S, LockMode.U, LockMode.X)


class TestScaled:
    def test_scaled_overrides_fields(self):
        base = TransactionMix(write_fraction=0.3)
        derived = scaled(base, write_fraction=0.9)
        assert derived.write_fraction == 0.9
        assert derived.locks_per_txn_mean == base.locks_per_txn_mean
