"""Unit tests for time-series recording."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.des import Environment
from repro.engine.metrics import MetricsRecorder, TimeSeries, sampled


class TestTimeSeries:
    def test_append_and_len(self):
        s = TimeSeries("x")
        s.append(0, 1.0)
        s.append(1, 2.0)
        assert len(s) == 2
        assert list(s) == [(0.0, 1.0), (1.0, 2.0)]

    def test_non_monotonic_time_rejected(self):
        s = TimeSeries("x")
        s.append(5, 1.0)
        with pytest.raises(ValueError):
            s.append(4, 2.0)

    def test_equal_times_allowed(self):
        s = TimeSeries("x")
        s.append(1, 1.0)
        s.append(1, 2.0)
        assert len(s) == 2

    def test_last_and_empty_errors(self):
        s = TimeSeries("x")
        with pytest.raises(ValueError):
            s.last
        with pytest.raises(ValueError):
            s.max()
        s.append(0, 3.0)
        assert s.last == 3.0

    def test_at_returns_most_recent_before(self):
        s = TimeSeries("x")
        for t, v in [(0, 10), (10, 20), (20, 30)]:
            s.append(t, v)
        assert s.at(0) == 10
        assert s.at(9.9) == 10
        assert s.at(10) == 20
        assert s.at(15) == 20
        assert s.at(100) == 30

    def test_at_before_first_sample_raises(self):
        s = TimeSeries("x")
        s.append(5, 1.0)
        with pytest.raises(ValueError):
            s.at(4.9)

    def test_window(self):
        s = TimeSeries("x")
        for t in range(10):
            s.append(t, t)
        w = s.window(3, 6)
        assert w.times == [3, 4, 5, 6]

    def test_aggregates(self):
        s = TimeSeries("x")
        for v in (1.0, 2.0, 3.0, 4.0):
            s.append(len(s.times), v)
        assert s.mean() == 2.5
        assert s.min() == 1.0
        assert s.max() == 4.0
        assert s.stddev() == pytest.approx(math.sqrt(1.25))

    def test_time_weighted_mean(self):
        s = TimeSeries("x")
        s.append(0, 10.0)   # holds for 1s
        s.append(1, 20.0)   # holds for 9s
        s.append(10, 99.0)  # terminal sample carries no weight
        assert s.time_weighted_mean() == pytest.approx((10 * 1 + 20 * 9) / 10)

    def test_time_weighted_mean_single_sample(self):
        s = TimeSeries("x")
        s.append(5, 7.0)
        assert s.time_weighted_mean() == 7.0

    def test_time_weighted_mean_zero_span_falls_back(self):
        s = TimeSeries("x")
        s.append(1, 4.0)
        s.append(1, 6.0)
        assert s.time_weighted_mean() == 5.0

    def test_time_weighted_mean_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("x").time_weighted_mean()

    def test_delta_and_rate(self):
        s = TimeSeries("commits")
        for t, v in [(0, 0), (1, 10), (3, 30)]:
            s.append(t, v)
        assert s.delta().values == [10.0, 20.0]
        assert s.rate().values == [10.0, 10.0]

    def test_rate_skips_zero_dt(self):
        s = TimeSeries("x")
        s.append(1, 0)
        s.append(1, 5)
        assert len(s.rate()) == 0

    def test_smooth_is_mean_preserving_on_constant(self):
        s = TimeSeries("x")
        for t in range(20):
            s.append(t, 7.0)
        assert s.smooth(3).values == [7.0] * 20

    def test_crossing_time(self):
        s = TimeSeries("x")
        for t, v in [(0, 1), (5, 3), (10, 8)]:
            s.append(t, v)
        assert s.crossing_time(3, rising=True) == 5
        assert s.crossing_time(100, rising=True) is None
        assert s.crossing_time(1, rising=False) == 0


def series_strategy(min_size=1):
    """Random (sorted-time, value) samples as a TimeSeries."""
    return st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e4),
            st.floats(min_value=-1e6, max_value=1e6),
        ),
        min_size=min_size,
        max_size=40,
    ).map(
        lambda pairs: [
            (t, v) for (t, _), (_, v) in zip(sorted(pairs), pairs)
        ]
    )


def build_series(pairs) -> TimeSeries:
    s = TimeSeries("x")
    for t, v in pairs:
        s.append(t, v)
    return s


class TestTimeSeriesProperties:
    @given(pairs=series_strategy())
    @settings(max_examples=60, deadline=None)
    def test_time_weighted_mean_within_value_range(self, pairs):
        s = build_series(pairs)
        mean = s.time_weighted_mean()
        low, high = min(s.values), max(s.values)
        assert low <= mean <= high or math.isclose(mean, low) \
            or math.isclose(mean, high)

    @given(pairs=series_strategy())
    @settings(max_examples=60, deadline=None)
    def test_time_weighted_mean_of_constant_is_the_constant(self, pairs):
        s = build_series([(t, 42.0) for t, _ in pairs])
        assert s.time_weighted_mean() == pytest.approx(42.0)

    @given(
        pairs=series_strategy(min_size=2),
        threshold=st.floats(min_value=-1e6, max_value=1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_crossing_time_points_at_a_crossing_sample(self, pairs, threshold):
        s = build_series(pairs)
        crossing = s.crossing_time(threshold, rising=True)
        if crossing is None:
            assert all(v < threshold for v in s.values)
        else:
            # some sample AT the crossing time meets the threshold (with
            # duplicate timestamps, at() may report a later co-timed one)
            assert any(
                t == crossing and v >= threshold
                for t, v in zip(s.times, s.values)
            )
            # nothing strictly before the crossing already met it
            for t, v in zip(s.times, s.values):
                if t < crossing:
                    assert v < threshold

    @given(pairs=series_strategy())
    @settings(max_examples=60, deadline=None)
    def test_crossing_time_falling_mirrors_rising(self, pairs):
        s = build_series(pairs)
        mirrored = build_series([(t, -v) for t, v in pairs])
        assert s.crossing_time(0.0, rising=True) == mirrored.crossing_time(
            0.0, rising=False
        )


class TestMetricsRecorder:
    def test_record_and_lookup(self):
        rec = MetricsRecorder()
        rec.record("a", 0, 1.0)
        assert "a" in rec
        assert rec["a"].last == 1.0

    def test_missing_series_keyerror_lists_names(self):
        rec = MetricsRecorder()
        rec.record("known", 0, 1.0)
        with pytest.raises(KeyError, match="known"):
            rec["unknown"]

    def test_record_many(self):
        rec = MetricsRecorder()
        rec.record_many(1.0, {"a": 1, "b": 2})
        assert rec["a"].last == 1
        assert rec["b"].last == 2

    def test_to_rows_merges_times(self):
        rec = MetricsRecorder()
        rec.record("a", 0, 1.0)
        rec.record("b", 1, 2.0)
        rec.record("a", 1, 3.0)
        rows = rec.to_rows()
        assert rows[0] == (0.0, {"a": 1.0})
        assert rows[1] == (1.0, {"a": 3.0, "b": 2.0})

    def test_write_csv(self, tmp_path):
        rec = MetricsRecorder()
        rec.record_many(0.0, {"a": 1, "b": 2})
        rec.record_many(1.0, {"a": 3, "b": 4})
        path = tmp_path / "out.csv"
        rec.write_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "time,a,b"
        assert lines[1] == "0.0,1.0,2.0"


class TestSampledProcess:
    def test_samples_on_period(self):
        env = Environment()
        rec = MetricsRecorder()
        counter = {"v": 0}

        def bump():
            counter["v"] += 1
            return counter["v"]

        env.process(sampled({"c": bump}, rec, env, period=1.0))
        env.run(until=5.5)
        assert rec["c"].times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert rec["c"].values == [1, 2, 3, 4, 5, 6]

    def test_zero_period_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            next(sampled({}, MetricsRecorder(), env, period=0))
