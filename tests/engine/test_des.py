"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.engine.des import AllOf, AnyOf, Environment, Event, Interrupt, Timeout
from repro.errors import SimulationError
from tests.conftest import run_process


class TestEvent:
    def test_event_starts_untriggered(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, env):
        event = env.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event().succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_callback_after_processed_runs_immediately(self, env):
        event = env.event().succeed("x")
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_advances_clock(self, env):
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_timeouts_fire_in_time_order(self, env):
        order = []
        for delay in (3.0, 1.0, 2.0):
            env.timeout(delay, value=delay).add_callback(
                lambda e: order.append(e.value)
            )
        env.run()
        assert order == [1.0, 2.0, 3.0]

    def test_same_time_fifo(self, env):
        order = []
        for tag in "abc":
            env.timeout(1.0, value=tag).add_callback(lambda e: order.append(e.value))
        env.run()
        assert order == ["a", "b", "c"]


class TestProcess:
    def test_process_returns_value(self, env):
        def proc():
            yield env.timeout(1)
            return "done"

        assert run_process(env, proc()) == "done"

    def test_yield_receives_event_value(self, env):
        def proc():
            got = yield env.timeout(2, value="payload")
            return got

        assert run_process(env, proc()) == "payload"

    def test_process_waits_for_process(self, env):
        def inner():
            yield env.timeout(3)
            return 7

        def outer():
            value = yield env.process(inner())
            return value + 1

        assert run_process(env, outer()) == 8
        assert env.now == 3

    def test_yield_non_event_crashes_process(self, env):
        def proc():
            yield 42

        with pytest.raises(SimulationError):
            run_process(env, proc())

    def test_process_exception_propagates_to_waiter(self, env):
        def failing():
            yield env.timeout(1)
            raise ValueError("boom")

        def waiter():
            try:
                yield env.process(failing())
            except ValueError as exc:
                return f"caught {exc}"

        assert run_process(env, waiter()) == "caught boom"

    def test_untended_failed_event_raises_from_run(self, env):
        def failing():
            yield env.timeout(1)
            raise ValueError("unhandled")

        env.process(failing())
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_already_processed_target_continues_inline(self, env):
        done = env.event().succeed("ready")
        env.run()

        def proc():
            value = yield done
            return value

        assert run_process(env, proc()) == "ready"

    def test_rejects_non_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self, env):
        def sleeper():
            try:
                yield env.timeout(100)
                return "slept"
            except Interrupt as exc:
                return f"interrupted:{exc.cause}@{env.now}"

        proc = env.process(sleeper())

        def interrupter():
            yield env.timeout(5)
            proc.interrupt("wakeup")

        env.process(interrupter())
        env.run()
        # The sleeper woke at t=5; its abandoned timeout still drains the
        # queue afterwards (nobody is listening to it).
        assert proc.value == "interrupted:wakeup@5.0"

    def test_interrupt_dead_process_raises(self, env):
        def quick():
            yield env.timeout(1)

        proc = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_self_interrupt_rejected(self, env):
        def selfish():
            yield env.timeout(1)
            env.active_process.interrupt()

        with pytest.raises(SimulationError):
            run_process(env, selfish())


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")

        def proc():
            results = yield AllOf(env, [t1, t2])
            return sorted(results.values())

        assert run_process(env, proc()) == ["a", "b"]
        assert env.now == 5

    def test_any_of_fires_on_first(self, env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(50, value="slow")

        def proc():
            results = yield AnyOf(env, [t1, t2])
            return list(results.values())

        assert run_process(env, proc(), until=60) == ["fast"]

    def test_empty_all_of_fires_immediately(self, env):
        def proc():
            yield AllOf(env, [])
            return env.now

        assert run_process(env, proc()) == 0.0

    def test_condition_failure_propagates(self, env):
        bad = env.event()

        def failer():
            yield env.timeout(1)
            bad.fail(RuntimeError("inner"))

        def waiter():
            yield AllOf(env, [bad, env.timeout(10)])

        env.process(failer())
        proc = env.process(waiter())
        with pytest.raises(RuntimeError, match="inner"):
            env.run()
            if not proc.ok:
                raise proc.value


class TestEnvironmentRun:
    def test_run_until_stops_clock(self, env):
        env.timeout(100)
        env.run(until=10)
        assert env.now == 10

    def test_run_until_past_raises(self, env):
        env.timeout(5)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=1)

    def test_step_empty_queue_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_determinism(self):
        def build_and_run():
            env = Environment()
            trace = []

            def worker(name, delay):
                yield env.timeout(delay)
                trace.append((name, env.now))
                yield env.timeout(delay)
                trace.append((name, env.now))

            for i in range(5):
                env.process(worker(f"w{i}", 1 + i * 0.5))
            env.run()
            return trace

        assert build_and_run() == build_and_run()
