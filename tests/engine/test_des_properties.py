"""Property tests for the DES kernel: ordering and clock discipline."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.des import AllOf, Environment


class TestClockProperties:
    @settings(max_examples=50, deadline=None)
    @given(delays=st.lists(st.floats(0, 1_000), min_size=1, max_size=30))
    def test_callbacks_fire_in_nondecreasing_time_order(self, delays):
        env = Environment()
        observed = []
        for delay in delays:
            env.timeout(delay).add_callback(lambda _e: observed.append(env.now))
        env.run()
        assert observed == sorted(observed)
        assert env.now == max(delays)

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 15),
    )
    def test_random_process_trees_complete(self, seed, n):
        """Randomly nested spawn/wait/timeout structures all finish and
        the clock never runs backwards."""
        rng = random.Random(seed)
        env = Environment()
        finished = []
        clock_trace = []

        def worker(depth):
            last = env.now
            for _ in range(rng.randrange(1, 4)):
                clock_trace.append(env.now)
                choice = rng.random()
                if choice < 0.6 or depth >= 3:
                    yield env.timeout(rng.random() * 5)
                elif choice < 0.85:
                    yield env.process(worker(depth + 1))
                else:
                    children = [
                        env.process(worker(depth + 1))
                        for _ in range(rng.randrange(1, 3))
                    ]
                    yield AllOf(env, children)
                assert env.now >= last
                last = env.now
            finished.append(depth)

        roots = [env.process(worker(0)) for _ in range(n)]
        env.run()
        assert all(not p.is_alive for p in roots)
        assert clock_trace == sorted(clock_trace[:1]) + clock_trace[1:]  # sanity
        assert len(finished) >= n

    @settings(max_examples=30, deadline=None)
    @given(
        until=st.floats(min_value=0.5, max_value=100),
        delays=st.lists(st.floats(0.1, 200), min_size=1, max_size=20),
    )
    def test_run_until_never_overshoots(self, until, delays):
        env = Environment()
        fired = []
        for delay in delays:
            env.timeout(delay).add_callback(lambda _e: fired.append(env.now))
        env.run(until=until)
        assert env.now == until
        assert all(t <= until for t in fired)
        # the stop event is urgent, so (as in SimPy) events scheduled at
        # exactly `until` are NOT processed; strictly-earlier ones are
        expected = sorted(d for d in delays if d < until)
        assert sorted(fired) == expected
