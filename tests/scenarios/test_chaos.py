"""Chaos-lane regressions: documented degraded postures, per scenario.

Satellite 2 of ISSUE 9: a tuner crash mid-surge must end in the frozen
static-LOCKLIST posture with a terminal ``freeze`` audit record and a
503 health answer; a worker SIGKILL mid-matrix must leave the
survivors frozen and the scenario marked ``expected-degraded`` -- not
``fail``.
"""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import EXPECTED_DEGRADED, run_scenario
from repro.scenarios.grid import ScenarioSpec, scenario_id
from repro.service.chaos import CHAOS, build_chaos


def make_spec(params, slug="chaos"):
    return ScenarioSpec(
        grid="chaos-test",
        index=0,
        params=params,
        scenario_id=scenario_id("chaos-test", params),
        slug=slug,
    )


def checks_by_name(result):
    return {check.name: check for check in result.verdict.checks}


class TestRegistry:
    def test_every_injection_is_registered(self):
        assert set(CHAOS) == {
            "tuner-crash",
            "shard-stall",
            "worker-sigkill",
            "overflow-exhaustion",
        }

    def test_unknown_chaos_raises(self):
        with pytest.raises(ConfigurationError):
            build_chaos("no-such-chaos")


class TestTunerCrash:
    def test_crash_mid_surge_freezes_locklist_and_503s(self):
        result = run_scenario(
            make_spec(
                {
                    "kind": "service",
                    "regime": "uniform",
                    "threads": 2,
                    "requests_per_thread": 250,
                    "seed": 5,
                    "chaos": "tuner-crash",
                    "chaos_warm_requests": 20,
                },
                slug="tuner-crash",
            )
        )
        assert result.verdict.status == EXPECTED_DEGRADED
        checks = checks_by_name(result)
        # The frozen static-LOCKLIST posture, as documented:
        assert checks["tuner-crashed"].ok
        assert checks["locklist-frozen"].ok
        assert checks["freeze-audited"].ok
        assert checks["healthz-503"].ok
        assert checks["growth-disabled"].ok
        # Lock service survived the crash with exact accounting.
        assert checks["completeness"].ok
        assert checks["accounting-exact"].ok
        # The tuner-healthy standard check is skipped, not failed.
        assert "tuner-healthy" not in checks


class TestWorkerSigkill:
    def test_sigkill_mid_matrix_is_expected_degraded_not_fail(self):
        result = run_scenario(
            make_spec(
                {
                    "kind": "service",
                    "regime": "uniform",
                    "threads": 2,
                    "requests_per_thread": 300,
                    "seed": 5,
                    "workers": 2,
                    "chaos": "worker-sigkill",
                },
                slug="worker-sigkill",
            )
        )
        assert result.verdict.status == EXPECTED_DEGRADED
        assert result.verdict.ok  # degraded-as-expected is NOT a failure
        checks = checks_by_name(result)
        assert checks["survivors-frozen"].ok
        assert checks["crash-counted"].ok
        assert checks["incident-recorded"].ok
        assert checks["healthz-503"].ok
        assert checks["reconciliation-names-victim"].ok
        assert checks["survivors-served"].ok
        # Completeness cannot hold after a SIGKILL: skipped, not failed.
        assert "completeness" not in checks
