"""Tests for the scenario matrix engine (repro.scenarios)."""
