"""Grid expansion: completeness, determinism, collision-free folders."""

import itertools
import json
import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ScenarioGrid,
    build_grid,
    canonical_json,
    grid_names,
    make_slug,
    scenario_id,
)


class TestExpansion:
    def test_cartesian_product_completeness(self):
        """Every combination of every axis appears exactly once."""
        grid = ScenarioGrid(
            "t",
            base={"kind": "service", "regime": "uniform", "threads": 1},
            axes={"regime": ["uniform", "hot_page"], "threads": [1, 2, 4]},
            extras=[{"label": "extra-one", "threads": 8}],
        )
        specs = grid.expand()
        assert len(specs) == len(grid) == 2 * 3 + 1
        combos = {
            (spec.params["regime"], spec.params["threads"])
            for spec in specs[:6]
        }
        assert combos == set(
            itertools.product(["uniform", "hot_page"], [1, 2, 4])
        )
        assert specs[6].params["label"] == "extra-one"
        # Base keys not on an axis carry through unchanged.
        assert all(spec.params["kind"] == "service" for spec in specs)
        # Indexes are sequential, matching expansion order.
        assert [spec.index for spec in specs] == list(range(7))

    def test_duplicate_params_rejected(self):
        grid = ScenarioGrid(
            "t",
            base={"threads": 1},
            axes={},
            extras=[{"threads": 2}, {"threads": 2}],
        )
        with pytest.raises(ConfigurationError):
            grid.expand()

    def test_non_json_values_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioGrid("t", base={"bad": object()}, axes={}, extras=[])


class TestDeterministicIds:
    def test_golden_scenario_id(self):
        """The ID derivation is pinned: changing it invalidates every
        stored result folder, so it must never drift silently."""
        params = {"kind": "service", "regime": "uniform", "threads": 2,
                  "seed": 3}
        assert scenario_id("golden", params) == "f3137bc5f3a5"

    def test_canonical_json_is_key_order_independent(self):
        a = canonical_json({"b": 1, "a": [1, 2]})
        b = canonical_json({"a": [1, 2], "b": 1})
        assert a == b == '{"a":[1,2],"b":1}'

    def test_ids_stable_across_hash_seeds(self):
        """The same grid expands to the same IDs in fresh interpreters
        with different PYTHONHASHSEED values (the acceptance criterion:
        identical expansion across processes)."""
        script = (
            "import json, sys\n"
            "from repro.scenarios import build_grid, grid_names\n"
            "out = {name: [s.scenario_id for s in build_grid(name).expand()]"
            " for name in grid_names()}\n"
            "print(json.dumps(out, sort_keys=True))\n"
        )
        outputs = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = "src" + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        parsed = json.loads(outputs[0])
        assert set(parsed) == set(grid_names())

    def test_in_process_expansion_is_repeatable(self):
        for name in grid_names():
            first = [spec.scenario_id for spec in build_grid(name).expand()]
            second = [spec.scenario_id for spec in build_grid(name).expand()]
            assert first == second


class TestFolders:
    def test_folders_collision_free_in_named_grids(self):
        for name in grid_names():
            folders = [spec.folder for spec in build_grid(name).expand()]
            assert len(folders) == len(set(folders)), name

    def test_folder_shape(self):
        spec = build_grid("mini").expand()[0]
        index, slug_and_id = spec.folder.split("-", 1)
        assert index == f"{spec.index:03d}"
        assert slug_and_id.endswith(spec.scenario_id[:8])
        assert spec.slug in spec.folder

    def test_slug_prefers_label(self):
        assert make_slug({"label": "My Label!", "threads": 9}, ["threads"]) \
            == "my-label"

    def test_slug_from_keys(self):
        slug = make_slug({"regime": "hot_page", "shards": 4},
                         ["regime", "shards"])
        assert slug == "regime-hot-page-shards-4"
        assert len(slug) <= 48


class TestNamedGrids:
    def test_standard_grid_spans_the_required_regimes(self):
        """ISSUE acceptance: >= 12 scenarios spanning skew, mode mixes,
        DSS-beside-OLTP, flash crowd and chaos."""
        specs = build_grid("standard").expand()
        assert len(specs) >= 12
        regimes = {spec.params.get("regime") for spec in specs}
        assert {"uniform", "hot_page", "write_heavy", "update_heavy"} \
            <= regimes
        assert any(spec.params.get("dss_locks", 0) > 0 for spec in specs)
        assert any(
            spec.params.get("trace") == "flash_crowd" for spec in specs
        )
        chaos = {spec.chaos for spec in specs if spec.chaos}
        assert {"tuner-crash", "shard-stall", "worker-sigkill",
                "overflow-exhaustion"} <= chaos

    def test_mini_grid_has_six_scenarios_and_a_chaos_lane(self):
        specs = build_grid("mini").expand()
        assert len(specs) == 6
        assert sum(1 for spec in specs if spec.chaos) == 1

    def test_unknown_grid_raises(self):
        with pytest.raises(ConfigurationError):
            build_grid("no-such-grid")
