"""Scenario execution: checks, result folders, matrix reports."""

import json
import os

from repro.scenarios import (
    FAIL,
    PASS,
    ScenarioGrid,
    load_matrix,
    render_verdict_table,
    run_matrix,
    run_scenario,
)
from repro.scenarios.grid import ScenarioSpec, scenario_id


def make_spec(params, grid="test", index=0, slug="spec"):
    return ScenarioSpec(
        grid=grid,
        index=index,
        params=params,
        scenario_id=scenario_id(grid, params),
        slug=slug,
    )


TINY_SERVICE = {
    "kind": "service",
    "regime": "uniform",
    "threads": 2,
    "requests_per_thread": 50,
    "seed": 5,
    "memory_pages": 16_384,
    "locklist_pages": 128,
    "tuner_interval_s": 0.05,
}

TINY_REPLAY = {
    "kind": "replay",
    "trace": "flash_crowd",
    "trace_params": {
        "base_locks": 200,
        "spike_locks": 2_000,
        "ramp_s": 1.0,
        "hold_s": 2.0,
        "start_s": 2.0,
        "tail_s": 2.0,
    },
    "batch_size": 128,
    "seed": 5,
    "memory_pages": 16_384,
    "locklist_pages": 128,
}


class TestServiceScenario:
    def test_tiny_scenario_passes_with_standard_checks(self):
        result = run_scenario(make_spec(TINY_SERVICE))
        assert result.verdict.status == PASS
        names = {check.name for check in result.verdict.checks}
        assert {
            "completeness",
            "worker-errors",
            "admission-sheds",
            "accounting-exact",
            "tuner-healthy",
        } <= names
        # Retries under contention can push the count above the floor.
        assert result.metrics["lock_requests"] >= 2 * 50

    def test_unknown_kind_becomes_run_crashed_failure(self):
        result = run_scenario(make_spec({"kind": "bogus"}))
        assert result.verdict.status == FAIL
        (failed,) = result.verdict.failed_checks
        assert failed.name == "run-crashed"
        assert "bogus" in failed.detail

    def test_result_folder_written(self, tmp_path):
        spec = make_spec(TINY_REPLAY)
        result = run_scenario(spec, out_dir=str(tmp_path))
        path = os.path.join(str(tmp_path), spec.folder, "result.json")
        assert os.path.isfile(path)
        with open(path) as fp:
            record = json.load(fp)
        assert record["scenario"]["id"] == spec.scenario_id
        assert record["verdict"]["status"] == result.verdict.status


class TestReplayDeterminism:
    def test_replay_result_json_byte_identical_across_runs(self, tmp_path):
        """Same seed, same scenario: the persisted result is the same
        bytes (the whole replay path is DES-driven, no wall clock)."""
        spec = make_spec(TINY_REPLAY)
        contents = []
        for run in ("a", "b"):
            out = tmp_path / run
            run_scenario(spec, out_dir=str(out))
            path = out / spec.folder / "result.json"
            contents.append(path.read_bytes())
        assert contents[0] == contents[1]


class TestMatrix:
    def make_grid(self):
        return ScenarioGrid(
            "tiny",
            base=dict(TINY_SERVICE),
            axes={},
            extras=[dict(TINY_REPLAY, label="replay")],
        )

    def test_run_matrix_writes_matrix_json(self, tmp_path):
        report = run_matrix(self.make_grid(), out_dir=str(tmp_path))
        assert report.ok
        assert len(report.results) == 2
        matrix = load_matrix(str(tmp_path / "tiny" / "matrix.json"))
        assert matrix["ok"] is True
        assert len(matrix["results"]) == 2
        assert matrix["grid"]["name"] == "tiny"
        # Every scenario landed its own result folder.
        for record in matrix["results"]:
            folder = tmp_path / "tiny" / record["scenario"]["folder"]
            assert (folder / "result.json").is_file()

    def test_verdict_table_shape(self):
        report = run_matrix(self.make_grid())
        table = report.render_table()
        lines = table.splitlines()
        assert lines[0] == "scenario matrix: grid 'tiny', 2 scenarios"
        assert "status" in lines[1] and "scenario" in lines[1]
        assert len(lines) == 2 + len(report.results) + 1
        assert lines[-1].strip().startswith("=>")
        assert "(OK)" in lines[-1]
        # The saved JSON renders to the same table.
        assert render_verdict_table(report.to_dict()) == table

    def test_echo_reports_progress(self):
        lines = []
        run_matrix(self.make_grid(), echo=lines.append)
        assert len(lines) == 2
        assert lines[0].startswith("[1/2]")

    def test_baseline_envelope_failure(self, tmp_path):
        """A prior matrix with inflated throughput fails the rerun."""
        grid = ScenarioGrid("tiny", base=dict(TINY_SERVICE), axes={},
                            extras=[])
        baseline_report = run_matrix(grid, out_dir=str(tmp_path))
        baseline = load_matrix(str(tmp_path / "tiny" / "matrix.json"))
        for record in baseline["results"]:
            record["metrics"]["requests_per_s"] = 1e12
        rerun = run_matrix(grid, baseline=baseline)
        assert not rerun.ok
        (result,) = rerun.results
        (failed,) = result.verdict.failed_checks
        assert failed.name == "throughput-envelope"
        assert baseline_report.ok  # the original run itself was fine
