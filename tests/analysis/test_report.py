"""Tests for report formatting helpers."""

import pytest

from repro.analysis.report import format_findings, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["policy", "escalations"],
            [["adaptive", 0], ["static", 12]],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "policy" in lines[0]
        assert "-" in lines[1]
        assert lines[2].index("0") == lines[3].index("12")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5678]])
        assert "1,234.57" in text

    def test_tiny_float_scientific(self):
        text = format_table(["v"], [[0.000012]])
        assert "e-" in text


class TestFormatFindings:
    def test_sorted_and_aligned(self):
        text = format_findings({"zeta": 1, "alpha": 2})
        lines = text.splitlines()
        assert lines[0].strip().startswith("alpha")
        assert lines[1].strip().startswith("zeta")

    def test_empty(self):
        assert format_findings({}) == ""
