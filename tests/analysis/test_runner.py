"""Smoke tests for the command-line experiment runner."""

import pytest

from repro.analysis import runner


class TestRegistry:
    def test_every_figure_has_an_entry(self):
        for figure in ("fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
                       "fig10", "fig11", "fig12"):
            assert figure in runner.EXPERIMENTS

    def test_extras_present(self):
        for extra in ("baselines", "ablation-delta", "ablation-band",
                      "ablation-maxlocks"):
            assert extra in runner.EXPERIMENTS


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert runner.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            runner.run_one("fig99")

    def test_run_fast_experiment(self, capsys):
        assert runner.main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "fifo_respected" in out

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "fig6.csv"
        assert runner.main(["fig6", "--csv", str(path)]) == 0
        header = path.read_text().splitlines()[0]
        assert "lock_pages_pct" in header

    def test_render_result_single_series(self):
        result = runner.EXPERIMENTS["fig4"][0]()
        text = runner.render_result(result, None)
        assert "itl_waits" in text

    def test_render_result_with_chart(self):
        result = runner.EXPERIMENTS["fig6"][0]()
        text = runner.render_result(result, ("lock_pages_pct", "lock_used_pct"))
        assert "+-" in text  # chart border present
