"""Smoke tests for the command-line experiment runner."""

import pytest

from repro.analysis import runner, scenarios
from repro.analysis.experiment import ExperimentResult
from repro.engine.database import DatabaseConfig
from repro.lockmgr.modes import LockMode
from repro.obs import load_runs


class TestRegistry:
    def test_every_figure_has_an_entry(self):
        for figure in ("fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
                       "fig10", "fig11", "fig12"):
            assert figure in runner.EXPERIMENTS

    def test_extras_present(self):
        for extra in ("baselines", "ablation-delta", "ablation-band",
                      "ablation-maxlocks"):
            assert extra in runner.EXPERIMENTS


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert runner.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            runner.run_one("fig99")

    def test_run_fast_experiment(self, capsys):
        assert runner.main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "fifo_respected" in out

    def test_csv_export(self, tmp_path, capsys):
        path = tmp_path / "fig6.csv"
        assert runner.main(["fig6", "--csv", str(path)]) == 0
        header = path.read_text().splitlines()[0]
        assert "lock_pages_pct" in header

    def test_render_result_single_series(self):
        result = runner.EXPERIMENTS["fig4"][0]()
        text = runner.render_result(result, None)
        assert "itl_waits" in text

    def test_render_result_with_chart(self):
        result = runner.EXPERIMENTS["fig6"][0]()
        text = runner.render_result(result, ("lock_pages_pct", "lock_used_pct"))
        assert "+-" in text  # chart border present


def run_tiny_fig3() -> ExperimentResult:
    return scenarios.run_fig3_lock_queuing()


def run_tiny_fig4() -> ExperimentResult:
    return scenarios.run_fig4_oracle_itl()


class TestParallel:
    def test_parallel_rejected_for_single_experiment(self):
        with pytest.raises(SystemExit):
            runner.main(["fig3", "--parallel", "2"])
        with pytest.raises(SystemExit):
            runner.main(["list", "--parallel", "2"])

    def test_parallel_must_be_positive(self):
        with pytest.raises(SystemExit):
            runner.main(["all", "--parallel", "0"])

    def test_parallel_all_matches_sequential(
        self, monkeypatch, tmp_path, capsys
    ):
        # Two fast table-style experiments; workers inherit the patched
        # registry via fork on Linux.
        monkeypatch.setattr(
            runner,
            "EXPERIMENTS",
            {
                "a-fig3": (run_tiny_fig3, None),
                "b-fig4": (run_tiny_fig4, None),
            },
        )
        seq_dir = tmp_path / "seq"
        par_dir = tmp_path / "par"
        assert runner.main(["all", "--out-dir", str(seq_dir)]) == 0
        seq_out = capsys.readouterr().out
        assert runner.main(
            ["all", "--parallel", "2", "--out-dir", str(par_dir)]
        ) == 0
        par_out = capsys.readouterr().out
        assert par_out == seq_out
        assert seq_out.index("=== a-fig3 ===") < seq_out.index("=== b-fig4 ===")
        for name in ("a-fig3", "b-fig4"):
            assert (
                (par_dir / f"{name}.txt").read_text()
                == (seq_dir / f"{name}.txt").read_text()
            )


def run_tiny_experiment() -> ExperimentResult:
    """A seconds-long experiment that builds one observable Database."""
    db = scenarios._new_db(
        "tiny", seed=1,
        config=DatabaseConfig(total_memory_pages=16_384,
                              initial_locklist_pages=128),
    )
    env, manager = db.env, db.lock_manager

    def holder():
        yield from manager.lock_row(1, 0, 5, LockMode.X)
        yield env.timeout(3)
        manager.release_all(1)

    def waiter():
        yield env.timeout(1)
        yield from manager.lock_row(2, 0, 5, LockMode.X)
        manager.release_all(2)

    env.process(holder())
    env.process(waiter())
    db.run(until=10)
    return ExperimentResult("tiny", db.metrics)


class TestTelemetryFlags:
    @pytest.fixture
    def tiny(self, monkeypatch):
        monkeypatch.setitem(runner.EXPERIMENTS, "tiny",
                            (run_tiny_experiment, None))

    def test_telemetry_writes_jsonl(self, tiny, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        assert runner.main(["tiny", "--telemetry", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry jsonl" in out
        runs = load_runs(str(path))
        assert len(runs) == 1
        assert runs[0].label == "tiny"
        assert runs[0].trace_events

    def test_report_prints_percentiles(self, tiny, capsys):
        assert runner.main(["tiny", "--report"]) == 0
        out = capsys.readouterr().out
        for token in ("run report: tiny", "p50", "p95", "p99"):
            assert token in out

    def test_flags_rejected_for_all(self):
        with pytest.raises(SystemExit):
            runner.main(["all", "--telemetry", "/tmp/x.jsonl"])
        with pytest.raises(SystemExit):
            runner.main(["list", "--report"])

    def test_no_database_experiment_degrades_gracefully(
        self, tmp_path, capsys
    ):
        path = tmp_path / "fig3.jsonl"
        assert runner.main(["fig3", "--telemetry", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no telemetry" in out
        assert not path.exists()

    def test_without_flags_no_observer_runs(self, tiny, capsys):
        assert runner.main(["tiny"]) == 0
        out = capsys.readouterr().out
        assert "telemetry" not in out


BENCH_FILE = {
    "meta": {"schema": 1},
    "benches": {
        "lock_churn": {
            "ops": 1000,
            "unit": "row_lock_requests",
            "ops_per_s": {"median": 50_000.0, "best": 52_000.0},
            "wall_s": {"p50": 0.02, "p95": 0.025, "min": 0.019, "mean": 0.021},
        },
    },
}


class TestMicrobenchWiring:
    @pytest.fixture
    def tiny(self, monkeypatch):
        monkeypatch.setitem(runner.EXPERIMENTS, "tiny",
                            (run_tiny_experiment, None))

    @pytest.fixture
    def bench_path(self, tmp_path):
        import json

        path = tmp_path / "bench.json"
        path.write_text(json.dumps(BENCH_FILE))
        return str(path)

    def test_report_includes_microbench_section(
        self, tiny, bench_path, capsys
    ):
        assert runner.main(
            ["tiny", "--report", "--microbench", bench_path]
        ) == 0
        out = capsys.readouterr().out
        assert "microbench (wall-clock, this build):" in out
        assert "lock_churn" in out
        assert "50,000.00" in out  # ops/s p50
        assert "20.00" in out  # wall p50 in ms

    def test_microbench_requires_report(self, bench_path):
        with pytest.raises(SystemExit):
            runner.main(["fig3", "--microbench", bench_path])

    def test_report_without_microbench_unchanged(self, tiny, capsys):
        assert runner.main(["tiny", "--report"]) == 0
        assert "microbench" not in capsys.readouterr().out

    def test_attach_microbench_in_json(self, tiny, bench_path, capsys):
        from repro.analysis.report import RunReport

        report = RunReport.from_telemetry(_tiny_telemetry())
        report.attach_microbench(BENCH_FILE)
        data = report.as_json()
        assert data["microbench"]["lock_churn"]["ops_per_s_median"] == 50_000.0
        assert data["microbench"]["lock_churn"]["wall_s_p95"] == 0.025


def _tiny_telemetry():
    """Telemetry of one observed tiny run (for direct RunReport tests)."""
    observed = []

    def observer(label, db):
        db.enable_telemetry()
        observed.append((label, db))

    with scenarios.observe_databases(observer):
        run_tiny_experiment()
    label, db = observed[0]
    return db.telemetry(label=label)
