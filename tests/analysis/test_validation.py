"""Tests for the declarative paper-shape validation."""

import pytest

from repro.analysis.experiment import ExperimentResult
from repro.analysis.validation import (
    PAPER_EXPECTATIONS,
    Expectation,
    render_outcomes,
    validate,
)
from repro.engine.metrics import MetricsRecorder


def result_with(**findings):
    result = ExperimentResult("x", MetricsRecorder())
    result.findings.update(findings)
    return result


class TestExpectation:
    def test_comparison_operators(self):
        result = result_with(v=5)
        assert Expectation("v", "==", 5).evaluate(result).passed
        assert Expectation("v", ">", 4).evaluate(result).passed
        assert not Expectation("v", "<", 5).evaluate(result).passed
        assert Expectation("v", "!=", 4).evaluate(result).passed

    def test_approximate_equality(self):
        result = result_with(ratio=2.1)
        assert Expectation("ratio", "~=", 2.0, tolerance=0.10).evaluate(result).passed
        assert not Expectation("ratio", "~=", 2.0, tolerance=0.01).evaluate(
            result
        ).passed

    def test_approx_zero_reference(self):
        result = result_with(v=0.0)
        assert Expectation("v", "~=", 0.0, tolerance=0.1).evaluate(result).passed

    def test_missing_finding_fails_gracefully(self):
        outcome = Expectation("absent", "==", 1).evaluate(result_with(v=1))
        assert not outcome.passed
        assert "absent" in outcome.error

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Expectation("v", "≈", 1).evaluate(result_with(v=1))

    def test_outcome_str(self):
        outcome = Expectation(
            "growth", "~=", 10.5, tolerance=0.25,
            paper_claim="10.5x growth",
        ).evaluate(result_with(growth=10.67))
        text = str(outcome)
        assert "[PASS]" in text and "10.5x growth" in text


class TestRegistry:
    def test_every_figure_has_expectations(self):
        for figure in ("fig3", "fig4", "fig6", "fig7", "fig8",
                       "fig9", "fig10", "fig11", "fig12"):
            assert figure in PAPER_EXPECTATIONS
            assert PAPER_EXPECTATIONS[figure]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            validate("fig99", result_with())


class TestValidateOnRealRuns:
    def test_fig3_passes_its_checks(self):
        from repro.analysis.scenarios import run_fig3_lock_queuing

        outcomes = validate("fig3", run_fig3_lock_queuing())
        assert all(o.passed for o in outcomes)

    def test_fig4_passes_its_checks(self):
        from repro.analysis.scenarios import run_fig4_oracle_itl

        outcomes = validate("fig4", run_fig4_oracle_itl())
        assert all(o.passed for o in outcomes)

    def test_fig6_passes_its_checks(self):
        from repro.analysis.scenarios import run_fig6_worked_example

        outcomes = validate("fig6", run_fig6_worked_example())
        assert all(o.passed for o in outcomes)

    def test_render_scorecard(self):
        from repro.analysis.scenarios import run_fig3_lock_queuing

        text = render_outcomes(validate("fig3", run_fig3_lock_queuing()))
        assert "2/2 paper-shape checks passed" in text
