"""Tests for contention analysis over lock traces."""

import pytest

from repro.analysis.contention import ContentionReport
from repro.lockmgr.tracing import LockTrace


def synthetic_trace():
    trace = LockTrace()
    # app 1 waits 2s on T0.R7
    trace.emit(1.0, "wait-begin", 1, "X T0.R7", "T0.R7")
    trace.emit(3.0, "wait-end", 1, "X T0.R7 after 2.000s", "T0.R7")
    # app 2 waits 5s on T0.R7
    trace.emit(2.0, "wait-begin", 2, "X T0.R7", "T0.R7")
    trace.emit(7.0, "wait-end", 2, "X T0.R7 after 5.000s", "T0.R7")
    # app 3 deadlocks on T1.R1
    trace.emit(4.0, "wait-begin", 3, "X T1.R1", "T1.R1")
    trace.emit(5.0, "deadlock", 3, "X T1.R1", "T1.R1")
    # app 4 times out on T1
    trace.emit(6.0, "wait-begin", 4, "S T1", "T1")
    trace.emit(9.0, "timeout", 4, "S T1", "T1")
    # app 1 escalates table 2
    trace.emit(10.0, "escalation", 1, "table 2 -> S (maxlocks), freed 9", "T2")
    return trace


class TestFromTrace:
    def test_totals(self):
        report = ContentionReport.from_trace(synthetic_trace())
        assert report.total_waits == 4
        assert report.total_wait_time_s == pytest.approx(7.0)

    def test_resource_aggregation(self):
        report = ContentionReport.from_trace(synthetic_trace())
        hot = report.resources["T0.R7"]
        assert hot.waits == 2
        assert hot.wait_time_s == pytest.approx(7.0)
        assert hot.mean_wait_s == pytest.approx(3.5)

    def test_deadlocks_and_timeouts_attributed(self):
        report = ContentionReport.from_trace(synthetic_trace())
        assert report.resources["T1.R1"].deadlocks == 1
        assert report.resources["T1"].timeouts == 1

    def test_app_aggregation(self):
        report = ContentionReport.from_trace(synthetic_trace())
        assert report.apps[2].wait_time_s == pytest.approx(5.0)
        assert report.apps[1].escalations == 1
        assert report.apps[3].deadlocks == 1

    def test_hottest_resources_ordering(self):
        report = ContentionReport.from_trace(synthetic_trace())
        hottest = report.hottest_resources(2)
        assert hottest[0].resource == "T0.R7"

    def test_most_blocked_apps(self):
        report = ContentionReport.from_trace(synthetic_trace())
        assert report.most_blocked_apps(1)[0].app_id == 2

    def test_table_hotspots_fold_rows(self):
        report = ContentionReport.from_trace(synthetic_trace())
        hotspots = report.table_hotspots()
        assert hotspots["T0"] == pytest.approx(7.0)

    def test_render_contains_top_resource(self):
        report = ContentionReport.from_trace(synthetic_trace())
        text = report.render()
        assert "T0.R7" in text
        assert "4 waits" in text

    def test_empty_trace(self):
        report = ContentionReport.from_trace(LockTrace())
        assert report.total_waits == 0
        assert report.hottest_resources() == []


class TestEndToEnd:
    def test_tpcc_warehouse_is_the_hotspot(self):
        """The classic TPC-C result: with one warehouse, the single
        warehouse row that every payment X-updates carries the bulk of
        the wait time."""
        from repro.analysis.contention import ContentionReport
        from repro.lockmgr.tracing import LockTrace
        from repro.workloads.schedule import ClientSchedule
        from repro.workloads.tpcc import TpccMix, TpccWorkload
        from tests.conftest import make_database

        db = make_database(seed=41)
        db.lock_manager.tracer = LockTrace(capacity=None)
        workload = TpccWorkload(
            db, ClientSchedule.constant(12),
            mix=TpccMix(warehouses=1, think_time_mean_s=0.05),
        )
        workload.start()
        db.run(until=90)
        report = ContentionReport.from_trace(db.lock_manager.tracer)
        assert report.total_waits > 0
        hotspots = report.table_hotspots()
        warehouse_wait = hotspots.get("T0", 0.0)
        # the warehouse table dominates total wait time...
        assert warehouse_wait >= 0.5 * sum(hotspots.values())
        # ...and the single warehouse row is the hottest resource
        assert report.hottest_resources(1)[0].resource == "T0.R0"
