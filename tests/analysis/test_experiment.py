"""Tests for the experiment result container."""

import pytest

from repro.analysis.experiment import ExperimentResult
from repro.engine.metrics import MetricsRecorder


def make_result():
    metrics = MetricsRecorder()
    metrics.record("lock_pages", 0, 128)
    result = ExperimentResult("test-exp", metrics)
    result.findings["growth_factor"] = 10.5
    result.findings["escalations"] = 0
    return result


class TestExperimentResult:
    def test_finding_lookup(self):
        assert make_result().finding("growth_factor") == 10.5

    def test_missing_finding_lists_available(self):
        with pytest.raises(KeyError, match="growth_factor"):
            make_result().finding("nope")

    def test_series_shortcut(self):
        assert make_result().series("lock_pages").last == 128

    def test_summary_lines(self):
        result = make_result()
        result.notes.append("scaled down 10x")
        text = str(result)
        assert "[test-exp]" in text
        assert "growth_factor" in text
        assert "note: scaled down 10x" in text

    def test_float_formatting_in_summary(self):
        assert "10.500" in str(make_result())
