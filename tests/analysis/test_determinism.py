"""Determinism regression: same seed, same telemetry stream.

The simulation must be a pure function of its seed: two runs of the
same scenario with the same seed have to produce byte-identical
telemetry record streams.  This pins the optimization work -- any
accidental dependence on set/hash iteration order, id()-keyed state or
wall-clock control flow shows up here as a stream divergence.

The single exclusion is the ``lock.sync_growth.latency_s`` histogram:
it measures *wall-clock* time spent inside synchronous lock-memory
growth (by design -- see docs/OBSERVABILITY.md), so its bucket counts
legitimately vary between runs of identical simulations.
"""

import json

from repro.analysis import scenarios

#: The only wall-clock-derived record in the stream.
WALL_CLOCK_METRIC = "lock.sync_growth.latency_s"

FIG9_PARAMS = dict(clients=6, ramp_duration_s=5.0, duration_s=15.0)


def capture_fig9_stream(seed):
    """Run a scaled-down fig9 and return its JSONL lines (all runs)."""
    observed = []

    def observer(label, db):
        db.enable_telemetry()
        observed.append((label, db))

    with scenarios.observe_databases(observer):
        scenarios.run_fig9_rampup(seed=seed, **FIG9_PARAMS)

    lines = []
    excluded = 0
    assert observed, "fig9 built no observable database"
    for label, db in observed:
        for record in db.telemetry(label=label).records():
            if (
                record.get("kind") == "histogram"
                and record.get("name") == WALL_CLOCK_METRIC
            ):
                excluded += 1
                continue
            lines.append(json.dumps(record, sort_keys=True))
    return lines, excluded


class TestSameSeedSameStream:
    def test_fig9_twice_identical_telemetry(self):
        first, excluded_first = capture_fig9_stream(seed=9)
        second, excluded_second = capture_fig9_stream(seed=9)
        assert len(first) > 100  # a real stream, not a degenerate run
        assert first == second
        # the wall-clock histogram exists and is the one thing skipped
        assert excluded_first == excluded_second
        assert excluded_first >= 1

    def test_different_seed_different_stream(self):
        # Sanity check that the capture is sensitive enough to notice a
        # genuinely different run.
        first, _ = capture_fig9_stream(seed=9)
        other, _ = capture_fig9_stream(seed=10)
        assert first != other
