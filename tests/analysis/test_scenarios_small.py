"""Scaled-down integration runs of every paper-figure scenario.

These use reduced client counts / durations so the whole module runs in
well under a minute, while still asserting the *shape* each figure
conveys.  The full-scale versions live in ``benchmarks/``.
"""

import pytest

from repro.analysis.scenarios import (
    run_fig3_lock_queuing,
    run_fig4_oracle_itl,
    run_fig6_worked_example,
    run_fig7_fig8_static_escalation,
    run_fig9_rampup,
    run_fig10_surge,
    run_fig11_dss_injection,
    run_fig12_reduction,
)


class TestFig3:
    def test_convoy_shape(self):
        result = run_fig3_lock_queuing()
        assert result.finding("shared_S_grant")
        assert result.finding("fifo_respected")
        assert result.finding("queue_while_held") == "X->S"


class TestFig4:
    def test_itl_blocks_free_rows(self):
        result = run_fig4_oracle_itl()
        assert result.finding("blocked_on_free_rows") > 0
        assert result.finding("row_conflicts") == 0
        assert result.finding("tunable_memory_pages") == 0

    def test_overhead_permanent(self):
        result = run_fig4_oracle_itl()
        assert result.finding("disk_overhead_bytes") == result.finding(
            "disk_overhead_after_commit_bytes"
        )


class TestFig6:
    def test_worked_example_timeline(self):
        result = run_fig6_worked_example()
        assert result.finding("t1_absorbed_without_sync_growth")
        assert result.finding("t3_used_sync_growth")
        assert result.finding("t4_overflow_restored_pct") == pytest.approx(
            10.0, abs=0.5
        )
        assert result.finding("per_interval_shrink_fraction") == pytest.approx(
            0.05, abs=0.02
        )
        # relaxation ends at the maxFree-free goal: alloc ~ used / 0.4
        assert result.finding("final_alloc_pct") == pytest.approx(5.0, abs=0.3)


class TestFig7Fig8:
    def test_static_catastrophe_small(self):
        result = run_fig7_fig8_static_escalation(
            clients=60, duration_s=90, include_adaptive_reference=True
        )
        assert result.finding("static_escalations") > 0
        # escalation reduced lock memory requirements (Figure 7)
        assert result.finding("static_used_drop_after_escalation") > 0
        # adaptive reference: no escalations, far more work done (Figure 8)
        assert result.finding("adaptive_escalations") == 0
        assert result.finding("adaptive_vs_static_commit_ratio") > 1.5


class TestFig9:
    def test_rampup_small(self):
        result = run_fig9_rampup(
            clients=60, ramp_duration_s=30, duration_s=120
        )
        assert result.finding("escalations") == 0
        assert result.finding("growth_factor") >= 4.0
        assert result.finding("convergence_time_s") <= 90


class TestFig10:
    def test_surge_small(self):
        # 50 -> 130 clients is the paper's own surge; the per-application
        # minLockMemory term only exceeds the 2 MB floor above 64 clients,
        # so smaller populations would not move the allocation at all.
        result = run_fig10_surge(
            before_clients=50, after_clients=130,
            switch_at_s=45, duration_s=120,
        )
        assert result.finding("escalations") == 0
        assert result.finding("growth_ratio") == pytest.approx(2.0, abs=0.35)
        assert result.finding("adaptation_delay_s") <= 60


class TestFig11:
    def test_dss_injection_small(self):
        result = run_fig11_dss_injection(
            oltp_clients=10, dss_rows=60_000,
            inject_at_s=45, acquisition_duration_s=15,
            hold_duration_s=10, duration_s=150,
        )
        assert result.finding("exclusive_escalations") == 0
        assert result.finding("growth_factor") >= 2.0
        assert result.finding("query_completed")
        # one application was allowed to dominate lock memory
        assert result.finding("min_maxlocks_percent") < 98.0


class TestFig12:
    def test_reduction_small(self):
        # before_clients must exceed 64 so the steady allocation sits
        # above the 2 MB floor and has room to relax after the drop.
        result = run_fig12_reduction(
            before_clients=130, after_clients=30,
            drop_at_s=60, duration_s=330,
        )
        assert result.finding("escalations") == 0
        assert result.finding("reduction_ratio") < 0.8
        assert result.finding("shrink_intervals") >= 3
        assert 0.01 <= result.finding("mean_per_interval_reduction") <= 0.15
