"""The offline wait-profile report (repro.analysis.waitprofile)."""

import json

import pytest

from repro.analysis.waitprofile import analyze_run
from repro.obs.audit import TuningAuditRecord
from repro.obs.events import RunTelemetry
from repro.obs.incidents import IncidentRecord
from repro.obs.registry import (
    WALL_CLOCK_BUCKETS_S,
    MetricRegistry,
)
from repro.obs.waits import WAIT_CLASSES, WAIT_SECONDS_METRIC
from repro.service.cli import main as cli_main


def wait_record(cls="lock.granted", app=2, t=1.0, dur=0.5, blocker=None, depth=0):
    return {
        "class": cls,
        "app": app,
        "t": t,
        "duration_s": dur,
        "resource": "row(0,1)",
        "mode": "X",
        "blocker": blocker,
        "blocker_mode": "X" if blocker is not None else "",
        "depth": depth,
        "note": "",
    }


def audit_record(interval, t, reason):
    return TuningAuditRecord(
        interval=interval, time=t, reason=reason, delta_pages=0,
        current_pages=32, target_pages=32, used_pages=0, free_fraction=0.6,
        overflow_pages=0, escalations_in_interval=0, lmo_headroom_pages=0,
    )


def make_telemetry(**overrides):
    defaults = dict(
        label="run",
        registry=MetricRegistry(),
        waits=[],
        incidents=[],
        audit=[],
    )
    defaults.update(overrides)
    return RunTelemetry(**defaults)


class TestBreakdownSources:
    def test_histograms_preferred_and_summed_across_shards(self):
        registry = MetricRegistry()
        for shard in ("0", "1"):
            hist = registry.histogram(
                WAIT_SECONDS_METRIC,
                bounds=WALL_CLOCK_BUCKETS_S,
                labels={"shard": shard, "class": "lock.granted"},
            )
            hist.observe(0.25)
        report = analyze_run(
            make_telemetry(registry=registry, waits=[wait_record(dur=99.0)])
        )
        assert report.breakdown_source == "histograms"
        entry = report.wait_breakdown["lock.granted"]
        assert entry["count"] == 2
        assert entry["seconds"] == pytest.approx(0.5)
        assert report.notes == []

    def test_ring_fallback_flagged(self):
        report = analyze_run(
            make_telemetry(
                waits=[
                    wait_record("lock.granted", dur=0.5),
                    wait_record("admission", dur=0.1),
                ]
            )
        )
        assert report.breakdown_source == "ring"
        assert report.wait_breakdown["lock.granted"]["count"] == 1
        assert report.wait_breakdown["admission"]["seconds"] == pytest.approx(0.1)
        assert any("ring" in note for note in report.notes)

    def test_empty_stream(self):
        report = analyze_run(make_telemetry())
        assert report.breakdown_source == "none"
        assert all(
            v == {"count": 0, "seconds": 0.0}
            for v in report.wait_breakdown.values()
        )
        assert set(report.wait_breakdown) == set(WAIT_CLASSES)


class TestBlockers:
    def test_top_blockers_ranked_by_blocked_seconds(self):
        waits = [
            wait_record("lock.granted", app=1, dur=0.1, blocker=9),
            wait_record("lock.timeout", app=2, dur=0.7, blocker=8, depth=2),
            wait_record("lock.granted", app=3, dur=0.2, blocker=9),
            wait_record("admission", app=4, dur=5.0),  # not a lock wait
            wait_record("lock.granted", app=5, dur=0.3),  # no blocker
        ]
        report = analyze_run(make_telemetry(waits=waits))
        assert [b.app_id for b in report.top_blockers] == [8, 9]
        worst = report.top_blockers[0]
        assert worst.waits_caused == 1
        assert worst.blocked_seconds == pytest.approx(0.7)
        assert worst.max_depth == 2
        second = report.top_blockers[1]
        assert second.waits_caused == 2
        assert second.blocked_seconds == pytest.approx(0.3)

    def test_top_n_truncates(self):
        waits = [
            wait_record("lock.granted", app=i, dur=0.1 * i, blocker=100 + i)
            for i in range(1, 9)
        ]
        report = analyze_run(make_telemetry(waits=waits), top_n=3)
        assert len(report.top_blockers) == 3
        assert report.raw_wait_events == 8


class TestConvergence:
    def test_converged_at_last_non_noop(self):
        audit = [
            audit_record(1, 30.0, "grow-async"),
            audit_record(2, 60.0, "shrink-5pct"),
            audit_record(3, 90.0, "noop"),
            audit_record(4, 120.0, "noop"),
        ]
        report = analyze_run(make_telemetry(audit=audit))
        assert report.converged_at == 60.0
        assert report.audit_reasons == {
            "grow-async": 1, "shrink-5pct": 1, "noop": 2
        }

    def test_never_acted(self):
        report = analyze_run(
            make_telemetry(audit=[audit_record(1, 30.0, "noop")])
        )
        assert report.converged_at is None

    def test_incident_counts(self):
        incidents = [
            IncidentRecord("deadlock", 1.0, 2, 0, "cycle"),
            IncidentRecord("deadlock", 2.0, 3, 0, "cycle"),
            IncidentRecord("escalation", 3.0, 2, 0, "maxlocks"),
        ]
        report = analyze_run(make_telemetry(incidents=incidents))
        assert report.incident_counts["deadlock"] == 2
        assert report.incident_counts["escalation"] == 1
        assert report.incident_counts["tuner-freeze"] == 0


class TestRendering:
    def make_report(self):
        return analyze_run(
            make_telemetry(
                waits=[
                    wait_record("lock.granted", app=1, dur=0.5, blocker=9),
                    wait_record("latch", app=-1, dur=0.1),
                ],
                audit=[audit_record(1, 30.0, "grow-async")],
                incidents=[IncidentRecord("deadlock", 1.0, 2, 0, "cycle")],
            )
        )

    def test_text_report_sections(self):
        text = self.make_report().render_text()
        assert "wait-time breakdown" in text
        assert "lock.granted" in text
        assert "top blockers" in text
        assert "9" in text
        assert "tuner convergence" in text
        assert "last action at t=30.000s" in text
        assert "deadlock=1" in text

    def test_to_dict_is_json_serializable(self):
        payload = json.loads(json.dumps(self.make_report().to_dict()))
        assert payload["breakdown_source"] == "ring"
        assert payload["top_blockers"][0]["app"] == 9
        assert payload["converged_at"] == 30.0

    def test_empty_report_renders(self):
        text = analyze_run(make_telemetry()).render_text()
        assert "(no waits recorded)" in text
        assert "(no attributed lock waits)" in text
        assert "tuner never acted" in text


class TestJsonlRoundTrip:
    def test_analyze_after_round_trip(self, tmp_path):
        telemetry = make_telemetry(
            label="round-trip",
            waits=[wait_record("lock.granted", app=1, dur=0.5, blocker=9)],
            audit=[audit_record(1, 30.0, "grow-async")],
            incidents=[IncidentRecord("deadlock", 1.0, 2, 0, "cycle", [2, 1])],
        )
        path = tmp_path / "run.jsonl"
        telemetry.write_jsonl(str(path))
        loaded = RunTelemetry.from_jsonl(str(path))
        report = analyze_run(loaded)
        assert report.label == "round-trip"
        assert report.top_blockers[0].app_id == 9
        assert report.converged_at == 30.0
        assert report.incident_counts["deadlock"] == 1


class TestCli:
    def write_stream(self, tmp_path):
        telemetry = make_telemetry(
            label="cli-run",
            waits=[wait_record("lock.granted", app=1, dur=0.5, blocker=9)],
            audit=[audit_record(1, 30.0, "grow-async")],
        )
        path = tmp_path / "run.jsonl"
        telemetry.write_jsonl(str(path))
        return str(path)

    def test_analyze_text(self, tmp_path, capsys):
        path = self.write_stream(tmp_path)
        assert cli_main(["analyze", path]) == 0
        out = capsys.readouterr().out
        assert "wait profile: cli-run" in out
        assert "top blockers" in out

    def test_analyze_json(self, tmp_path, capsys):
        path = self.write_stream(tmp_path)
        assert cli_main(["analyze", path, "--json", "--top", "2"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert reports[0]["label"] == "cli-run"
        assert reports[0]["top_blockers"][0]["app"] == 9

    def test_analyze_missing_file_errors(self, tmp_path, capsys):
        assert cli_main(["analyze", str(tmp_path / "nope.jsonl")]) == 1
        assert "analyze:" in capsys.readouterr().err
