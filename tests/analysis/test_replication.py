"""Tests for replicated experiment aggregation."""

import pytest

from repro.analysis.experiment import ExperimentResult
from repro.analysis.replication import FindingStat, replicate
from repro.engine.metrics import MetricsRecorder


def fake_scenario(seed: int) -> ExperimentResult:
    result = ExperimentResult("fake", MetricsRecorder())
    result.findings["growth"] = 2.0 + seed * 0.1
    result.findings["escalations"] = 0
    result.findings["completed"] = True  # boolean: not aggregated
    result.findings["label"] = "x"  # string: not aggregated
    return result


class TestFindingStat:
    def test_single_value(self):
        stat = FindingStat("x", [5.0])
        assert stat.mean == 5.0
        assert stat.stddev == 0.0
        assert stat.ci95() == 0.0

    def test_mean_and_stddev(self):
        stat = FindingStat("x", [1.0, 2.0, 3.0])
        assert stat.mean == 2.0
        assert stat.stddev == pytest.approx(1.0)

    def test_ci95_uses_t_quantile(self):
        stat = FindingStat("x", [1.0, 2.0, 3.0])
        # t(df=2) = 4.303; ci = 4.303 * 1 / sqrt(3)
        assert stat.ci95() == pytest.approx(4.303 / 3**0.5, rel=1e-3)

    def test_str_mentions_range(self):
        text = str(FindingStat("growth", [1.0, 3.0]))
        assert "growth" in text and "1.000..3.000" in text


class TestReplicate:
    def test_aggregates_numeric_findings_only(self):
        summary = replicate(fake_scenario, seeds=range(4))
        assert set(summary.stats) == {"growth", "escalations"}
        assert summary.stat("growth").n == 4

    def test_mean_matches_inputs(self):
        summary = replicate(fake_scenario, seeds=[0, 2])
        assert summary.stat("growth").mean == pytest.approx(2.1)

    def test_consistent_predicate(self):
        summary = replicate(fake_scenario, seeds=range(3))
        assert summary.consistent("escalations", lambda v: v == 0)
        assert not summary.consistent("growth", lambda v: v > 2.05)

    def test_unknown_stat_lists_available(self):
        summary = replicate(fake_scenario, seeds=[1])
        with pytest.raises(KeyError, match="growth"):
            summary.stat("nope")

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(fake_scenario, seeds=[])

    def test_report_format(self):
        summary = replicate(fake_scenario, seeds=range(2))
        report = summary.report()
        assert "[fake] 2 replications" in report
        assert "growth" in report


class TestRealScenarioReplication:
    def test_surge_ratio_stable_across_seeds(self):
        """The fig10 growth ratio of ~2.0 holds for any seed, because it
        is driven by the minLockMemory formula, not by noise."""
        from repro.analysis.scenarios import run_fig10_surge

        summary = replicate(
            lambda seed: run_fig10_surge(
                seed=seed, before_clients=50, after_clients=130,
                switch_at_s=45, duration_s=110,
            ),
            seeds=range(3),
        )
        assert summary.stat("growth_ratio").mean == pytest.approx(2.0, abs=0.2)
        assert summary.consistent("escalations", lambda v: v == 0)
