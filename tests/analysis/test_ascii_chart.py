"""Tests for ASCII chart rendering."""

from repro.analysis.ascii_chart import render_series, render_two_series
from repro.engine.metrics import TimeSeries


def make_series(name="s", n=50):
    series = TimeSeries(name)
    for t in range(n):
        series.append(float(t), float(t % 10))
    return series


class TestRenderSeries:
    def test_dimensions(self):
        text = render_series(make_series(), width=40, height=8)
        lines = text.splitlines()
        # top border + 8 rows + bottom border + time axis
        assert len(lines) == 11
        body = lines[1:-2]
        assert all(len(line) == 13 + 1 + 40 + 1 for line in body)

    def test_title_included(self):
        text = render_series(make_series(), title="Figure 9")
        assert text.startswith("Figure 9")

    def test_contains_glyphs(self):
        assert "*" in render_series(make_series())

    def test_constant_series_no_crash(self):
        series = TimeSeries("flat")
        for t in range(10):
            series.append(t, 5.0)
        text = render_series(series)
        assert "*" in text

    def test_empty_series_no_crash(self):
        assert render_series(TimeSeries("empty"))

    def test_scale_labels(self):
        series = TimeSeries("x")
        series.append(0, 100.0)
        series.append(10, 900.0)
        text = render_series(series)
        assert "900.0" in text
        assert "100.0" in text


class TestRenderTwoSeries:
    def test_legend_names_both(self):
        a, b = make_series("throughput"), make_series("lock_pages")
        text = render_two_series(a, b)
        assert "throughput" in text
        assert "lock_pages" in text

    def test_both_glyphs_present(self):
        a = make_series("a")
        b = TimeSeries("b")
        for t in range(50):
            b.append(float(t), float(50 - t))
        text = render_two_series(a, b, glyph_a="*", glyph_b="o")
        assert "*" in text and "o" in text
