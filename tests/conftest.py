"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.engine.des import Environment
from repro.engine.database import Database, DatabaseConfig
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def small_chain() -> LockBlockChain:
    """A chain with 2 blocks of 8 slots each (tiny, easy to fill)."""
    return LockBlockChain(initial_blocks=2, capacity_per_block=8)


@pytest.fixture
def manager(env) -> LockManager:
    """A lock manager over a realistic small chain (4 blocks)."""
    return LockManager(env, LockBlockChain(initial_blocks=4))


def make_database(
    seed: int = 0,
    policy=None,
    total_memory_pages: int = 16_384,  # 64 MB
    **config_overrides,
) -> Database:
    """A small, fast database instance for tests."""
    config = DatabaseConfig(
        total_memory_pages=total_memory_pages,
        initial_locklist_pages=config_overrides.pop("initial_locklist_pages", 128),
        **config_overrides,
    )
    return Database(seed=seed, config=config, policy=policy)


def run_process(env: Environment, generator, until=None):
    """Run one generator as a process to completion; return its value.

    Raises whatever the process raised.
    """
    process = env.process(generator)
    env.run(until=until)
    if process.is_alive:
        raise AssertionError("process did not finish before the deadline")
    if not process.ok:
        raise process.value
    return process.value
