"""The public API surface: everything exported must import and resolve."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.engine",
    "repro.lockmgr",
    "repro.memory",
    "repro.workloads",
    "repro.analysis",
    "repro.baselines",
    "repro.scenarios",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_entries_resolve(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", [])
        assert exported, f"{package_name} must declare __all__"
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_version_present(self):
        import repro

        assert repro.__version__

    def test_quickstart_snippet_from_readme(self):
        """The README's quickstart must stay runnable verbatim."""
        from repro import Database
        from repro.workloads import ClientSchedule, OltpWorkload

        db = Database(seed=42)
        workload = OltpWorkload(db, ClientSchedule.constant(5))
        workload.start()
        db.run(until=20)
        assert db.metrics["lock_pages"].last > 0
        assert db.lock_manager.stats.escalations.count == 0

    def test_module_docstrings_everywhere(self):
        """Every module ships a docstring (the documentation deliverable)."""
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            module_name = (
                "repro."
                + str(path.relative_to(root))[:-3].replace("/", ".")
            ).rstrip(".")
            module_name = module_name.replace(".__init__", "")
            module = importlib.import_module(module_name)
            assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_public_classes_documented(self):
        """Every public class and function in __all__ carries a docstring."""
        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                if name.startswith("__"):
                    continue
                obj = getattr(package, name)
                if callable(obj):
                    assert obj.__doc__, f"{package_name}.{name} lacks a docstring"
