"""Failure injection: the system must stay consistent when parts fail.

Each test injects a fault -- a crashing growth provider, a misbehaving
tuner, an interrupted client, an abandoned transaction -- and asserts
that lock-manager and memory accounting remain exact afterwards.
"""

import pytest

from repro.engine.des import Environment, Interrupt
from repro.errors import LockManagerError, MemoryAccountingError
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig
from tests.conftest import make_database, run_process


class TestGrowthProviderFaults:
    def test_provider_exception_propagates_but_state_consistent(self, env):
        calls = {"n": 0}

        def faulty(blocks):
            calls["n"] += 1
            raise RuntimeError("allocation backend down")

        chain = LockBlockChain(initial_blocks=1, capacity_per_block=4)
        manager = LockManager(env, chain, growth_provider=faulty)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        with pytest.raises(RuntimeError, match="backend down"):
            run_process(env, proc())
        assert calls["n"] == 1
        manager.release_all(1)
        manager.check_invariants()
        assert chain.used_slots == 0

    def test_provider_negative_grant_rejected(self, env):
        chain = LockBlockChain(initial_blocks=1, capacity_per_block=4)
        manager = LockManager(env, chain, growth_provider=lambda b: -1)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        with pytest.raises(LockManagerError):
            run_process(env, proc())
        manager.release_all(1)
        manager.check_invariants()

    def test_provider_lying_about_grant_size_is_contained(self, env):
        """A provider granting more than asked: extra blocks are simply
        added; accounting stays exact."""
        chain = LockBlockChain(initial_blocks=1, capacity_per_block=4)
        manager = LockManager(env, chain, growth_provider=lambda b: b + 3)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        manager.check_invariants()
        assert manager.app_row_lock_count(1) == 10


class TestClientFaults:
    def test_interrupted_waiter_recovers_via_release_all(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=2))

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(50)
            manager.release_all(1)

        def victim():
            try:
                yield from manager.lock_row(2, 0, 7, LockMode.X)
            except Interrupt:
                manager.release_all(2)
                return "cleaned-up"

        env.process(holder())
        victim_proc = env.process(victim())

        def killer():
            yield env.timeout(5)
            victim_proc.interrupt("client disconnected")

        env.process(killer())
        env.run(until=100)
        assert victim_proc.value == "cleaned-up"
        manager.check_invariants()
        assert manager.chain.used_slots == 0
        assert manager.waiting_apps() == set()

    def test_crashing_transaction_leaves_recoverable_state(self, env):
        """A client that dies without cleanup leaks its locks (as a real
        crashed agent would) -- until release_all reclaims them."""
        manager = LockManager(env, LockBlockChain(initial_blocks=2))

        def crasher():
            yield from manager.lock_row(1, 0, 1, LockMode.X)
            yield from manager.lock_row(1, 0, 2, LockMode.X)
            raise RuntimeError("agent crash")

        with pytest.raises(RuntimeError):
            run_process(env, crasher())
        manager.check_invariants()  # consistent even while leaked
        assert manager.app_slots(1) == 3
        manager.release_all(1)  # crash recovery
        assert manager.chain.used_slots == 0

    def test_database_survives_client_churn_with_contention(self):
        """Stress: aggressive churn + contention + rollbacks, then a
        full-invariant sweep."""
        from repro.engine.client import ClientPool
        from repro.engine.transactions import TransactionMix
        from repro.workloads.schedule import ClientSchedule

        db = make_database(seed=77)
        mix = TransactionMix(
            locks_per_txn_mean=15, write_fraction=0.8,
            update_lock_fraction=0.3, num_tables=2, rows_per_table=40,
            think_time_mean_s=0.01, work_time_per_lock_s=0.01,
        )
        pool = ClientPool(db, mix)
        schedule = ClientSchedule([(0, 8), (15, 1), (30, 10), (45, 0), (60, 6)])
        db.env.process(schedule.drive(pool))
        db.run(until=120)
        db.check_invariants()
        for obj in db.lock_manager._objects.values():
            obj.check_invariants()
        assert db.rollbacks > 0  # the contention really was hostile


class TestStmmFaults:
    def _registry(self):
        registry = DatabaseMemoryRegistry(10_000, overflow_goal_pages=500)
        registry.register(
            MemoryHeap("bufferpool", HeapCategory.PMC, 5_000,
                       min_pages=1_000, benefit=lambda h: 1.0)
        )
        registry.register(MemoryHeap("locklist", HeapCategory.FMC, 500))
        return registry

    def test_tuner_exception_propagates_and_accounting_holds(self):
        registry = self._registry()
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))

        class ExplodingTuner:
            heap_name = "locklist"

            def compute_target_pages(self):
                raise RuntimeError("tuner bug")

            def grow_physical(self, pages):
                return pages

            def shrink_physical(self, pages):
                return pages

            def on_interval_end(self, now):
                pass

        stmm.register_deterministic_tuner(ExplodingTuner())
        with pytest.raises(RuntimeError, match="tuner bug"):
            stmm.tune(0.0)
        assert sum(registry.snapshot().values()) == registry.total_pages

    def test_tuner_refusing_physical_growth_hands_pages_back(self):
        registry = self._registry()
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))

        class RefusingTuner:
            heap_name = "locklist"

            def compute_target_pages(self):
                return 2_000

            def grow_physical(self, pages):
                return 0  # physical layer refuses everything

            def shrink_physical(self, pages):
                return 0

            def on_interval_end(self, now):
                pass

        stmm.register_deterministic_tuner(RefusingTuner())
        stmm.tune(0.0)
        # the grant was fully returned: nothing leaked
        assert registry.heap("locklist").size_pages == 500
        assert sum(registry.snapshot().values()) == registry.total_pages

    def test_registry_detects_accounting_corruption(self):
        registry = self._registry()
        heap = registry.heap("bufferpool")
        heap._size_pages = 20_000  # corrupt it behind the registry's back
        with pytest.raises(MemoryAccountingError):
            registry.overflow_pages
