"""Failure injection: the system must stay consistent when parts fail.

Each test injects a fault -- a crashing growth provider, a misbehaving
tuner, an interrupted client, an abandoned transaction -- and asserts
that lock-manager and memory accounting remain exact afterwards.
"""

import pytest

from repro.engine.des import Environment, Interrupt
from repro.errors import LockManagerError, MemoryAccountingError
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig
from tests.conftest import make_database, run_process


class TestGrowthProviderFaults:
    def test_provider_exception_propagates_but_state_consistent(self, env):
        calls = {"n": 0}

        def faulty(blocks):
            calls["n"] += 1
            raise RuntimeError("allocation backend down")

        chain = LockBlockChain(initial_blocks=1, capacity_per_block=4)
        manager = LockManager(env, chain, growth_provider=faulty)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        with pytest.raises(RuntimeError, match="backend down"):
            run_process(env, proc())
        assert calls["n"] == 1
        manager.release_all(1)
        manager.check_invariants()
        assert chain.used_slots == 0

    def test_provider_negative_grant_rejected(self, env):
        chain = LockBlockChain(initial_blocks=1, capacity_per_block=4)
        manager = LockManager(env, chain, growth_provider=lambda b: -1)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        with pytest.raises(LockManagerError):
            run_process(env, proc())
        manager.release_all(1)
        manager.check_invariants()

    def test_provider_lying_about_grant_size_is_contained(self, env):
        """A provider granting more than asked: extra blocks are simply
        added; accounting stays exact."""
        chain = LockBlockChain(initial_blocks=1, capacity_per_block=4)
        manager = LockManager(env, chain, growth_provider=lambda b: b + 3)

        def proc():
            for row in range(10):
                yield from manager.lock_row(1, 0, row, LockMode.S)

        run_process(env, proc())
        manager.check_invariants()
        assert manager.app_row_lock_count(1) == 10


class TestClientFaults:
    def test_interrupted_waiter_recovers_via_release_all(self, env):
        manager = LockManager(env, LockBlockChain(initial_blocks=2))

        def holder():
            yield from manager.lock_row(1, 0, 7, LockMode.X)
            yield env.timeout(50)
            manager.release_all(1)

        def victim():
            try:
                yield from manager.lock_row(2, 0, 7, LockMode.X)
            except Interrupt:
                manager.release_all(2)
                return "cleaned-up"

        env.process(holder())
        victim_proc = env.process(victim())

        def killer():
            yield env.timeout(5)
            victim_proc.interrupt("client disconnected")

        env.process(killer())
        env.run(until=100)
        assert victim_proc.value == "cleaned-up"
        manager.check_invariants()
        assert manager.chain.used_slots == 0
        assert manager.waiting_apps() == set()

    def test_crashing_transaction_leaves_recoverable_state(self, env):
        """A client that dies without cleanup leaks its locks (as a real
        crashed agent would) -- until release_all reclaims them."""
        manager = LockManager(env, LockBlockChain(initial_blocks=2))

        def crasher():
            yield from manager.lock_row(1, 0, 1, LockMode.X)
            yield from manager.lock_row(1, 0, 2, LockMode.X)
            raise RuntimeError("agent crash")

        with pytest.raises(RuntimeError):
            run_process(env, crasher())
        manager.check_invariants()  # consistent even while leaked
        assert manager.app_slots(1) == 3
        manager.release_all(1)  # crash recovery
        assert manager.chain.used_slots == 0

    def test_database_survives_client_churn_with_contention(self):
        """Stress: aggressive churn + contention + rollbacks, then a
        full-invariant sweep."""
        from repro.engine.client import ClientPool
        from repro.engine.transactions import TransactionMix
        from repro.workloads.schedule import ClientSchedule

        db = make_database(seed=77)
        mix = TransactionMix(
            locks_per_txn_mean=15, write_fraction=0.8,
            update_lock_fraction=0.3, num_tables=2, rows_per_table=40,
            think_time_mean_s=0.01, work_time_per_lock_s=0.01,
        )
        pool = ClientPool(db, mix)
        schedule = ClientSchedule([(0, 8), (15, 1), (30, 10), (45, 0), (60, 6)])
        db.env.process(schedule.drive(pool))
        db.run(until=120)
        db.check_invariants()
        for obj in db.lock_manager._objects.values():
            obj.check_invariants()
        assert db.rollbacks > 0  # the contention really was hostile


class TestStmmFaults:
    def _registry(self):
        registry = DatabaseMemoryRegistry(10_000, overflow_goal_pages=500)
        registry.register(
            MemoryHeap("bufferpool", HeapCategory.PMC, 5_000,
                       min_pages=1_000, benefit=lambda h: 1.0)
        )
        registry.register(MemoryHeap("locklist", HeapCategory.FMC, 500))
        return registry

    def test_tuner_exception_propagates_and_accounting_holds(self):
        registry = self._registry()
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))

        class ExplodingTuner:
            heap_name = "locklist"

            def compute_target_pages(self):
                raise RuntimeError("tuner bug")

            def grow_physical(self, pages):
                return pages

            def shrink_physical(self, pages):
                return pages

            def on_interval_end(self, now):
                pass

        stmm.register_deterministic_tuner(ExplodingTuner())
        with pytest.raises(RuntimeError, match="tuner bug"):
            stmm.tune(0.0)
        assert sum(registry.snapshot().values()) == registry.total_pages

    def test_tuner_refusing_physical_growth_hands_pages_back(self):
        registry = self._registry()
        stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))

        class RefusingTuner:
            heap_name = "locklist"

            def compute_target_pages(self):
                return 2_000

            def grow_physical(self, pages):
                return 0  # physical layer refuses everything

            def shrink_physical(self, pages):
                return 0

            def on_interval_end(self, now):
                pass

        stmm.register_deterministic_tuner(RefusingTuner())
        stmm.tune(0.0)
        # the grant was fully returned: nothing leaked
        assert registry.heap("locklist").size_pages == 500
        assert sum(registry.snapshot().values()) == registry.total_pages

    def test_registry_detects_accounting_corruption(self):
        registry = self._registry()
        heap = registry.heap("bufferpool")
        heap._size_pages = 20_000  # corrupt it behind the registry's back
        with pytest.raises(MemoryAccountingError):
            registry.overflow_pages


class TestServiceFaults:
    """Failure injection against the live (threaded) service stack."""

    def _make_stack(self, tuner_interval_s=0.02):
        from repro.service.stack import ServiceConfig, ServiceStack

        return ServiceStack(
            ServiceConfig(
                total_memory_pages=8_192,
                initial_locklist_pages=32,
                tuner_interval_s=tuner_interval_s,
            )
        )

    def test_tuner_thread_crash_freezes_size_with_exact_accounting(self):
        """The tuning thread dies mid-run: the service degrades to a
        frozen (static-LOCKLIST) size, keeps serving lock traffic, and
        every layer's accounting stays byte-exact."""
        import time

        from repro.service.driver import LoadDriver

        stack = self._make_stack()
        passes = {"n": 0}
        original = stack.controller.compute_target_pages

        def eventually_explodes():
            passes["n"] += 1
            if passes["n"] >= 3:
                # before any page moves this pass: no partial side effects
                raise RuntimeError("tuner heap walk segfault")
            return original()

        stack.controller.compute_target_pages = eventually_explodes
        with stack:
            pages_when_frozen = {}

            def watch():
                deadline = time.monotonic() + 30.0
                while stack.tuner.alive and time.monotonic() < deadline:
                    time.sleep(0.005)
                pages_when_frozen["pages"] = stack.chain.allocated_pages

            import threading

            watcher = threading.Thread(target=watch, daemon=True)
            watcher.start()
            report = LoadDriver(
                stack, threads=4, requests_per_thread=1_500, seed=23
            ).run()
            watcher.join(30.0)

        assert report.worker_errors == []
        # the crash really happened and degraded the stack to frozen
        assert isinstance(stack.tuner.crash, RuntimeError)
        assert stack.tuner.frozen
        assert stack.service.frozen_reason is not None
        assert stack.service.manager.growth_provider is None
        assert stack.service.manager.maxlocks_provider is None
        # frozen means frozen: no resize after the crash (tuning was the
        # only grower here -- growth_provider is detached)
        assert stack.chain.allocated_pages == pages_when_frozen["pages"]
        # exact accounting after the full crash + load run
        assert stack.chain.used_slots == 0
        assert (
            stack.registry.heap("locklist").size_pages
            == stack.chain.allocated_pages
        )
        stack.check_invariants()

    def test_cancelled_client_releases_admission_slot_no_orphan(self):
        """A client thread cancelled mid-wait must free its admission
        slot and leave no orphaned waiter in the lock manager."""
        import threading
        import time

        from repro.errors import RequestCancelledError
        from repro.lockmgr.modes import LockMode

        stack = self._make_stack(tuner_interval_s=30.0)
        admission = stack.admission
        service = stack.service
        with stack:
            holder = service.open_session()
            service.lock_row(holder, 0, 7, LockMode.X)
            outcome = {}
            victim_app = service.open_session()

            def victim():
                admission.acquire()
                try:
                    service.lock_row(victim_app, 0, 7, LockMode.X)
                    outcome["result"] = "granted"
                except RequestCancelledError:
                    outcome["result"] = "cancelled"
                    service.rollback(victim_app)
                finally:
                    admission.release()

            thread = threading.Thread(target=victim, daemon=True)
            thread.start()
            deadline = time.monotonic() + 30.0
            while (
                victim_app not in service.waiting_sessions()
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            assert admission.in_flight() == 1
            assert service.cancel(victim_app, "client disconnected")
            thread.join(30.0)
            assert not thread.is_alive()

            assert outcome["result"] == "cancelled"
            # the admission slot came back ...
            assert admission.in_flight() == 0
            assert admission.stats.completed == 1
            # ... and no orphaned waiter or stray slot remains
            assert service.manager.waiting_apps() == set()
            assert service.manager.app_slots(victim_app) == 0
            service.close_session(victim_app)
            service.close_session(holder)
            assert stack.chain.used_slots == 0
        stack.check_invariants()
