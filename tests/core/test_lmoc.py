"""Tests for the LMOC (on-disk configuration) distinction, section 3.3.

"The on-disk configuration will be denoted by LMOC ... The in-memory
allocation is allowed to grow beyond the LMOC as a transient effect to
support sudden growth requirements."
"""

from repro.core.controller import LockMemoryController
from repro.core.params import TuningParameters
from repro.lockmgr.blocks import LockBlockChain
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig
from repro.units import PAGES_PER_BLOCK


def build():
    registry = DatabaseMemoryRegistry(131_072, overflow_goal_pages=4_096)
    registry.register(
        MemoryHeap("bufferpool", HeapCategory.PMC, 65_536,
                   min_pages=8_192, benefit=lambda h: 1.0)
    )
    registry.register(MemoryHeap("locklist", HeapCategory.FMC, 16 * PAGES_PER_BLOCK))
    chain = LockBlockChain(initial_blocks=16)
    controller = LockMemoryController(registry, chain, TuningParameters())
    stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
    stmm.register_deterministic_tuner(controller)
    return registry, chain, controller, stmm


class TestLmoc:
    def test_initially_matches_allocation(self):
        _registry, chain, controller, _stmm = build()
        assert controller.lmoc_pages == chain.allocated_pages
        assert controller.transient_overage_pages == 0

    def test_sync_growth_exceeds_lmoc_transiently(self):
        """Mid-interval synchronous growth raises the in-memory
        allocation above the persisted configuration."""
        _registry, chain, controller, _stmm = build()
        granted = controller.sync_grow(4)
        chain.add_blocks(granted)
        assert granted == 4
        assert chain.allocated_pages > controller.lmoc_pages
        assert controller.transient_overage_pages == 4 * PAGES_PER_BLOCK

    def test_interval_externalizes_lmoc(self):
        """At the next tuning interval LMOC catches up (and LMO resets)."""
        _registry, chain, controller, stmm = build()
        granted = controller.sync_grow(4)
        chain.add_blocks(granted)
        stmm.tune(30.0)
        assert controller.lmoc_pages == chain.allocated_pages
        assert controller.transient_overage_pages == 0
        assert controller.lmo_pages == 0

    def test_async_resize_keeps_lmoc_in_step(self):
        """Purely asynchronous resizes never leave LMOC stale for more
        than the interval that performed them."""
        _registry, chain, controller, stmm = build()
        handles = [chain.allocate_slot() for _ in range(20_000)]
        stmm.tune(30.0)
        assert controller.lmoc_pages == chain.allocated_pages
        for handle in handles:
            chain.free_slot(handle)
        for t in range(2, 40):
            stmm.tune(t * 30.0)
            assert controller.lmoc_pages == chain.allocated_pages
