"""Tests for Table 1 parameters and the section 3.2 formulas."""

import pytest

from repro.core.params import TuningParameters
from repro.errors import ConfigurationError
from repro.units import MB, PAGES_PER_BLOCK


class TestDefaultsMatchTable1:
    def test_free_band(self):
        params = TuningParameters()
        assert params.min_free_fraction == 0.50
        assert params.max_free_fraction == 0.60

    def test_delta_reduce_is_five_percent(self):
        assert TuningParameters().delta_reduce == 0.05

    def test_c1_is_65_percent(self):
        assert TuningParameters().c1_overflow_fraction == 0.65

    def test_max_lock_memory_is_20_percent(self):
        assert TuningParameters().max_lock_memory_fraction == 0.20

    def test_compiler_view_is_10_percent(self):
        assert TuningParameters().sql_compiler_fraction == 0.10

    def test_maxlocks_curve_constants(self):
        params = TuningParameters()
        assert params.maxlocks_p == 98.0
        assert params.maxlocks_exponent == 3.0
        assert params.maxlocks_floor == 1.0

    def test_refresh_period_is_0x80(self):
        assert TuningParameters().refresh_period_requests == 0x80

    def test_min_lock_memory_constants(self):
        params = TuningParameters()
        assert params.min_lock_memory_floor_bytes == 2 * MB
        assert params.min_locks_per_application == 500


class TestValidation:
    def test_inverted_free_band_rejected(self):
        with pytest.raises(ConfigurationError):
            TuningParameters(min_free_fraction=0.7, max_free_fraction=0.6)

    def test_c1_of_one_rejected(self):
        """C1 < 1 so overflow is never fully consumed (section 3.2)."""
        with pytest.raises(ConfigurationError):
            TuningParameters(c1_overflow_fraction=1.0)

    def test_zero_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            TuningParameters(delta_reduce=0.0)

    def test_bad_maxlocks_floor(self):
        with pytest.raises(ConfigurationError):
            TuningParameters(maxlocks_floor=0.0)

    def test_negative_exponent(self):
        with pytest.raises(ConfigurationError):
            TuningParameters(maxlocks_exponent=-1)


class TestMinLockMemory:
    def test_floor_dominates_few_applications(self):
        """minLockMemory = MAX(2MB, 500 * locksize * num_applications)."""
        params = TuningParameters()
        # 10 apps: 500 * 64 * 10 = 320 KB < 2 MB -> floor wins
        assert params.min_lock_memory_pages(10) == 512  # 2 MB in pages

    def test_per_application_term_dominates_many(self):
        params = TuningParameters()
        # 130 apps: 500 * 64 * 130 = 4.16 MB = 1,015.6 pages -> 1,024 (blocks)
        assert params.min_lock_memory_pages(130) == 1_024

    def test_rounded_to_blocks(self):
        params = TuningParameters()
        for apps in (0, 1, 17, 130, 1000):
            assert params.min_lock_memory_pages(apps) % PAGES_PER_BLOCK == 0

    def test_negative_apps_rejected(self):
        with pytest.raises(ValueError):
            TuningParameters().min_lock_memory_pages(-1)


class TestMaxLockMemory:
    def test_20_percent_of_database_memory(self):
        params = TuningParameters()
        # 512 MB database -> 131072 pages -> max = 26214 -> block-rounded up
        assert params.max_lock_memory_pages(131_072) == 26_240

    def test_rounded_to_blocks(self):
        params = TuningParameters()
        assert params.max_lock_memory_pages(99_999) % PAGES_PER_BLOCK == 0

    def test_zero_database_memory_rejected(self):
        with pytest.raises(ValueError):
            TuningParameters().max_lock_memory_pages(0)


class TestCompilerView:
    def test_10_percent(self):
        assert TuningParameters().sql_compiler_lock_memory_pages(131_072) == 13_107


class TestLmoMax:
    def test_c1_of_overflow_plus_lmo(self):
        """LMOmax = C1 * (database overflow memory + LMO)."""
        params = TuningParameters()
        assert params.lmo_max_pages(overflow_pages=1_000, lmo_pages=0) == 650
        # lock memory already took 400 from overflow: the base is restored
        assert params.lmo_max_pages(overflow_pages=600, lmo_pages=400) == 650

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TuningParameters().lmo_max_pages(-1, 0)


class TestFrozen:
    def test_immutable(self):
        params = TuningParameters()
        with pytest.raises(AttributeError):
            params.delta_reduce = 0.5
