"""Tests for the adaptive lockPercentPerApplication curve (section 3.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maxlocks import AdaptiveMaxlocks, lock_percent_per_application
from repro.core.params import TuningParameters
from repro.errors import ConfigurationError


class TestCurveValues:
    def test_unconstrained_at_zero(self):
        """P(0) = 98: 'initially hardly unconstrained (98%)'."""
        assert lock_percent_per_application(0.0) == 98.0

    def test_half_used(self):
        # 98 * (1 - 0.5^3) = 98 * 0.875 = 85.75
        assert lock_percent_per_application(50.0) == pytest.approx(85.75)

    def test_aggressive_attenuation_beyond_75(self):
        """'aggressive attenuation when lock memory is more than 75% used'."""
        at75 = lock_percent_per_application(75.0)
        at90 = lock_percent_per_application(90.0)
        assert at75 == pytest.approx(98 * (1 - 0.75**3))  # ~56.66
        assert at90 == pytest.approx(98 * (1 - 0.9**3))  # ~26.56
        # slope beyond 75% is much steeper than below
        assert (at75 - at90) / 15 > (98 - at75) / 75

    def test_floors_at_one_at_maximum(self):
        """'dropping down to 1 when lock memory is 100% of its maximum'."""
        assert lock_percent_per_application(100.0) == 1.0

    def test_clamps_above_100(self):
        assert lock_percent_per_application(150.0) == 1.0

    def test_clamps_below_zero(self):
        assert lock_percent_per_application(-10.0) == 98.0

    @settings(max_examples=100, deadline=None)
    @given(x=st.floats(min_value=0, max_value=100))
    def test_bounded(self, x):
        value = lock_percent_per_application(x)
        assert 1.0 <= value <= 98.0

    @settings(max_examples=100, deadline=None)
    @given(a=st.floats(0, 100), b=st.floats(0, 100))
    def test_monotone_decreasing(self, a, b):
        lo, hi = sorted((a, b))
        assert lock_percent_per_application(lo) >= lock_percent_per_application(hi)

    def test_custom_parameters(self):
        assert lock_percent_per_application(50, p=50, exponent=1, floor=5) == 25.0
        assert lock_percent_per_application(100, p=50, exponent=1, floor=5) == 5.0


class TestAdaptiveMaxlocks:
    def _make(self, allocated=1_000, maximum=10_000, params=None):
        return AdaptiveMaxlocks(
            params or TuningParameters(),
            allocated_pages=lambda: allocated,
            max_lock_memory_pages=lambda: maximum,
        )

    def test_used_percent(self):
        assert self._make(2_500, 10_000).used_percent_of_max() == 25.0

    def test_percent_tracks_curve(self):
        adaptive = self._make(5_000, 10_000)
        assert adaptive.percent() == pytest.approx(85.75)

    def test_fraction_is_percent_over_100(self):
        adaptive = self._make(5_000, 10_000)
        assert adaptive.fraction() == pytest.approx(0.8575)

    def test_live_telemetry(self):
        state = {"allocated": 0}
        adaptive = AdaptiveMaxlocks(
            TuningParameters(),
            allocated_pages=lambda: state["allocated"],
            max_lock_memory_pages=lambda: 10_000,
        )
        assert adaptive.percent() == 98.0
        state["allocated"] = 10_000
        assert adaptive.percent() == 1.0

    def test_zero_max_rejected(self):
        adaptive = self._make(maximum=0)
        with pytest.raises(ConfigurationError):
            adaptive.used_percent_of_max()

    def test_transient_overshoot_clamped(self):
        adaptive = self._make(allocated=12_000, maximum=10_000)
        assert adaptive.percent() == 1.0
