"""Tests for the stabilized SQL compiler view of lock memory (section 3.6)."""

import pytest

from repro.core.optimizer import LockGranularity, QueryOptimizer
from repro.core.params import TuningParameters


def make_optimizer(database_memory_pages=131_072):
    return QueryOptimizer(TuningParameters(), database_memory_pages)


class TestCompilerView:
    def test_view_is_ten_percent(self):
        optimizer = make_optimizer()
        assert optimizer.compiler_lock_memory_pages() == 13_107

    def test_budget_in_structures(self):
        optimizer = make_optimizer()
        # 13,107 pages * 4096 / 64 bytes per structure
        assert optimizer.compiler_lock_budget_structures() == 13_107 * 64

    def test_view_independent_of_runtime_state(self):
        """The compiler sees a *stable* value: two optimizers over the
        same databaseMemory agree regardless of any runtime churn."""
        a = make_optimizer()
        b = make_optimizer()
        assert (
            a.compiler_lock_memory_pages() == b.compiler_lock_memory_pages()
        )


class TestGranularityChoice:
    def test_small_statement_compiles_to_row_locking(self):
        choice = make_optimizer().choose_lock_granularity(10_000)
        assert choice.granularity is LockGranularity.ROW

    def test_fits_even_when_instantaneous_memory_tiny(self):
        """A statement needing far more than today's allocation but less
        than the compiler view still compiles to row locking -- the
        runtime tuner gets its chance to avoid escalation."""
        choice = make_optimizer().choose_lock_granularity(500_000)
        assert choice.granularity is LockGranularity.ROW

    def test_huge_statement_compiles_to_table_locking(self):
        optimizer = make_optimizer()
        too_many = optimizer.compiler_lock_budget_structures() + 1
        choice = optimizer.choose_lock_granularity(too_many)
        assert choice.granularity is LockGranularity.TABLE
        assert "unavoidable" in choice.reason

    def test_budget_boundary(self):
        optimizer = make_optimizer()
        budget = int(optimizer.compiler_lock_budget_structures() * 0.98)
        assert (
            optimizer.choose_lock_granularity(budget).granularity
            is LockGranularity.ROW
        )

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            make_optimizer().choose_lock_granularity(-1)
