"""Tests for tuning-policy wiring."""

import pytest

from repro.core.policy import AdaptiveLockMemoryPolicy, NoTuningPolicy
from repro.core.params import TuningParameters
from tests.conftest import make_database


class TestAdaptivePolicy:
    def test_attach_wires_growth_and_maxlocks(self):
        policy = AdaptiveLockMemoryPolicy()
        db = make_database(policy=policy)
        assert db.lock_manager.growth_provider == policy.controller.sync_grow
        assert db.lock_manager.maxlocks_provider == policy.maxlocks.fraction
        assert db.lock_manager.refresh_period == 0x80

    def test_attach_registers_stmm_tuner(self):
        policy = AdaptiveLockMemoryPolicy()
        db = make_database(policy=policy)
        assert any(
            t.heap_name == "locklist" for t in db.stmm._tuners
        )

    def test_initial_maxlocks_near_98(self):
        db = make_database(policy=AdaptiveLockMemoryPolicy())
        # tiny allocation far from maxLockMemory -> essentially 98%
        assert db.lock_manager.maxlocks_fraction == pytest.approx(0.98, abs=0.01)

    def test_custom_params_flow_through(self):
        params = TuningParameters(refresh_period_requests=7)
        db = make_database(policy=AdaptiveLockMemoryPolicy(params))
        assert db.lock_manager.refresh_period == 7

    def test_fixed_maxlocks_variant(self):
        policy = AdaptiveLockMemoryPolicy(fixed_maxlocks_fraction=0.10)
        db = make_database(policy=policy)
        assert db.lock_manager.maxlocks_fraction == pytest.approx(0.10)
        # growth still adaptive
        assert db.lock_manager.growth_provider == policy.controller.sync_grow

    def test_invalid_fixed_fraction_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveLockMemoryPolicy(fixed_maxlocks_fraction=0.0)

    def test_describe_mentions_band(self):
        assert "50%" in AdaptiveLockMemoryPolicy().describe()


class TestNoTuningPolicy:
    def test_attach_disables_hooks(self):
        db = make_database(policy=NoTuningPolicy())
        assert db.lock_manager.growth_provider is None
        assert db.lock_manager.maxlocks_provider is None
