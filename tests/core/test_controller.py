"""Tests for the adaptive lock memory controller (sections 3.2-3.4)."""

import pytest

from repro.core.controller import LockMemoryController
from repro.core.params import TuningParameters
from repro.errors import MemoryAccountingError
from repro.lockmgr.blocks import LockBlockChain
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.units import LOCKS_PER_BLOCK, PAGES_PER_BLOCK


def build(
    total_pages=131_072,
    locklist_blocks=16,
    overflow_goal=2_000,
    num_apps=0,
    escalations=None,
    params=None,
):
    registry = DatabaseMemoryRegistry(total_pages, overflow_goal_pages=overflow_goal)
    registry.register(
        MemoryHeap("bufferpool", HeapCategory.PMC, total_pages // 2,
                   min_pages=total_pages // 10, benefit=lambda h: 1.0)
    )
    registry.register(
        MemoryHeap("locklist", HeapCategory.FMC,
                   locklist_blocks * PAGES_PER_BLOCK)
    )
    chain = LockBlockChain(initial_blocks=locklist_blocks)
    escalation_box = escalations if escalations is not None else {"count": 0}
    controller = LockMemoryController(
        registry,
        chain,
        params=params or TuningParameters(),
        num_applications=lambda: num_apps,
        escalation_count=lambda: escalation_box["count"],
    )
    return registry, chain, controller, escalation_box


def fill_slots(chain, count):
    return [chain.allocate_slot() for _ in range(count)]


class TestTargetComputation:
    def test_hold_inside_free_band(self):
        _, chain, controller, _ = build(locklist_blocks=16)
        # 45% used -> 55% free, inside [50%, 60%]: no change
        fill_slots(chain, int(chain.capacity_slots * 0.45))
        target = controller.compute_target_pages()
        assert target == chain.allocated_pages
        assert controller.decisions[-1].reason == "hold"

    def test_grow_when_free_below_min(self):
        """targetSize satisfies the minFreeLockMemory objective."""
        _, chain, controller, _ = build(locklist_blocks=16)
        fill_slots(chain, int(chain.capacity_slots * 0.70))  # only 30% free
        target = controller.compute_target_pages()
        assert controller.decisions[-1].reason == "grow-to-min-free"
        # used must be at most half the new target
        assert controller.used_pages() / target <= 0.5 + 0.05

    def test_shrink_when_free_above_max(self):
        _, chain, controller, _ = build(locklist_blocks=32, num_apps=0)
        fill_slots(chain, int(chain.capacity_slots * 0.05))
        target = controller.compute_target_pages()
        current = chain.allocated_pages
        assert controller.decisions[-1].reason == "shrink-delta-reduce"
        # 5% of current, rounded to nearest blocks (32 blocks -> 1.6 -> 2)
        assert target == current - 2 * PAGES_PER_BLOCK

    def test_shrink_never_overshoots_max_free_state(self):
        params = TuningParameters(delta_reduce=0.99)
        _, chain, controller, _ = build(locklist_blocks=32, params=params)
        fill_slots(chain, int(chain.capacity_slots * 0.30))
        target = controller.compute_target_pages()
        used = controller.used_pages()
        # at the target, free fraction stays <= maxFree (used >= 40%)
        assert used / target >= (1 - params.max_free_fraction) - 0.05

    def test_minimum_bound_applies(self):
        # 130 applications: minLockMemory = 4.16 MB = 1024 pages (32 blocks)
        _, chain, controller, _ = build(locklist_blocks=4, num_apps=130)
        target = controller.compute_target_pages()
        assert target >= 1_024

    def test_maximum_bound_applies(self):
        _, chain, controller, _ = build(total_pages=131_072, locklist_blocks=16)
        fill_slots(chain, chain.capacity_slots)  # 0% free -> huge growth ask
        for _ in range(40):
            target = controller.compute_target_pages()
        assert target <= controller.max_lock_memory_pages()

    def test_target_block_aligned(self):
        _, chain, controller, _ = build(locklist_blocks=16, num_apps=37)
        fill_slots(chain, int(chain.capacity_slots * 0.71))
        target = controller.compute_target_pages()
        assert target % PAGES_PER_BLOCK == 0


class TestEscalationDoubling:
    def test_doubles_while_escalations_continue(self):
        _, chain, controller, box = build(locklist_blocks=8)
        fill_slots(chain, int(chain.capacity_slots * 0.55))
        box["count"] = 3  # escalations since the last interval
        target = controller.compute_target_pages()
        assert controller.decisions[-1].reason == "escalation-doubling"
        assert target == 2 * chain.allocated_pages

    def test_doubling_capped_at_max(self):
        _, chain, controller, box = build(total_pages=4_096, locklist_blocks=12)
        box["count"] = 1
        target = controller.compute_target_pages()
        assert target <= controller.max_lock_memory_pages()

    def test_no_doubling_after_interval_rollover(self):
        _, chain, controller, box = build(locklist_blocks=8)
        fill_slots(chain, int(chain.capacity_slots * 0.45))  # inside band
        box["count"] = 3
        controller.on_interval_end(30.0)  # snapshot taken
        controller.compute_target_pages()
        assert controller.decisions[-1].reason == "hold"

    def test_doubling_disabled_by_params(self):
        params = TuningParameters(escalation_doubling=False)
        _, chain, controller, box = build(locklist_blocks=8, params=params)
        fill_slots(chain, int(chain.capacity_slots * 0.45))  # inside band
        box["count"] = 3
        controller.compute_target_pages()
        assert controller.decisions[-1].reason == "hold"


class TestPhysicalResize:
    def test_grow_physical_whole_blocks(self):
        _, chain, controller, _ = build(locklist_blocks=4)
        achieved = controller.grow_physical(3 * PAGES_PER_BLOCK + 7)
        assert achieved == 3 * PAGES_PER_BLOCK
        assert chain.block_count == 7

    def test_shrink_physical_only_empty_blocks(self):
        _, chain, controller, _ = build(locklist_blocks=4)
        handles = fill_slots(chain, 2 * LOCKS_PER_BLOCK + 1)  # 3 blocks touched
        achieved = controller.shrink_physical(4 * PAGES_PER_BLOCK)
        assert achieved == 1 * PAGES_PER_BLOCK
        for handle in handles:
            chain.free_slot(handle)


class TestSyncGrow:
    def test_grants_from_overflow(self):
        registry, chain, controller, _ = build(locklist_blocks=4)
        heap_before = registry.heap("locklist").size_pages
        overflow_before = registry.overflow_pages
        granted = controller.sync_grow(2)
        assert granted == 2
        assert registry.heap("locklist").size_pages == heap_before + 64
        assert registry.overflow_pages == overflow_before - 64
        assert controller.lmo_pages == 64

    def test_respects_max_lock_memory(self):
        registry, chain, controller, _ = build(
            total_pages=8_192, locklist_blocks=50
        )
        # maxLockMemory = 20% of 8192 = 1638 -> 1664 block-rounded;
        # 50 blocks = 1600 pages: only 2 more blocks allowed
        granted = controller.sync_grow(10)
        assert granted == 2
        chain.add_blocks(granted)  # the lock manager does this in real use
        assert controller.sync_grow(1) == 0
        assert controller.sync_growth_denials == 1

    def test_respects_lmo_max(self):
        params = TuningParameters()
        registry, chain, controller, _ = build(locklist_blocks=4)
        overflow = registry.overflow_pages
        lmo_cap_blocks = int(0.65 * overflow) // PAGES_PER_BLOCK
        granted = controller.sync_grow(10_000)
        total_granted = granted
        while granted:
            granted = controller.sync_grow(10_000)
            total_granted += granted
        assert total_granted <= lmo_cap_blocks
        # C1 < 1: overflow is never fully consumed
        assert registry.overflow_pages > 0

    def test_lmo_resets_each_interval(self):
        registry, chain, controller, _ = build(locklist_blocks=4)
        controller.sync_grow(2)
        assert controller.lmo_pages == 64
        controller.on_interval_end(30.0)
        assert controller.lmo_pages == 0

    def test_invalid_request_rejected(self):
        _, _, controller, _ = build()
        with pytest.raises(ValueError):
            controller.sync_grow(0)


class TestConsistency:
    def test_check_consistency_passes_when_aligned(self):
        _, _, controller, _ = build()
        controller.check_consistency()

    def test_check_consistency_detects_divergence(self):
        _, chain, controller, _ = build()
        chain.add_blocks(1)  # chain grew without the heap
        with pytest.raises(MemoryAccountingError):
            controller.check_consistency()

    def test_decision_log_records_context(self):
        _, chain, controller, _ = build(locklist_blocks=16, num_apps=7)
        fill_slots(chain, 100)
        controller.compute_target_pages()
        decision = controller.decisions[-1]
        assert decision.current_pages == chain.allocated_pages
        assert decision.min_pages == controller.min_lock_memory_pages()
        assert decision.max_pages == controller.max_lock_memory_pages()
