"""Section 3.5: MAXLOCKS recomputed on every resize, async included."""

from repro.core.policy import AdaptiveLockMemoryPolicy
from repro.workloads.replay import LockDemandReplay
from tests.conftest import make_database


class TestResizeRefresh:
    def test_controller_hook_wired_by_policy(self):
        db = make_database(policy=AdaptiveLockMemoryPolicy())
        controller = db.policy.controller
        assert controller.on_resize == db.lock_manager.refresh_maxlocks

    def test_async_grow_refreshes_maxlocks(self):
        db = make_database(policy=AdaptiveLockMemoryPolicy())
        controller = db.policy.controller
        before = db.lock_manager.maxlocks_fraction
        # a large asynchronous grant moves x visibly
        granted = controller.grow_physical(
            controller.max_lock_memory_pages() // 2
        )
        db.registry.grow_heap("locklist", granted, partial=True)
        assert db.lock_manager.maxlocks_fraction < before

    def test_async_shrink_refreshes_maxlocks(self):
        db = make_database(policy=AdaptiveLockMemoryPolicy())
        controller = db.policy.controller
        granted = controller.grow_physical(
            controller.max_lock_memory_pages() // 2
        )
        db.registry.grow_heap("locklist", granted, partial=True)
        squeezed = db.lock_manager.maxlocks_fraction
        freed = controller.shrink_physical(granted)
        db.registry.shrink_heap("locklist", freed)
        assert db.lock_manager.maxlocks_fraction > squeezed

    def test_maxlocks_tracks_interval_resizes_without_requests(self):
        """The bug this hook fixes: lock memory doubled by the async
        tuner while every application merely *holds* its locks -- no new
        requests flow, yet the externalized MAXLOCKS must follow x."""
        db = make_database(policy=AdaptiveLockMemoryPolicy(), seed=83)
        replay = LockDemandReplay(db, [(1, 30_000)], batch_size=2_048)
        replay.start()
        db.run(until=120)  # several intervals pass while locks are held
        controller = db.policy.controller
        expected = db.policy.maxlocks.fraction()
        assert db.lock_manager.maxlocks_fraction == expected
