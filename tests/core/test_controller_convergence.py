"""Property tests: the controller + STMM loop under arbitrary demand.

These drive the full asynchronous loop (controller as deterministic
tuner inside a real STMM over a real registry and block chain) through
randomly generated lock-demand trajectories and check the invariants the
paper's design implies:

* the allocation always stays within [minLockMemory, maxLockMemory],
* the allocation is always block-aligned and never below usage,
* the registry's page accounting never leaks,
* once demand stabilizes, the allocation converges to the free band
  (or one of the hard bounds) and then stops changing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import LockMemoryController
from repro.core.params import TuningParameters
from repro.lockmgr.blocks import LockBlockChain
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig
from repro.units import PAGES_PER_BLOCK


def build_loop(total_pages=65_536):
    registry = DatabaseMemoryRegistry(total_pages, overflow_goal_pages=4_096)
    registry.register(
        MemoryHeap("bufferpool", HeapCategory.PMC, total_pages // 2,
                   min_pages=total_pages // 16,
                   benefit=lambda h: 1_000.0 / h.size_pages)
    )
    registry.register(MemoryHeap("locklist", HeapCategory.FMC, 4 * PAGES_PER_BLOCK))
    chain = LockBlockChain(initial_blocks=4)
    controller = LockMemoryController(registry, chain, TuningParameters())
    stmm = Stmm(registry, StmmConfig(pmc_rebalance_fraction=0))
    stmm.register_deterministic_tuner(controller)
    return registry, chain, controller, stmm


class SlotDriver:
    """Drives chain usage to arbitrary slot counts, growing via the
    controller's synchronous path when the chain is full -- exactly the
    way the lock manager does."""

    def __init__(self, chain, controller):
        self.chain = chain
        self.controller = controller
        self.handles = []
        self.denied = 0

    def set_used(self, target):
        while len(self.handles) < target:
            if self.chain.free_slots == 0:
                granted = self.controller.sync_grow(1)
                if granted == 0:
                    self.denied += 1
                    return  # memory pressure: real system would escalate
                self.chain.add_blocks(granted)
            self.handles.append(self.chain.allocate_slot())
        while len(self.handles) > target:
            self.chain.free_slot(self.handles.pop())


class TestRandomTrajectories:
    @settings(max_examples=40, deadline=None)
    @given(
        demands=st.lists(st.integers(0, 200_000), min_size=1, max_size=25)
    )
    def test_invariants_along_any_trajectory(self, demands):
        registry, chain, controller, stmm = build_loop()
        driver = SlotDriver(chain, controller)
        now = 0.0
        for demand in demands:
            driver.set_used(demand)
            now += 30.0
            stmm.tune(now)
            controller.check_consistency()
            chain.check_invariants()
            # bounds (the transient in-memory allocation may sit above
            # the async ceiling only via sync growth, which is itself
            # capped at maxLockMemory)
            assert chain.allocated_pages <= controller.max_lock_memory_pages()
            assert chain.allocated_pages % PAGES_PER_BLOCK == 0
            assert chain.free_slots >= 0
            # page accounting never leaks
            assert (
                sum(registry.snapshot().values()) == registry.total_pages
            )

    @settings(max_examples=25, deadline=None)
    @given(demand=st.integers(0, 120_000))
    def test_convergence_under_stable_demand(self, demand):
        registry, chain, controller, stmm = build_loop()
        driver = SlotDriver(chain, controller)
        driver.set_used(demand)
        now = 0.0
        for _ in range(80):  # plenty of intervals to converge
            now += 30.0
            stmm.tune(now)
        settled = chain.allocated_pages
        for _ in range(5):  # and then it must hold still
            now += 30.0
            stmm.tune(now)
            assert chain.allocated_pages == settled
        params = controller.params
        free = chain.free_fraction()
        at_min = settled <= controller.min_lock_memory_pages()
        at_max = settled >= controller.max_lock_memory_pages()
        in_band = (
            params.min_free_fraction - 0.05
            <= free
            <= params.max_free_fraction + 0.05
        )
        # one block of slack around the band for rounding
        near_band_boundary = demand == 0 or abs(
            free - params.max_free_fraction
        ) * chain.capacity_slots <= 2 * 2048
        assert in_band or at_min or at_max or near_band_boundary

    @settings(max_examples=25, deadline=None)
    @given(
        spike=st.integers(50_000, 150_000),
        baseline=st.integers(0, 10_000),
    )
    def test_spike_then_relaxation(self, spike, baseline):
        """After any spike-and-slump, the allocation strictly decreases
        interval by interval until it reaches its settled level."""
        registry, chain, controller, stmm = build_loop()
        driver = SlotDriver(chain, controller)
        now = 0.0
        driver.set_used(spike)
        now += 30.0
        stmm.tune(now)
        driver.set_used(baseline)
        trail = [chain.allocated_pages]
        for _ in range(100):
            now += 30.0
            stmm.tune(now)
            trail.append(chain.allocated_pages)
            if len(trail) >= 2 and trail[-1] == trail[-2]:
                break
        # monotone non-increasing relaxation
        assert all(b <= a for a, b in zip(trail, trail[1:]))
        # and each step is at most ~delta_reduce of the current size
        for a, b in zip(trail, trail[1:]):
            if b < a:
                assert a - b <= max(
                    PAGES_PER_BLOCK,
                    round(a * controller.params.delta_reduce / PAGES_PER_BLOCK)
                    * PAGES_PER_BLOCK,
                )
