"""Tests for the learning query optimizer (section 6.1 future work)."""

import pytest

from repro.core.learning import LearningQueryOptimizer
from repro.core.optimizer import LockGranularity
from repro.core.params import TuningParameters
from repro.errors import ConfigurationError


def make(smoothing=0.5):
    return LearningQueryOptimizer(
        TuningParameters(), database_memory_pages=131_072, smoothing=smoothing
    )


class TestValidation:
    def test_bad_smoothing_rejected(self):
        with pytest.raises(ConfigurationError):
            make(smoothing=0.0)

    def test_negative_estimates_rejected(self):
        optimizer = make()
        with pytest.raises(ValueError):
            optimizer.effective_estimate("q1", -1)
        with pytest.raises(ValueError):
            optimizer.observe_execution("q1", 10, -1)


class TestColdStart:
    def test_uses_apriori_estimate_before_feedback(self):
        optimizer = make()
        assert optimizer.effective_estimate("q1", 1_234) == 1_234

    def test_no_stats_before_feedback(self):
        assert make().statement_stats("q1") is None

    def test_no_benefit_before_two_executions(self):
        optimizer = make()
        assert optimizer.learning_benefit("q1") is None
        optimizer.observe_execution("q1", 100, 500)
        assert optimizer.learning_benefit("q1") is None


class TestLearning:
    def test_converges_to_actuals(self):
        optimizer = make(smoothing=0.5)
        for _ in range(12):
            optimizer.observe_execution("q1", estimated_rows=100,
                                        actual_locks=10_000)
        assert optimizer.effective_estimate("q1", 100) == pytest.approx(
            10_000, rel=0.01
        )

    def test_smoothing_one_tracks_last(self):
        optimizer = make(smoothing=1.0)
        optimizer.observe_execution("q1", 100, 5_000)
        optimizer.observe_execution("q1", 100, 9_000)
        assert optimizer.effective_estimate("q1", 100) == 9_000

    def test_classes_are_independent(self):
        optimizer = make()
        optimizer.observe_execution("q1", 100, 50_000)
        assert optimizer.effective_estimate("q2", 100) == 100

    def test_benefit_positive_for_stable_misestimation(self):
        """A statement whose estimate is consistently 100x off: learning
        should remove nearly all the error."""
        optimizer = make(smoothing=0.7)
        for _ in range(10):
            optimizer.observe_execution("q1", 1_000, 100_000)
        benefit = optimizer.learning_benefit("q1")
        assert benefit is not None and benefit > 0.8


class TestPlanCorrection:
    def test_underestimated_statement_flips_to_table_lock(self):
        """The section 3.6 failure mode learning is meant to fix: a
        statement estimated small but actually locking more than even
        the compiler view can hold."""
        optimizer = make(smoothing=1.0)
        huge = optimizer.base.compiler_lock_budget_structures() * 2
        assert (
            optimizer.choose_lock_granularity("q1", 1_000).granularity
            is LockGranularity.ROW
        )
        optimizer.observe_execution("q1", 1_000, huge)
        corrected = optimizer.choose_lock_granularity("q1", 1_000)
        assert corrected.granularity is LockGranularity.TABLE
        assert "learned estimate" in corrected.reason

    def test_overestimated_statement_flips_to_row_lock(self):
        optimizer = make(smoothing=1.0)
        huge = optimizer.base.compiler_lock_budget_structures() * 2
        assert (
            optimizer.choose_lock_granularity("q2", huge).granularity
            is LockGranularity.TABLE
        )
        optimizer.observe_execution("q2", huge, 2_000)
        corrected = optimizer.choose_lock_granularity("q2", huge)
        assert corrected.granularity is LockGranularity.ROW

    def test_accurate_estimate_keeps_plain_reason(self):
        optimizer = make()
        choice = optimizer.choose_lock_granularity("q3", 500)
        assert "learned" not in choice.reason
