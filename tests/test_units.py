"""Tests for memory units and conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestConstants:
    def test_block_geometry(self):
        assert units.BLOCK_SIZE_BYTES == 128 * 1024
        assert units.PAGES_PER_BLOCK == 32
        assert units.PAGE_SIZE_BYTES == 4096

    def test_locks_per_block_approximately_2000(self):
        """Paper section 2.2: each 128 KB block stores ~2000 locks."""
        assert units.LOCKS_PER_BLOCK == 2048
        assert abs(units.LOCKS_PER_BLOCK - 2000) / 2000 < 0.05


class TestConversions:
    def test_bytes_to_pages_rounds_up(self):
        assert units.bytes_to_pages(1) == 1
        assert units.bytes_to_pages(4096) == 1
        assert units.bytes_to_pages(4097) == 2

    def test_pages_to_bytes(self):
        assert units.pages_to_bytes(2) == 8192

    def test_pages_to_blocks_rounds_up(self):
        assert units.pages_to_blocks(1) == 1
        assert units.pages_to_blocks(32) == 1
        assert units.pages_to_blocks(33) == 2

    def test_blocks_to_pages(self):
        assert units.blocks_to_pages(3) == 96

    def test_locks_to_blocks(self):
        assert units.locks_to_blocks(1) == 1
        assert units.locks_to_blocks(2048) == 1
        assert units.locks_to_blocks(2049) == 2

    def test_blocks_to_locks(self):
        assert units.blocks_to_locks(2) == 4096

    def test_round_pages_to_blocks(self):
        assert units.round_pages_to_blocks(0) == 0
        assert units.round_pages_to_blocks(1) == 32
        assert units.round_pages_to_blocks(96) == 96
        assert units.round_pages_to_blocks(97) == 128

    @given(pages=st.integers(0, 10**9))
    def test_block_rounding_idempotent(self, pages):
        rounded = units.round_pages_to_blocks(pages)
        assert rounded >= pages
        assert rounded % units.PAGES_PER_BLOCK == 0
        assert units.round_pages_to_blocks(rounded) == rounded

    @given(n=st.integers(0, 10**6))
    def test_roundtrips(self, n):
        assert units.blocks_to_pages(units.pages_to_blocks(n)) >= n

    def test_negative_rejected_everywhere(self):
        for fn in (
            units.bytes_to_pages,
            units.pages_to_bytes,
            units.pages_to_blocks,
            units.blocks_to_pages,
            units.locks_to_blocks,
            units.blocks_to_locks,
        ):
            with pytest.raises(ValueError):
                fn(-1)


class TestFormatting:
    def test_fmt_bytes(self):
        assert units.fmt_bytes(512) == "512B"
        assert units.fmt_bytes(2 * 1024) == "2.0KB"
        assert units.fmt_bytes(8 * 1024 * 1024) == "8.0MB"
        assert units.fmt_bytes(5.11 * 1024**3) == "5.1GB"

    def test_fmt_pages(self):
        assert units.fmt_pages(512) == "512p (2.0MB)"
