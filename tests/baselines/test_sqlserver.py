"""Tests for the SQL Server 2005 baseline policy."""

import pytest

from repro.baselines.sqlserver import SqlServer2005Policy
from repro.engine.des import Environment
from repro.lockmgr.modes import LockMode
from repro.units import LOCKS_PER_BLOCK, PAGES_PER_BLOCK
from tests.conftest import make_database, run_process


class TestInitialAllocation:
    def test_starts_with_room_for_2500_locks(self):
        db = make_database(policy=SqlServer2005Policy(), initial_locklist_pages=320)
        # 2500 locks -> 2 blocks of 2048
        assert db.chain.block_count == 2
        assert db.chain.capacity_slots >= 2_500

    def test_grows_initial_if_configured_smaller(self):
        db = make_database(policy=SqlServer2005Policy(), initial_locklist_pages=32)
        assert db.chain.block_count == 2


class TestGrowth:
    def test_grows_on_demand(self):
        db = make_database(policy=SqlServer2005Policy(), seed=1)

        def proc():
            for row in range(6_000):
                yield from db.lock_manager.lock_row(1, 0, row, LockMode.S)

        # 6,000 S row locks exceed 2 blocks: growth must occur, and the
        # 5000-per-app trigger escalates before or at 5000 locks.
        run_process(db.env, proc())
        assert db.chain.block_count > 2 or db.lock_manager.stats.escalations.count

    def test_never_shrinks(self):
        db = make_database(policy=SqlServer2005Policy(), seed=2)

        def proc():
            for row in range(3_000):
                yield from db.lock_manager.lock_row(1, 0, row, LockMode.S)

        run_process(db.env, proc())
        peak_blocks = db.chain.block_count
        db.lock_manager.release_all(1)
        db.run(until=200)  # several STMM intervals pass
        assert db.chain.block_count == peak_blocks  # memory is never returned

    def test_no_stmm_tuner(self):
        db = make_database(policy=SqlServer2005Policy())
        assert db.stmm._tuners == []


class TestPerAppTrigger:
    def test_5000_lock_trigger_escalates_single_app(self):
        """Paper: 'if a single application acquires 5000 row level locks
        an automatic lock escalation is triggered regardless of the
        amount of memory available for locks'."""
        db = make_database(policy=SqlServer2005Policy(), seed=3)

        def proc():
            for row in range(5_200):
                yield from db.lock_manager.lock_row(1, 0, row, LockMode.S)

        run_process(db.env, proc())
        stats = db.lock_manager.stats
        assert stats.escalations.count >= 1
        first = stats.escalations.outcomes[0]
        assert first.freed_slots <= 5_000
        assert db.lock_manager.app_row_lock_count(1) < 5_000

    def test_maxlocks_fraction_tracks_capacity(self):
        db = make_database(policy=SqlServer2005Policy())
        policy = db.policy
        small = policy._maxlocks_fraction()
        db.chain.add_blocks(20)
        large_capacity_fraction = policy._maxlocks_fraction()
        assert large_capacity_fraction < small


class TestEscalationThreshold:
    def test_growth_denied_at_40_percent_used(self):
        db = make_database(policy=SqlServer2005Policy())
        policy = db.policy
        # force "used" near 40% of database memory (free the pages from
        # the bufferpool first so overflow can cover the growth)
        needed_pages = int(0.41 * db.registry.total_pages)
        blocks = needed_pages // PAGES_PER_BLOCK
        db.registry.shrink_heap("bufferpool", blocks * PAGES_PER_BLOCK)
        db.registry.grow_heap("locklist", blocks * PAGES_PER_BLOCK)
        db.chain.add_blocks(blocks)
        for _ in range(int(blocks * LOCKS_PER_BLOCK)):
            db.chain.allocate_slot()
        assert policy._sync_grow(1) == 0

    def test_describe_mentions_triggers(self):
        text = SqlServer2005Policy().describe()
        assert "2500" in text and "5000" in text and "40%" in text
