"""Tests for the static LOCKLIST baseline."""

import pytest

from repro.baselines.static_locklist import StaticLocklistPolicy
from repro.errors import ConfigurationError
from tests.conftest import make_database


class TestConfiguration:
    def test_tiny_locklist_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticLocklistPolicy(locklist_pages=10)

    def test_bad_maxlocks_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticLocklistPolicy(maxlocks_fraction=0.0)


class TestAttach:
    def test_disables_growth_and_adaptation(self):
        db = make_database(policy=StaticLocklistPolicy(maxlocks_fraction=0.10))
        assert db.lock_manager.growth_provider is None
        assert db.lock_manager.maxlocks_provider is None
        assert db.lock_manager.maxlocks_fraction == 0.10

    def test_resizes_locklist_up(self):
        db = make_database(
            policy=StaticLocklistPolicy(locklist_pages=256),
            initial_locklist_pages=128,
        )
        assert db.chain.allocated_pages == 256
        assert db.registry.heap("locklist").size_pages == 256

    def test_resizes_locklist_down(self):
        db = make_database(
            policy=StaticLocklistPolicy(locklist_pages=96),
            initial_locklist_pages=256,
        )
        assert db.chain.allocated_pages == 96

    def test_rounds_to_blocks(self):
        db = make_database(
            policy=StaticLocklistPolicy(locklist_pages=100),
            initial_locklist_pages=128,
        )
        assert db.chain.allocated_pages == 128  # 100 -> 4 blocks

    def test_keeps_configured_size_when_none(self):
        db = make_database(policy=StaticLocklistPolicy(), initial_locklist_pages=160)
        assert db.chain.allocated_pages == 160

    def test_no_stmm_tuner_registered(self):
        db = make_database(policy=StaticLocklistPolicy())
        assert db.stmm._tuners == []

    def test_size_never_changes_during_run(self):
        from repro.engine.client import ClientPool
        from repro.engine.transactions import TransactionMix

        db = make_database(
            policy=StaticLocklistPolicy(locklist_pages=128), seed=3
        )
        pool = ClientPool(
            db,
            TransactionMix(locks_per_txn_mean=10, think_time_mean_s=0.05,
                           work_time_per_lock_s=0.002),
        )
        pool.set_target(5)
        db.run(until=70)
        assert db.metrics["lock_pages"].max() == 128
        assert db.metrics["lock_pages"].min() == 128

    def test_describe(self):
        policy = StaticLocklistPolicy(locklist_pages=96, maxlocks_fraction=0.10)
        assert "96 pages" in policy.describe()
        assert "10%" in policy.describe()
