"""Tests for the Oracle ITL page-locking model."""

import pytest

from repro.baselines.oracle_itl import ItlConfig, OracleItlTable
from repro.errors import ConfigurationError


class TestConfig:
    def test_defaults_valid(self):
        ItlConfig()

    def test_bad_slots_rejected(self):
        with pytest.raises(ConfigurationError):
            ItlConfig(initial_itl_slots=0)
        with pytest.raises(ConfigurationError):
            ItlConfig(initial_itl_slots=30, max_itl_slots=24)

    def test_zero_pages_rejected(self):
        with pytest.raises(ConfigurationError):
            OracleItlTable(num_pages=0)


class TestRowLocking:
    def test_lock_and_conflict(self):
        table = OracleItlTable(num_pages=1)
        assert table.lock_row(1, 0, 0)
        assert not table.lock_row(2, 0, 0)  # same row held
        assert table.row_conflicts == 1

    def test_relock_own_row(self):
        table = OracleItlTable(num_pages=1)
        assert table.lock_row(1, 0, 0)
        assert table.lock_row(1, 0, 0)

    def test_out_of_range_row_rejected(self):
        table = OracleItlTable(num_pages=1, config=ItlConfig(rows_per_page=10))
        with pytest.raises(ValueError):
            table.lock_row(1, 0, 10)

    def test_unknown_page_rejected(self):
        table = OracleItlTable(num_pages=1)
        with pytest.raises(KeyError):
            table.lock_row(1, 5, 0)


class TestItlExhaustion:
    def _small(self):
        # 2 initial slots, extendable once (24 bytes of free space)
        return OracleItlTable(
            num_pages=1,
            config=ItlConfig(
                initial_itl_slots=2, max_itl_slots=10, page_free_bytes=24
            ),
        )

    def test_blocks_free_rows_when_itl_full(self):
        """The paper's key criticism: ITL exhaustion blocks transactions
        wanting rows that nobody holds."""
        table = self._small()
        assert table.lock_row(1, 0, 0)
        assert table.lock_row(2, 0, 1)
        assert table.lock_row(3, 0, 2)  # uses the one extension slot
        assert not table.lock_row(4, 0, 3)  # free row, but no ITL slot
        assert table.itl_waits == 1
        assert table.row_conflicts == 0

    def test_maxtrans_caps_extension(self):
        table = OracleItlTable(
            num_pages=1,
            config=ItlConfig(
                initial_itl_slots=1, max_itl_slots=2, page_free_bytes=10_000
            ),
        )
        assert table.lock_row(1, 0, 0)
        assert table.lock_row(2, 0, 1)
        assert not table.lock_row(3, 0, 2)

    def test_commit_frees_itl_for_new_txns(self):
        table = self._small()
        for txn in range(3):
            assert table.lock_row(txn, 0, txn)
        table.commit(0)
        assert table.lock_row(99, 0, 9)


class TestPermanentOverhead:
    def test_itl_growth_is_permanent(self):
        """'the ITL section of that page increases and is not decreased
        until the table is reorganized'."""
        table = OracleItlTable(
            num_pages=1,
            config=ItlConfig(initial_itl_slots=2, max_itl_slots=10,
                             page_free_bytes=240),
        )
        before = table.disk_overhead_bytes()
        for txn in range(6):
            table.lock_row(txn, 0, txn)
        grown = table.disk_overhead_bytes()
        assert grown > before
        for txn in range(6):
            table.commit(txn)
        assert table.disk_overhead_bytes() == grown  # never shrinks

    def test_overhead_includes_lock_bytes_for_all_rows(self):
        config = ItlConfig(rows_per_page=50, initial_itl_slots=2)
        table = OracleItlTable(num_pages=3, config=config)
        expected = 3 * (50 * 1 + 2 * 24)
        assert table.disk_overhead_bytes() == expected

    def test_stale_lock_bytes_before_commit(self):
        table = OracleItlTable(num_pages=1)
        table.lock_row(1, 0, 0)
        table.lock_row(1, 0, 1)
        assert table.stale_lock_bytes() == 2
        table.commit(1)
        assert table.stale_lock_bytes() == 0

    def test_nothing_for_a_memory_tuner_to_tune(self):
        assert OracleItlTable(num_pages=1).tunable_memory_pages() == 0
