# Developer convenience targets for the repro library.

PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test test-fast bench bench-perf bench-perf-smoke bench-service figures examples telemetry-demo service-demo service-smoke service-smoke-sharded ops-smoke analyze-smoke broker-smoke matrix-smoke trace-smoke clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	$(PYTHONPATH_SRC) pytest tests/

test-fast:
	$(PYTHONPATH_SRC) pytest tests/ -x -q --ignore=tests/analysis/test_scenarios_small.py

bench:
	$(PYTHONPATH_SRC) pytest benchmarks/ --benchmark-only

# Core-hot-path microbenchmarks; writes BENCH_CORE.json at the repo
# root (the tracked perf trajectory -- see docs/PERFORMANCE.md).
bench-perf:
	$(PYTHONPATH_SRC) python -m benchmarks.perf.run --out BENCH_CORE.json

# CI-sized sanity run: every bench code path in seconds, no timing gates.
bench-perf-smoke:
	$(PYTHONPATH_SRC) python -m benchmarks.perf.run --scale smoke --repeats 1 --out /tmp/bench-smoke.json

# Regenerate every paper figure report into results/ via the CLI runner.
figures:
	$(PYTHONPATH_SRC) python -m repro.analysis.runner all --out-dir results/

examples:
	for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHONPATH_SRC) python $$script || exit 1; \
	done

# The Figure 9 ramp-up fully observed: JSONL stream + per-run report.
telemetry-demo:
	$(PYTHONPATH_SRC) python -m repro.analysis.runner fig9 \
		--telemetry /tmp/fig9-telemetry.jsonl --report

# The live (wall-clock, threaded) lock service with its tuning daemon.
service-demo:
	$(PYTHONPATH_SRC) python -m repro.service.cli demo

# Threaded stress with exact-accounting checks at shutdown (the CI job).
service-smoke:
	$(PYTHONPATH_SRC) python -m repro.service.cli stress --threads 8 --requests 2000

# Same stress through the sharded stack (4 shards + deadlock sweep).
service-smoke-sharded:
	$(PYTHONPATH_SRC) python -m repro.service.cli stress --threads 8 --requests 2000 --shards 4

# Live ops plane scraped from outside the process (the CI ops-smoke
# job): sharded stress with --ops-port, /metrics + /healthz + /stmm
# asserted over HTTP, then clean shutdown.
ops-smoke:
	$(PYTHONPATH_SRC) python scripts/ops_smoke.py

# Whole-memory broker stress under a deliberately undersized budget
# (the CI broker-smoke job): trade-benefit + pressure-throttle audit
# records asserted, byte-exact page accounting at shutdown.
broker-smoke:
	$(PYTHONPATH_SRC) python scripts/broker_smoke.py

# Record a wait-profiled stress run, then run the offline analysis
# plane over its telemetry (the CI analyze-smoke job).
analyze-smoke:
	$(PYTHONPATH_SRC) python -m repro.service.cli stress \
		--threads 4 --requests 500 --shards 2 \
		--wait-profile --span-sample 16 --telemetry /tmp/analyze-smoke.jsonl
	$(PYTHONPATH_SRC) python -m repro.service.cli analyze /tmp/analyze-smoke.jsonl
	$(PYTHONPATH_SRC) python -m repro.service.cli analyze /tmp/analyze-smoke.jsonl --json > /dev/null

# End-to-end distributed tracing over the 2-worker pool (the CI
# trace-smoke job): --net stress with 1-in-8 request tracing, /traces
# polled over HTTP until a complete multi-hop trace appears, hop names
# asserted against the closed vocabulary -- no timing gates.
trace-smoke:
	$(PYTHONPATH_SRC) python scripts/trace_smoke.py

# The 6-scenario mini grid through the scenario matrix engine (the CI
# matrix-smoke job): regimes, a sharded run, a DSS tenant, a demand
# replay and one chaos injection -- per-scenario verdicts, no timing
# gates.  Exit 0 iff every scenario is pass or expected-degraded.
matrix-smoke:
	$(PYTHONPATH_SRC) python -m repro.service.cli matrix run \
		--grid mini --out-dir /tmp/matrix-smoke

# Service throughput-vs-threads curves, unsharded and sharded; writes
# BENCH_SERVICE.json at the repo root (tracked alongside BENCH_CORE.json).
# Both families are measured in one run so the sharded-vs-unsharded
# ratio is apples-to-apples on the same machine state.
bench-service:
	$(PYTHONPATH_SRC) python -m benchmarks.perf.run \
		--bench service_churn_t1 --bench service_churn_t2 \
		--bench service_churn_t4 --bench service_churn_t8 \
		--bench service_churn_t8_ops --bench service_churn_t8_waits \
		--bench service_churn_t8_broker \
		--bench service_churn_sharded_t1 --bench service_churn_sharded_t2 \
		--bench service_churn_sharded_t4 --bench service_churn_sharded_t8 \
		--bench service_churn_net_w1 --bench service_churn_net_w2 \
		--bench service_churn_net_w2_traced \
		--bench service_churn_net_w4 \
		--bench scenario_matrix_mini \
		--out BENCH_SERVICE.json

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
