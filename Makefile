# Developer convenience targets for the repro library.

.PHONY: install test bench figures examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

test-fast:
	pytest tests/ -x -q --ignore=tests/analysis/test_scenarios_small.py

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every paper figure report into results/ via the CLI runner.
figures:
	python -m repro.analysis.runner all --out-dir results/

examples:
	for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
