"""repro: reproduction of "Optimizing Concurrency Through Automated Lock
Memory Tuning in DB2" (Lightstone, Eaton, Lee, Storm -- ICDE 2007).

The library simulates DB2 9's self-tuning lock memory end to end:

* :mod:`repro.engine` -- discrete-event simulation kernel, clients,
  transactions and the wired :class:`~repro.engine.database.Database`,
* :mod:`repro.memory` -- database shared memory, heaps, overflow area
  and the Self-Tuning Memory Manager,
* :mod:`repro.lockmgr` -- the 128 KB block chain, multi-granularity
  locking, convoys and escalation,
* :mod:`repro.core` -- the paper's contribution: the adaptive lock
  memory controller, the MAXLOCKS curve, Table 1 parameters and the
  stabilized optimizer view,
* :mod:`repro.baselines` -- static LOCKLIST, SQL Server 2005 and Oracle
  ITL comparators,
* :mod:`repro.workloads` -- OLTP / DSS / batch workload generators,
* :mod:`repro.obs` -- the unified observability layer: metric registry,
  latency histograms and the JSONL telemetry stream,
* :mod:`repro.analysis` -- the experiment harness regenerating every
  figure of the paper's evaluation.

Quickstart::

    from repro import Database, DatabaseConfig
    from repro.workloads import ClientSchedule, OltpWorkload

    db = Database(seed=42)
    workload = OltpWorkload(db, ClientSchedule.constant(50))
    workload.start()
    db.run(until=300)
    print(db.metrics["lock_pages"].last, "pages of lock memory")
"""

from repro.core.controller import LockMemoryController
from repro.core.learning import LearningQueryOptimizer
from repro.core.maxlocks import AdaptiveMaxlocks, lock_percent_per_application
from repro.core.optimizer import QueryOptimizer
from repro.core.params import TuningParameters
from repro.core.policy import AdaptiveLockMemoryPolicy, TuningPolicy
from repro.engine.database import Database, DatabaseConfig
from repro.engine.des import Environment
from repro.engine.metrics import MetricsRecorder, TimeSeries
from repro.lockmgr.isolation import IsolationLevel
from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode
from repro.lockmgr.tracing import LockTrace
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig
from repro.obs import Histogram, MetricRegistry, RunTelemetry
from repro.workloads.replay import LockDemandReplay

__version__ = "1.0.0"

__all__ = [
    "LockMemoryController",
    "LearningQueryOptimizer",
    "AdaptiveMaxlocks",
    "lock_percent_per_application",
    "QueryOptimizer",
    "TuningParameters",
    "AdaptiveLockMemoryPolicy",
    "TuningPolicy",
    "Database",
    "DatabaseConfig",
    "Environment",
    "MetricsRecorder",
    "TimeSeries",
    "IsolationLevel",
    "LockManager",
    "LockMode",
    "LockTrace",
    "DatabaseMemoryRegistry",
    "Stmm",
    "StmmConfig",
    "Histogram",
    "MetricRegistry",
    "RunTelemetry",
    "LockDemandReplay",
    "__version__",
]
