"""Deterministic random-stream management.

Every stochastic component of a simulation (each client, each workload
generator) draws from its own named :class:`random.Random` stream, derived
from a single experiment seed.  This gives two properties the experiment
harness relies on:

* **Reproducibility** -- a run is a pure function of its configuration
  and seed.
* **Variance isolation** -- changing one component (say, adding a DSS
  query) does not perturb the random draws of unrelated components, so
  before/after comparisons are paired.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """Factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The experiment master seed."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream seed is derived by hashing ``(master_seed, name)`` so
        that streams are statistically independent and stable across
        runs and platforms.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self._seed}/{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
