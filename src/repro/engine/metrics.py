"""Time-series recording for simulation experiments.

The experiment harness samples system state (lock memory allocated, locks
in use, throughput, escalation counts, heap sizes...) on a fixed cadence
and stores each quantity in a :class:`TimeSeries`.  A
:class:`MetricsRecorder` groups the series of one simulation run and
offers windowed aggregation helpers used by the figure benchmarks.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Append a sample; time must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"non-monotonic sample time for {self.name!r}: "
                f"{time} after {self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    @property
    def last(self) -> float:
        """Most recent value."""
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return self.values[-1]

    def at(self, time: float) -> float:
        """Value of the most recent sample at or before ``time``."""
        if not self.times:
            raise ValueError(f"series {self.name!r} is empty")
        lo, hi = 0, len(self.times) - 1
        if time < self.times[0]:
            raise ValueError(f"no sample at or before t={time} in {self.name!r}")
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.times[mid] <= time:
                lo = mid
            else:
                hi = mid - 1
        return self.values[lo]

    def window(self, start: float, end: float) -> "TimeSeries":
        """Sub-series of samples with ``start <= t <= end``."""
        out = TimeSeries(self.name)
        for t, v in self:
            if start <= t <= end:
                out.append(t, v)
        return out

    def max(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.values)

    def min(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return min(self.values)

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    def stddev(self) -> float:
        """Population standard deviation of the values."""
        mu = self.mean()
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / len(self.values))

    def time_weighted_mean(self) -> float:
        """Mean weighted by how long each sample was in force.

        Each value holds from its sample time until the next sample;
        with a single sample this degenerates to that value.  This is
        the right average for state series sampled on an uneven grid
        (memory held, connected clients), where a plain mean would
        over-weight bursts of dense samples.
        """
        if not self.values:
            raise ValueError(f"series {self.name!r} is empty")
        if len(self.values) == 1:
            return self.values[0]
        weighted = 0.0
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return self.mean()
        for i in range(len(self.values) - 1):
            weighted += self.values[i] * (self.times[i + 1] - self.times[i])
        mean = weighted / span
        # The true weighted mean always lies inside the value range, but
        # subnormal spans can underflow the products enough to land the
        # quotient outside it; clamp to restore the invariant.
        low, high = min(self.values), max(self.values)
        return min(max(mean, low), high)

    def delta(self) -> "TimeSeries":
        """Per-sample differences: useful to turn counters into rates."""
        out = TimeSeries(f"d_{self.name}")
        for i in range(1, len(self.times)):
            out.append(self.times[i], self.values[i] - self.values[i - 1])
        return out

    def rate(self) -> "TimeSeries":
        """Per-second rate of change between consecutive samples."""
        out = TimeSeries(f"rate_{self.name}")
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            if dt > 0:
                out.append(self.times[i], (self.values[i] - self.values[i - 1]) / dt)
        return out

    def smooth(self, half_window: int = 2) -> "TimeSeries":
        """Centred moving average with ``2*half_window + 1`` taps."""
        out = TimeSeries(f"smooth_{self.name}")
        n = len(self.values)
        for i in range(n):
            lo = max(0, i - half_window)
            hi = min(n, i + half_window + 1)
            out.append(self.times[i], sum(self.values[lo:hi]) / (hi - lo))
        return out

    def crossing_time(self, threshold: float, rising: bool = True) -> Optional[float]:
        """First sample time where the series crosses ``threshold``.

        With ``rising`` the first time the value is >= threshold is
        returned; otherwise the first time it is <= threshold.  Returns
        None if the series never crosses.
        """
        for t, v in self:
            if (rising and v >= threshold) or (not rising and v <= threshold):
                return t
        return None


class MetricsRecorder:
    """Groups the named time series of one simulation run."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str) -> TimeSeries:
        """Return (creating if needed) the series called ``name``."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def record(self, name: str, time: float, value: float) -> None:
        """Append one sample to the series called ``name``."""
        self.series(name).append(time, value)

    def record_many(self, time: float, samples: Dict[str, float]) -> None:
        """Append one sample per entry of ``samples`` at the same time."""
        for name, value in samples.items():
            self.record(name, time, value)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> List[str]:
        """Sorted names of all recorded series."""
        return sorted(self._series)

    def __getitem__(self, name: str) -> TimeSeries:
        if name not in self._series:
            raise KeyError(
                f"no series {name!r}; recorded series: {self.names()}"
            )
        return self._series[name]

    def to_rows(self) -> List[Tuple[float, Dict[str, float]]]:
        """Merge all series into rows keyed by sample time.

        Series sampled on the same cadence line up exactly; a missing
        value for a series at some time is omitted from that row's dict.
        """
        times = sorted({t for s in self._series.values() for t in s.times})
        index = {t: i for i, t in enumerate(times)}
        rows: List[Tuple[float, Dict[str, float]]] = [(t, {}) for t in times]
        for name, s in self._series.items():
            for t, v in s:
                rows[index[t]][1][name] = v
        return rows

    def write_csv(self, path: str, names: Optional[Sequence[str]] = None) -> None:
        """Dump the merged series to ``path`` as CSV."""
        cols = list(names) if names is not None else self.names()
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time"] + cols)
            for t, row in self.to_rows():
                writer.writerow([t] + [row.get(c, "") for c in cols])


def sampled(
    names_and_probes: Dict[str, Callable[[], float]],
    recorder: MetricsRecorder,
    env,
    period: float,
):
    """DES process generator that samples probes every ``period`` seconds.

    Usage::

        env.process(sampled({"lock_pages": lm.allocated_pages}, rec, env, 1.0))
    """
    if period <= 0:
        raise ValueError(f"sampling period must be positive, got {period}")
    while True:
        for name, probe in names_and_probes.items():
            recorder.record(name, env.now, float(probe()))
        yield env.timeout(period)
