"""Closed-loop application clients and the dynamically sized client pool.

A :class:`Client` is one simulated application connection: it thinks,
runs a transaction (acquiring row locks one by one with simulated work
between them), commits, and repeats.  Deadlocks and lock-list-full
errors roll the transaction back -- locks released, a retry after a
short backoff -- mirroring how a real OLTP application reacts to
SQL0911/SQL0912.

A :class:`ClientPool` manages a varying number of clients so workloads
can ramp (Figure 9), surge (Figure 10) or step down (Figure 12).
Deactivated clients finish their current transaction and disconnect, so
a step-down releases lock memory the way the paper's experiment does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.engine.transactions import TransactionMix
from repro.errors import DeadlockError
from repro.lockmgr.isolation import IsolationLevel
from repro.lockmgr.manager import LockListFullError, LockTimeoutError
from repro.lockmgr.modes import LockMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database


@dataclass
class ClientStats:
    """Per-client counters."""

    commits: int = 0
    rollbacks: int = 0
    deadlocks: int = 0
    lock_timeouts: int = 0
    lock_list_full: int = 0


class Client:
    """One simulated application connection."""

    #: Backoff after a rolled-back transaction, seconds.
    ROLLBACK_BACKOFF_S = 0.25
    #: Row accesses whose simulated work is coalesced into one DES event.
    WORK_BATCH = 8

    def __init__(self, database: "Database", app_id: int, mix: TransactionMix,
                 name: str = "client") -> None:
        self.database = database
        self.app_id = app_id
        self.mix = mix
        self.name = name
        self.active = True
        self.stats = ClientStats()
        self._rng = database.rng.stream(f"{name}-{app_id}")

    def stop(self) -> None:
        """Ask the client to disconnect after its current transaction."""
        self.active = False

    def run(self):
        """DES process: the client's closed-loop lifetime."""
        env = self.database.env
        self.database.register_application(self.app_id)
        try:
            while self.active:
                think = self.mix.draw_think_time(self._rng)
                if think > 0:
                    yield env.timeout(think)
                if not self.active:
                    break
                yield from self._run_transaction()
        finally:
            self.database.lock_manager.release_all(self.app_id)
            self.database.deregister_application(self.app_id)

    def _run_transaction(self):
        env = self.database.env
        lock_manager = self.database.lock_manager
        accesses = self.mix.draw_transaction(self._rng)
        isolation = getattr(self.mix, "isolation", IsolationLevel.RR)
        # Simulated work is batched (one DES event per WORK_BATCH row
        # accesses) to keep the event count tractable for long runs.
        # Each transaction pays the expected statement-compile overhead
        # (zero while the package cache holds the plan working set).
        pending_work = self.database.statement_compile_time()
        try:
            for i, access in enumerate(accesses):
                is_plain_read = access.mode is LockMode.S
                if is_plain_read and not isolation.takes_read_locks:
                    pass  # UR: read without any row lock
                else:
                    yield from lock_manager.lock_row(
                        self.app_id, access.table_id, access.row_id, access.mode
                    )
                if access.mode is LockMode.U:
                    # Cursor-style read then update: convert U to X.
                    yield from lock_manager.lock_row(
                        self.app_id, access.table_id, access.row_id, LockMode.X
                    )
                pending_work += self.database.row_access_time(self.mix.pages_per_lock)
                pending_work += self.mix.work_time_per_lock_s
                if (
                    is_plain_read
                    and isolation.takes_read_locks
                    and not isolation.holds_read_locks_to_commit
                ):
                    # CS: the cursor moves on; the share lock goes now.
                    lock_manager.release_read_lock(
                        self.app_id, access.table_id, access.row_id
                    )
                if pending_work > 0 and (i + 1) % self.WORK_BATCH == 0:
                    yield env.timeout(pending_work)
                    pending_work = 0.0
            if pending_work > 0:
                yield env.timeout(pending_work)
            lock_manager.release_all(self.app_id)
            self.stats.commits += 1
            self.database.note_commit()
        except DeadlockError:
            lock_manager.release_all(self.app_id)
            self.stats.rollbacks += 1
            self.stats.deadlocks += 1
            self.database.note_rollback()
            yield env.timeout(self.ROLLBACK_BACKOFF_S)
        except LockTimeoutError:
            lock_manager.release_all(self.app_id)
            self.stats.rollbacks += 1
            self.stats.lock_timeouts += 1
            self.database.note_rollback()
            yield env.timeout(self.ROLLBACK_BACKOFF_S)
        except LockListFullError:
            lock_manager.release_all(self.app_id)
            self.stats.rollbacks += 1
            self.stats.lock_list_full += 1
            self.database.note_rollback()
            yield env.timeout(self.ROLLBACK_BACKOFF_S)


class ClientPool:
    """A dynamically sized population of clients sharing one mix."""

    def __init__(self, database: "Database", mix: TransactionMix,
                 name: str = "oltp") -> None:
        self.database = database
        self.mix = mix
        self.name = name
        self.clients: List[Client] = []

    @property
    def active_count(self) -> int:
        return sum(1 for c in self.clients if c.active)

    def set_target(self, count: int) -> None:
        """Grow or shrink the pool to ``count`` active clients.

        Growth spawns fresh client processes immediately; shrink flags
        the newest clients to stop, and they disconnect at their next
        transaction boundary.
        """
        if count < 0:
            raise ValueError(f"client count must be non-negative, got {count}")
        active = [c for c in self.clients if c.active]
        if count > len(active):
            for _ in range(count - len(active)):
                self._spawn()
        elif count < len(active):
            for client in reversed(active[count:]):
                client.stop()

    def _spawn(self) -> Client:
        app_id = self.database.next_app_id()
        client = Client(self.database, app_id, self.mix, name=self.name)
        self.clients.append(client)
        self.database.env.process(client.run())
        return client

    def total_commits(self) -> int:
        return sum(c.stats.commits for c in self.clients)

    def total_rollbacks(self) -> int:
        return sum(c.stats.rollbacks for c in self.clients)
