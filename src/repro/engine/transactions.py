"""Transaction shape: statistical description of what a client does.

A :class:`TransactionMix` describes the *distribution* of transactions a
client issues: how many row locks, what fraction of accesses write, how
table and row choices are skewed, and how much simulated work each
access costs.  Clients draw concrete transactions from the mix using
their own RNG stream, so workloads are reproducible and components are
variance-isolated.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.lockmgr.isolation import IsolationLevel
from repro.lockmgr.modes import LockMode


@dataclass(frozen=True, slots=True)
class RowAccess:
    """One row touched by a transaction."""

    table_id: int
    row_id: int
    mode: LockMode


@dataclass(frozen=True)
class TransactionMix:
    """Statistical shape of a client's transactions.

    Parameters
    ----------
    locks_per_txn_mean:
        Mean row locks per transaction (geometric draw, minimum 1).
    write_fraction:
        Probability an access takes an X lock instead of S.
    update_lock_fraction:
        Probability a write first takes a U lock (read-with-intent-to-
        update) before converting to X, as DB2 cursors do.
    num_tables / rows_per_table:
        Size of the lockable namespace.
    hot_row_fraction / hot_access_probability:
        A fraction of each table is a "hot set" receiving a dispropor-
        tionate share of accesses; this controls lock contention.
    think_time_mean_s:
        Mean exponential think time between transactions.
    work_time_per_lock_s:
        Base CPU time per accessed row (the bufferpool model adds I/O).
    pages_per_lock:
        Data pages touched per row access (drives bufferpool pressure).
    isolation:
        How long read locks are held (see
        :class:`repro.lockmgr.isolation.IsolationLevel`).  RR -- the
        default, and the paper experiments' behaviour -- holds S locks
        to commit; CS releases each as the cursor moves on; UR takes no
        read locks at all.
    """

    locks_per_txn_mean: float = 20.0
    write_fraction: float = 0.30
    update_lock_fraction: float = 0.20
    num_tables: int = 10
    rows_per_table: int = 1_000_000
    hot_row_fraction: float = 0.001
    hot_access_probability: float = 0.10
    think_time_mean_s: float = 1.0
    work_time_per_lock_s: float = 0.0005
    pages_per_lock: float = 1.0
    isolation: IsolationLevel = IsolationLevel.RR
    #: Hot-set size, derived once -- draw_access is a workload hot path.
    _hot_rows: int = field(init=False, repr=False, compare=False, default=1)

    def __post_init__(self) -> None:
        if self.locks_per_txn_mean < 1:
            raise ConfigurationError(
                f"locks_per_txn_mean must be >= 1, got {self.locks_per_txn_mean}"
            )
        for name in ("write_fraction", "update_lock_fraction",
                     "hot_row_fraction", "hot_access_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.num_tables <= 0 or self.rows_per_table <= 0:
            raise ConfigurationError("num_tables and rows_per_table must be positive")
        if self.think_time_mean_s < 0 or self.work_time_per_lock_s < 0:
            raise ConfigurationError("times must be non-negative")
        if self.pages_per_lock < 0:
            raise ConfigurationError("pages_per_lock must be non-negative")
        object.__setattr__(
            self,
            "_hot_rows",
            max(1, int(self.rows_per_table * self.hot_row_fraction)),
        )

    # -- draws --------------------------------------------------------------

    def draw_lock_count(self, rng: random.Random) -> int:
        """Number of row locks for one transaction (geometric, >= 1)."""
        if self.locks_per_txn_mean <= 1.0:
            return 1
        p = 1.0 / self.locks_per_txn_mean
        # Inverse-CDF geometric on {1, 2, ...} with mean 1/p.
        u = rng.random()
        count = 1 + int(math.log(1.0 - u) / math.log(1.0 - p))
        return max(1, min(count, 100_000))

    def draw_access(self, rng: random.Random) -> RowAccess:
        """One row access: table, row (hot-set skewed) and lock mode."""
        table_id = rng.randrange(self.num_tables)
        hot_rows = self._hot_rows
        if rng.random() < self.hot_access_probability:
            row_id = rng.randrange(hot_rows)
        else:
            row_id = rng.randrange(self.rows_per_table)
        if rng.random() < self.write_fraction:
            if rng.random() < self.update_lock_fraction:
                mode = LockMode.U
            else:
                mode = LockMode.X
        else:
            mode = LockMode.S
        return RowAccess(table_id, row_id, mode)

    def draw_transaction(self, rng: random.Random) -> List[RowAccess]:
        """A full transaction: an ordered list of row accesses."""
        return [self.draw_access(rng) for _ in range(self.draw_lock_count(rng))]

    def draw_think_time(self, rng: random.Random) -> float:
        if self.think_time_mean_s == 0:
            return 0.0
        return rng.expovariate(1.0 / self.think_time_mean_s)


def scaled(mix: TransactionMix, **overrides) -> TransactionMix:
    """A copy of ``mix`` with fields replaced (dataclasses.replace sugar)."""
    from dataclasses import replace

    return replace(mix, **overrides)
