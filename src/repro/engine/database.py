"""The simulated database instance.

:class:`Database` wires every substrate together the way DB2 9 does:

* a :class:`~repro.memory.registry.DatabaseMemoryRegistry` holding the
  bufferpool, sort, hash join, package cache and lock list heaps plus
  the overflow area,
* a :class:`~repro.lockmgr.manager.LockManager` over a
  :class:`~repro.lockmgr.blocks.LockBlockChain` whose allocation always
  mirrors the ``locklist`` heap,
* a :class:`~repro.memory.stmm.Stmm` tuning loop,
* a pluggable :class:`~repro.core.policy.TuningPolicy` (the paper's
  adaptive algorithm by default, baselines otherwise),
* a metrics sampler recording the series the figure benchmarks plot.

The bufferpool's size feeds a hit-ratio model so that memory STMM moves
between the bufferpool and lock memory shows up in transaction service
times -- the CPU/I-O competition effect of section 5.3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Optional, Set

from repro.core.policy import AdaptiveLockMemoryPolicy, TuningPolicy
from repro.engine.des import Environment
from repro.engine.metrics import MetricsRecorder
from repro.engine.rng import RngStreams
from repro.errors import ConfigurationError
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager
from repro.memory.bufferpool import BufferpoolModel
from repro.memory.hashjoin import HashJoinModel
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.pkgcache import PackageCacheModel
from repro.memory.sortheap import SortHeapModel
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig
from repro.units import (
    LOCK_SIZE_BYTES,
    PAGE_SIZE_BYTES,
    PAGES_PER_BLOCK,
    round_pages_to_blocks,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import RunTelemetry
    from repro.obs.registry import MetricRegistry


@dataclass
class DatabaseConfig:
    """Sizing and model parameters of a simulated database.

    The defaults approximate the paper's test system scaled down 10x
    (the paper machine dedicated 5.11 GB to the database; we default to
    512 MB so experiments run quickly while all ratios -- 20 % lock
    memory cap, 10 % compiler view, overflow goal -- are preserved).
    """

    #: databaseMemory, in 4 KB pages.  131072 pages = 512 MB.
    total_memory_pages: int = 131_072
    #: Initial LOCKLIST configuration, in pages (rounded to blocks).
    #: 512 pages = 2 MB, DB2's small-system default.
    initial_locklist_pages: int = 512
    #: Initial heap fractions of databaseMemory.
    bufferpool_fraction: float = 0.60
    sort_fraction: float = 0.12
    hashjoin_fraction: float = 0.06
    pkgcache_fraction: float = 0.04
    #: STMM's goal for the overflow area, as a fraction of databaseMemory.
    overflow_goal_fraction: float = 0.05
    #: Minimum bufferpool size as a fraction of databaseMemory (donating
    #: below this would collapse the cache entirely).
    bufferpool_min_fraction: float = 0.10
    #: Static MAXLOCKS fraction used until a policy installs a provider.
    static_maxlocks_fraction: float = 0.98
    #: STMM scheduling configuration.
    stmm: StmmConfig = field(default_factory=StmmConfig)
    #: Bufferpool performance model.
    bufferpool_model: BufferpoolModel = field(default_factory=BufferpoolModel)
    #: Sort heap performance model (spills when sorts exceed the heap).
    sort_model: SortHeapModel = field(default_factory=SortHeapModel)
    #: Hash join heap performance model (Grace partitioning on spill).
    hashjoin_model: HashJoinModel = field(default_factory=HashJoinModel)
    #: Package cache (compiled statement cache) model.
    pkgcache_model: PackageCacheModel = field(default_factory=PackageCacheModel)
    #: Simulated commit cost, seconds.
    commit_time_s: float = 0.002
    #: Metric sampling period, seconds.
    sample_period_s: float = 1.0

    def __post_init__(self) -> None:
        if self.total_memory_pages <= 0:
            raise ConfigurationError("total_memory_pages must be positive")
        fractions = (
            self.bufferpool_fraction
            + self.sort_fraction
            + self.hashjoin_fraction
            + self.pkgcache_fraction
        )
        locklist_fraction = self.initial_locklist_pages / self.total_memory_pages
        if fractions + locklist_fraction >= 1.0:
            raise ConfigurationError(
                f"initial heaps oversubscribe database memory "
                f"({fractions + locklist_fraction:.2f} >= 1)"
            )
        if not 0.0 <= self.overflow_goal_fraction < 1.0:
            raise ConfigurationError("overflow_goal_fraction must be in [0, 1)")
        if self.initial_locklist_pages < PAGES_PER_BLOCK:
            raise ConfigurationError(
                f"initial_locklist_pages must be at least one block "
                f"({PAGES_PER_BLOCK} pages)"
            )


class Database:
    """A fully wired simulated database instance."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        config: Optional[DatabaseConfig] = None,
        policy: Optional[TuningPolicy] = None,
        seed: int = 0,
    ) -> None:
        self.env = env or Environment()
        self.config = config or DatabaseConfig()
        self.rng = RngStreams(seed)
        self.metrics = MetricsRecorder()
        cfg = self.config

        #: EWMA of recent sort input sizes, feeding the sort heap's
        #: marginal benefit (0 until the workload actually sorts).
        self._typical_sort_rows = 0.0
        #: EWMA of recent hash-join build sizes (same role for joins).
        self._typical_build_rows = 0.0
        self.registry = DatabaseMemoryRegistry(
            total_pages=cfg.total_memory_pages,
            overflow_goal_pages=int(cfg.overflow_goal_fraction * cfg.total_memory_pages),
        )
        self._register_heaps()

        locklist_pages = round_pages_to_blocks(cfg.initial_locklist_pages)
        self.chain = LockBlockChain(initial_blocks=locklist_pages // PAGES_PER_BLOCK)
        self.lock_manager = LockManager(
            self.env,
            self.chain,
            maxlocks_fraction=cfg.static_maxlocks_fraction,
        )
        self.stmm = Stmm(self.registry, cfg.stmm)
        self.policy = policy or AdaptiveLockMemoryPolicy()
        self.policy.attach(self)

        self._connected_apps: Set[int] = set()
        self._app_ids = itertools.count(1)
        self._commits = 0
        self._rollbacks = 0
        self._started = False
        self._page_time = 0.0
        self._page_time_for_size = -1
        #: Metric registry once :meth:`enable_telemetry` runs, else None.
        self.obs_registry: Optional["MetricRegistry"] = None

    def _register_heaps(self) -> None:
        cfg = self.config
        total = cfg.total_memory_pages
        bp_model = cfg.bufferpool_model
        self.registry.register(
            MemoryHeap(
                "bufferpool",
                HeapCategory.PMC,
                size_pages=int(cfg.bufferpool_fraction * total),
                min_pages=int(cfg.bufferpool_min_fraction * total),
                benefit=lambda heap: bp_model.marginal_benefit(heap.size_pages),
            )
        )
        self.registry.register(
            MemoryHeap(
                "sort",
                HeapCategory.PMC,
                size_pages=int(cfg.sort_fraction * total),
                min_pages=256,
                # Dynamic: zero while the workload runs no large sorts
                # (a willing donor, the paper's "least needy consumer"),
                # rising when recent sorts spill.
                benefit=lambda heap: cfg.sort_model.marginal_benefit(
                    heap.size_pages, int(self._typical_sort_rows)
                ),
            )
        )
        self.registry.register(
            MemoryHeap(
                "hashjoin",
                HeapCategory.PMC,
                size_pages=int(cfg.hashjoin_fraction * total),
                min_pages=256,
                # Dynamic like the sort heap: a donor until the workload
                # runs joins big enough to spill.
                benefit=lambda heap: cfg.hashjoin_model.marginal_benefit(
                    heap.size_pages, int(self._typical_build_rows)
                ),
            )
        )
        self.registry.register(
            MemoryHeap(
                "pkgcache",
                HeapCategory.PMC,
                size_pages=int(cfg.pkgcache_fraction * total),
                min_pages=256,
                # Statement-cache curve: near zero once the working set
                # of plans fits, steep when shrunk below it.
                benefit=lambda heap: cfg.pkgcache_model.marginal_benefit(
                    heap.size_pages
                ),
            )
        )
        self.registry.register(
            MemoryHeap(
                "locklist",
                HeapCategory.FMC,
                size_pages=round_pages_to_blocks(cfg.initial_locklist_pages),
                min_pages=0,
            )
        )

    # -- application bookkeeping -------------------------------------------

    def next_app_id(self) -> int:
        return next(self._app_ids)

    def register_application(self, app_id: int) -> None:
        self._connected_apps.add(app_id)

    def deregister_application(self, app_id: int) -> None:
        self._connected_apps.discard(app_id)

    def connected_applications(self) -> int:
        """Number of connected applications (feeds minLockMemory)."""
        return len(self._connected_apps)

    # -- throughput bookkeeping -----------------------------------------------

    def note_commit(self) -> None:
        self._commits += 1

    def note_rollback(self) -> None:
        self._rollbacks += 1

    @property
    def commits(self) -> int:
        return self._commits

    @property
    def rollbacks(self) -> int:
        return self._rollbacks

    # -- performance model ---------------------------------------------------

    def sort_time(self, rows: int) -> float:
        """Simulated duration of sorting ``rows`` via the sort heap.

        Also feeds the sort heap's benefit signal: heavy recent sorting
        makes the sort heap a demanding STMM receiver instead of the
        default willing donor.
        """
        alpha = 0.3
        self._typical_sort_rows += alpha * (rows - self._typical_sort_rows)
        heap = self.registry.heap("sort")
        return self.config.sort_model.sort_time(rows, heap.size_pages)

    def hash_join_time(self, build_rows: int) -> float:
        """Simulated duration of a hash join with ``build_rows`` on the
        build side; feeds the hash join heap's benefit signal."""
        alpha = 0.3
        self._typical_build_rows += alpha * (build_rows - self._typical_build_rows)
        heap = self.registry.heap("hashjoin")
        return self.config.hashjoin_model.join_time(build_rows, heap.size_pages)

    def statement_compile_time(self) -> float:
        """Expected compile overhead per statement at the current
        package cache size (zero while the plan working set fits)."""
        heap = self.registry.heap("pkgcache")
        return self.config.pkgcache_model.compile_overhead_s(heap.size_pages)

    def row_access_time(self, pages: float = 1.0) -> float:
        """Simulated time to access ``pages`` data pages via the pool.

        The per-page time only changes when STMM resizes the bufferpool,
        so it is memoized on the pool size (this sits on the hot path).
        """
        size = self.registry.heap("bufferpool").size_pages
        if size != self._page_time_for_size:
            self._page_time = self.config.bufferpool_model.page_access_time(size)
            self._page_time_for_size = size
        return pages * self._page_time

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Launch the STMM loop and the metrics sampler."""
        if self._started:
            raise ConfigurationError("database already started")
        self._started = True
        self.env.process(self.stmm.run(self.env))
        self.env.process(self._sampler())

    def probes(self) -> Dict[str, Callable[[], float]]:
        """The quantities the sampler records each period."""
        stats = self.lock_manager.stats
        probes: Dict[str, Callable[[], float]] = {
            "lock_pages": lambda: self.chain.allocated_pages,
            "lock_used_slots": lambda: self.chain.used_slots,
            "lock_used_pages": lambda: -(
                -self.chain.used_slots * LOCK_SIZE_BYTES // PAGE_SIZE_BYTES
            ),
            "locklist_heap_pages": lambda: self.registry.heap("locklist").size_pages,
            "escalations": lambda: stats.escalations.count,
            "exclusive_escalations": lambda: stats.escalations.exclusive_count,
            "escalation_failures": lambda: stats.escalations.failures,
            "commits": lambda: self._commits,
            "rollbacks": lambda: self._rollbacks,
            "deadlocks": lambda: stats.deadlocks,
            "lock_waits": lambda: stats.waits,
            "lock_list_full_errors": lambda: stats.lock_list_full_errors,
            "connected_apps": lambda: len(self._connected_apps),
            "bufferpool_pages": lambda: self.registry.heap("bufferpool").size_pages,
            "sort_pages": lambda: self.registry.heap("sort").size_pages,
            "overflow_pages": lambda: self.registry.overflow_pages,
            "maxlocks_percent": lambda: self.lock_manager.maxlocks_fraction * 100.0,
        }
        controller = getattr(self.policy, "controller", None)
        if controller is not None:
            # the adaptive policy exposes the LMOC / LMO distinction
            probes["lmoc_pages"] = lambda: controller.lmoc_pages
            probes["lmo_pages"] = lambda: controller.lmo_pages
        return probes

    def _sampler(self):
        period = self.config.sample_period_s
        probes = self.probes()
        while True:
            now = self.env.now
            for name, probe in probes.items():
                self.metrics.record(name, now, float(probe()))
            yield self.env.timeout(period)

    def run(self, until: float) -> None:
        """Convenience: start (if needed) and run the clock to ``until``."""
        if not self._started:
            self.start()
        self.env.run(until=until)

    # -- telemetry ------------------------------------------------------------

    def enable_telemetry(
        self,
        trace_capacity: Optional[int] = None,
        registry: Optional["MetricRegistry"] = None,
    ) -> "MetricRegistry":
        """Turn on full observability for this database: a lock trace
        (if none is attached yet) plus the lock manager histograms.

        Idempotent -- calling twice reuses the registry installed first.
        ``trace_capacity`` is forwarded to the new :class:`LockTrace`
        (``None`` keeps its default bounded buffer).
        """
        from repro.lockmgr.tracing import LockTrace
        from repro.obs.instruments import LockManagerInstruments
        from repro.obs.registry import MetricRegistry

        if self.obs_registry is not None:
            return self.obs_registry
        self.obs_registry = registry or MetricRegistry()
        if self.lock_manager.tracer is None:
            if trace_capacity is not None:
                self.lock_manager.tracer = LockTrace(capacity=trace_capacity)
            else:
                self.lock_manager.tracer = LockTrace()
        self.lock_manager.obs = LockManagerInstruments(self.obs_registry)
        return self.obs_registry

    def telemetry(self, label: str = "run") -> "RunTelemetry":
        """Collect this run's full telemetry (see
        :class:`repro.obs.events.RunTelemetry`)."""
        from repro.obs.events import RunTelemetry

        return RunTelemetry.from_database(self, label=label)

    def check_invariants(self) -> None:
        """Cross-layer consistency checks used by tests."""
        self.lock_manager.check_invariants()
        heap_pages = self.registry.heap("locklist").size_pages
        if heap_pages != self.chain.allocated_pages:
            raise ConfigurationError(
                f"locklist heap {heap_pages}p != chain {self.chain.allocated_pages}p"
            )
        # Registry invariant: overflow_pages raises if oversubscribed.
        self.registry.overflow_pages
