"""Simulation substrate: discrete-event kernel, clients, database wiring.

The :mod:`repro.engine` package provides everything needed to *run* the
self-tuning lock memory controller against a workload:

* :mod:`repro.engine.des` -- a small but complete discrete-event
  simulation kernel (environment, processes, timeouts, interrupts),
* :mod:`repro.engine.rng` -- deterministic random-stream management,
* :mod:`repro.engine.metrics` -- time-series recording,
* :mod:`repro.engine.transactions` -- the transaction lifecycle,
* :mod:`repro.engine.client` -- closed-loop application clients,
* :mod:`repro.engine.database` -- the simulated database instance that
  wires the memory registry, lock manager and tuning controller together.
"""

from repro.engine.des import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.engine.metrics import MetricsRecorder, TimeSeries
from repro.engine.rng import RngStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Timeout",
    "MetricsRecorder",
    "TimeSeries",
    "RngStreams",
]
