"""A small discrete-event simulation kernel.

This module provides the minimal process-based DES machinery the rest of
the library is built on.  It is deliberately modelled on the SimPy API
(``Environment``, ``Process``, ``Timeout``, ``Interrupt``) so the code
reads familiarly, but it is self-contained: the reproduction environment
has no network access, so we implement the kernel from scratch.

Concepts
--------

* An :class:`Environment` holds the simulation clock and the event queue.
* An :class:`Event` is a one-shot occurrence.  Processes *wait* on events
  by ``yield``-ing them.
* A :class:`Process` wraps a generator function.  Each time the generator
  yields an event, the process suspends until that event fires.  A process
  is itself an event that fires when the generator finishes, so processes
  can wait for each other.
* A :class:`Timeout` is an event that fires after a simulated delay.
* :class:`Interrupt` allows one process to asynchronously wake another;
  the victim sees the interrupt as an exception thrown into its generator.

Determinism
-----------

Events scheduled for the same simulation time fire in FIFO order of
scheduling (a monotonically increasing sequence number breaks ties), so a
simulation run is a pure function of its inputs and random seeds.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError

#: Type of the generator driving a :class:`Process`.
ProcessGenerator = Generator["Event", Any, Any]

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` triggers it, schedules its callbacks, and freezes its
    value.  Triggering an event twice is an error.

    Events are the most-allocated objects in a simulation (every lock
    wait, timeout and process creates at least one), so the whole
    hierarchy is slotted; subclasses must declare ``__slots__`` too.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        #: Set when a failed event's exception was delivered to a waiter.
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A waiter that yields on this event will see ``exception`` raised
        inside its generator.  If no process ever waits on a failed event
        the exception propagates out of :meth:`Environment.run` (it would
        otherwise be silently lost).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after ``delay`` simulated time units."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` is whatever object the interrupter supplied; it is
    available both positionally (``exc.args[0]``) and via the property.
    """

    @property
    def cause(self) -> Any:
        return self.args[0]


class _InterruptDelivery(Event):
    """Internal event used to deliver an interrupt to a process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(process._deliver_interrupt)
        # Interrupts jump the queue: schedule ahead of same-time events.
        env._schedule(self, urgent=True)


class Process(Event):
    """A running process; also an event that fires when it terminates."""

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on (if any)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        Interrupting a dead process is an error; interrupting a process
        that is interrupting itself is not supported (as in SimPy).
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        _InterruptDelivery(self.env, self, cause)

    def _deliver_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # terminated before the interrupt fired
            return
        # Detach from whatever we were waiting on so that its eventual
        # firing does not resume us a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_target = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_target = self._generator.throw(type(exc), exc, None)
            except StopIteration as stop:
                env._active_process = None
                self._target = None
                self._ok = True
                self._value = stop.value
                env._schedule(self)
                return
            except BaseException as exc:  # process crashed
                env._active_process = None
                self._target = None
                self._ok = False
                self._value = exc
                env._schedule(self)
                return

            if not isinstance(next_target, Event):
                env._active_process = None
                crash = SimulationError(
                    f"process yielded a non-event: {next_target!r}"
                )
                self._target = None
                self._ok = False
                self._value = crash
                env._schedule(self)
                return

            if next_target.callbacks is not None:
                # Target pending: register and suspend.
                next_target.callbacks.append(self._resume)
                self._target = next_target
                env._active_process = None
                return
            # Target already processed: continue immediately with its value.
            event = next_target

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        state = "alive" if self.is_alive else "dead"
        return f"<Process {name} {state} at {id(self):#x}>"


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events."""

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        env: "Environment",
        events: Iterable[Event],
        evaluate: Callable[[List[Event], int], bool],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self._events:
            self.succeed(self._collect())
            return
        for event in self._events:
            event.add_callback(self._check)

    def _collect(self) -> dict:
        # Only *processed* events contribute: a Timeout carries its value
        # from birth, so "triggered" would wrongly include pending ones.
        return {
            event: event._value
            for event in self._events
            if event.callbacks is None and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Fires when every constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda events, count: count == len(events))


class AnyOf(Condition):
    """Fires when at least one constituent event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, events, lambda events, count: count >= 1)


class Environment:
    """Holds the simulation clock and executes the event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List = []
        self._eid = itertools.count()
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (None between events)."""
        return self._active_process

    # -- event factories -------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new process driven by ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling and execution ----------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, urgent: bool = False) -> None:
        priority = 0 if urgent else 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events to process")
        when, _priority, _eid, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An untended failure: surface it instead of losing it.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced exactly to it even
        if the queue drains earlier, so metric sampling loops terminated
        by ``until`` observe a consistent final time.
        """
        if until is not None:
            if until < self._now:
                raise ValueError(
                    f"cannot run until {until}; clock is already at {self._now}"
                )
            stop = Event(self)
            stop._ok = True
            stop._value = None
            self._schedule(stop, delay=until - self._now, urgent=True)
            stop.add_callback(lambda _event: None)
            while self._queue:
                if self._queue[0][3] is stop:
                    self.step()
                    return
                self.step()
            self._now = until
            return
        while self._queue:
            self.step()
