"""Table 1 of the paper as a validated parameter object.

Every modelling parameter of the self-tuning algorithm lives here with
its paper-given default:

==========================  =====================================================
Parameter                   Paper value
==========================  =====================================================
minLockMemory               MAX(2 MB, 500 * locksize * num_applications)
maxLockMemory               0.20 * databaseMemory
sqlCompilerLockMem          0.10 * databaseMemory
LMOmax                      65 % of database overflow memory (C1 = 0.65)
maxFreeLockMemory           60 %
minFreeLockMemory           50 %
lockPercentPerApplication   98 * (1 - (x/100)^3), x = % of maxLockMemory used
refreshPeriodForAppPercent  0x80 lock requests
delta_reduce                5 % of current lock memory per tuning interval
==========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import (
    LOCK_SIZE_BYTES,
    MB,
    bytes_to_pages,
    round_pages_to_blocks,
)


@dataclass(frozen=True)
class TuningParameters:
    """All knobs of the adaptive lock memory tuning algorithm."""

    #: minFreeLockMemory -- asynchronous growth triggers below this
    #: free fraction (section 3.3).
    min_free_fraction: float = 0.50
    #: maxFreeLockMemory -- asynchronous shrink triggers above this
    #: free fraction (section 3.4).
    max_free_fraction: float = 0.60
    #: delta_reduce -- shrink rate per tuning interval (section 3.4).
    delta_reduce: float = 0.05
    #: C1 -- fraction of database overflow memory lock memory may
    #: consume synchronously (section 3.2).
    c1_overflow_fraction: float = 0.65
    #: maxLockMemory as a fraction of databaseMemory (section 3.2).
    max_lock_memory_fraction: float = 0.20
    #: sqlCompilerLockMem as a fraction of databaseMemory (section 3.6).
    sql_compiler_fraction: float = 0.10
    #: P -- the unconstrained lockPercentPerApplication (section 3.5).
    maxlocks_p: float = 98.0
    #: Exponent of the attenuation curve (Table 1 uses a cubic).
    maxlocks_exponent: float = 3.0
    #: Floor for lockPercentPerApplication ("dropping down to 1 when
    #: lock memory is 100 % of its maximum size").
    maxlocks_floor: float = 1.0
    #: refreshPeriodForAppPercent, in lock requests (Table 1: 0x80).
    refresh_period_requests: int = 0x80
    #: Absolute floor component of minLockMemory.
    min_lock_memory_floor_bytes: int = 2 * MB
    #: Per-connection component of minLockMemory (500 lock structures).
    min_locks_per_application: int = 500
    #: Size of one lock structure in bytes.
    locksize_bytes: int = LOCK_SIZE_BYTES
    #: Escalation-recovery: double lock memory per interval while
    #: escalations continue and overflow is constrained (section 3.1).
    escalation_doubling: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_free_fraction < 1.0:
            raise ConfigurationError(
                f"min_free_fraction must be in [0, 1), got {self.min_free_fraction}"
            )
        if not self.min_free_fraction <= self.max_free_fraction < 1.0:
            raise ConfigurationError(
                "need min_free_fraction <= max_free_fraction < 1, got "
                f"{self.min_free_fraction} / {self.max_free_fraction}"
            )
        if not 0.0 < self.delta_reduce <= 1.0:
            raise ConfigurationError(
                f"delta_reduce must be in (0, 1], got {self.delta_reduce}"
            )
        if not 0.0 < self.c1_overflow_fraction < 1.0:
            raise ConfigurationError(
                f"C1 must be in (0, 1) so overflow is never fully consumed, "
                f"got {self.c1_overflow_fraction}"
            )
        if not 0.0 < self.max_lock_memory_fraction <= 1.0:
            raise ConfigurationError(
                f"max_lock_memory_fraction must be in (0, 1], got "
                f"{self.max_lock_memory_fraction}"
            )
        if not 0.0 < self.sql_compiler_fraction <= 1.0:
            raise ConfigurationError(
                f"sql_compiler_fraction must be in (0, 1], got "
                f"{self.sql_compiler_fraction}"
            )
        if not 0.0 < self.maxlocks_floor <= self.maxlocks_p <= 100.0:
            raise ConfigurationError(
                f"need 0 < maxlocks_floor <= maxlocks_p <= 100, got "
                f"{self.maxlocks_floor} / {self.maxlocks_p}"
            )
        if self.maxlocks_exponent <= 0:
            raise ConfigurationError(
                f"maxlocks_exponent must be positive, got {self.maxlocks_exponent}"
            )
        if self.refresh_period_requests <= 0:
            raise ConfigurationError(
                f"refresh_period_requests must be positive, got "
                f"{self.refresh_period_requests}"
            )
        if self.min_lock_memory_floor_bytes <= 0:
            raise ConfigurationError("min_lock_memory_floor_bytes must be positive")
        if self.min_locks_per_application < 0:
            raise ConfigurationError("min_locks_per_application must be non-negative")
        if self.locksize_bytes <= 0:
            raise ConfigurationError("locksize_bytes must be positive")

    # -- derived quantities (section 3.2) ----------------------------------

    def min_lock_memory_pages(self, num_applications: int) -> int:
        """minLockMemory = MAX(2MB, 500 * locksize * num_applications).

        Returned in pages, rounded up to whole 128 KB blocks.
        """
        if num_applications < 0:
            raise ValueError(
                f"num_applications must be non-negative, got {num_applications}"
            )
        per_app_bytes = (
            self.min_locks_per_application * self.locksize_bytes * num_applications
        )
        floor_bytes = max(self.min_lock_memory_floor_bytes, per_app_bytes)
        return round_pages_to_blocks(bytes_to_pages(floor_bytes))

    def max_lock_memory_pages(self, database_memory_pages: int) -> int:
        """maxLockMemory = 0.20 * databaseMemory, in whole blocks."""
        if database_memory_pages <= 0:
            raise ValueError(
                f"database_memory_pages must be positive, got {database_memory_pages}"
            )
        raw = int(self.max_lock_memory_fraction * database_memory_pages)
        return round_pages_to_blocks(raw)

    def sql_compiler_lock_memory_pages(self, database_memory_pages: int) -> int:
        """sqlCompilerLockMem = 0.10 * databaseMemory (section 3.6)."""
        if database_memory_pages <= 0:
            raise ValueError(
                f"database_memory_pages must be positive, got {database_memory_pages}"
            )
        return int(self.sql_compiler_fraction * database_memory_pages)

    def lmo_max_pages(self, overflow_pages: int, lmo_pages: int) -> int:
        """LMOmax = C1 * (database overflow memory + LMO) (section 3.2).

        ``overflow_pages`` is the overflow memory currently available and
        ``lmo_pages`` the lock memory already allocated from overflow;
        their sum is the overflow area as it stood before lock memory
        grew into it.
        """
        if overflow_pages < 0 or lmo_pages < 0:
            raise ValueError("overflow_pages and lmo_pages must be non-negative")
        return int(self.c1_overflow_fraction * (overflow_pages + lmo_pages))
