"""The paper's primary contribution: adaptive lock memory tuning.

* :mod:`repro.core.params` -- Table 1 of the paper as a validated
  configuration object,
* :mod:`repro.core.maxlocks` -- the adaptive
  ``lockPercentPerApplication`` curve (section 3.5),
* :mod:`repro.core.controller` -- the combined synchronous/asynchronous
  self-tuning growth and slow-shrink algorithm (sections 3.2-3.4),
* :mod:`repro.core.policy` -- the pluggable tuning-policy interface the
  baselines also implement,
* :mod:`repro.core.optimizer` -- the SQL compiler's stabilized view of
  lock memory (section 3.6).
"""

from repro.core.controller import ControllerDecision, LockMemoryController
from repro.core.maxlocks import AdaptiveMaxlocks, lock_percent_per_application
from repro.core.optimizer import LockGranularity, QueryOptimizer
from repro.core.params import TuningParameters
from repro.core.policy import AdaptiveLockMemoryPolicy, TuningPolicy

__all__ = [
    "ControllerDecision",
    "LockMemoryController",
    "AdaptiveMaxlocks",
    "lock_percent_per_application",
    "LockGranularity",
    "QueryOptimizer",
    "TuningParameters",
    "AdaptiveLockMemoryPolicy",
    "TuningPolicy",
]
