"""The adaptive lockPercentPerApplication model (paper section 3.5).

The per-application lock memory constraint (DB2's MAXLOCKS) is kept
"hardly unconstrained" at 98 % while lock memory is far from its
maximum, then attenuated aggressively as lock memory approaches
``maxLockMemory``:

    lockPercentPerApplication(x) = P * (1 - (x / 100)^3)

where ``x`` is the percentage of ``maxLockMemory`` currently used and
``P = 98``.  The value floors at 1 when lock memory reaches 100 % of its
maximum.  The curve "provides very large value ... while memory is
ample, and aggressive attenuation when lock memory is more than 75 %
used".
"""

from __future__ import annotations

from typing import Callable

from repro.core.params import TuningParameters
from repro.errors import ConfigurationError


def lock_percent_per_application(
    used_percent_of_max: float,
    p: float = 98.0,
    exponent: float = 3.0,
    floor: float = 1.0,
) -> float:
    """Evaluate the MAXLOCKS attenuation curve.

    Parameters
    ----------
    used_percent_of_max:
        ``x`` -- lock memory in use as a percentage of maxLockMemory.
        Values are clamped into [0, 100]: the in-memory allocation can
        transiently exceed the asynchronous ceiling while synchronous
        growth is outstanding, and the constraint bottoms out at its
        floor there.
    p, exponent, floor:
        Curve parameters; the paper uses P=98, a cubic, and a floor of 1.

    Returns the percentage (in [floor, p]) of total lock memory a single
    application may consume.
    """
    x = min(100.0, max(0.0, used_percent_of_max))
    value = p * (1.0 - (x / 100.0) ** exponent)
    return max(floor, value)


class AdaptiveMaxlocks:
    """Stateful wrapper binding the curve to live lock-memory telemetry.

    The lock manager pulls :meth:`fraction` on every resize and every
    ``refreshPeriodForAppPercent`` lock requests (wired through
    ``LockManager.maxlocks_provider``).
    """

    def __init__(
        self,
        params: TuningParameters,
        allocated_pages: Callable[[], int],
        max_lock_memory_pages: Callable[[], int],
    ) -> None:
        self.params = params
        self._allocated_pages = allocated_pages
        self._max_lock_memory_pages = max_lock_memory_pages

    def used_percent_of_max(self) -> float:
        """Current ``x``: allocated lock memory as % of maxLockMemory."""
        maximum = self._max_lock_memory_pages()
        if maximum <= 0:
            raise ConfigurationError(
                f"maxLockMemory must be positive, got {maximum} pages"
            )
        return 100.0 * self._allocated_pages() / maximum

    def percent(self) -> float:
        """Current lockPercentPerApplication, in percent."""
        return lock_percent_per_application(
            self.used_percent_of_max(),
            p=self.params.maxlocks_p,
            exponent=self.params.maxlocks_exponent,
            floor=self.params.maxlocks_floor,
        )

    def fraction(self) -> float:
        """Current lockPercentPerApplication as a fraction in (0, 1]."""
        return self.percent() / 100.0
