"""Pluggable lock-memory tuning policies.

A :class:`TuningPolicy` decides how lock memory behaves in a simulated
database: whether it can grow synchronously, how (and whether) it is
tuned asynchronously, and how the per-application constraint (MAXLOCKS)
is set.  The paper's adaptive algorithm and every baseline (static
LOCKLIST, SQL Server 2005, ...) implement this interface, so the same
database/workload harness compares them fairly.

``attach(database)`` is called once while the database is assembled; the
policy wires itself into the lock manager's ``growth_provider`` /
``maxlocks_provider`` hooks and, if it tunes asynchronously, registers a
deterministic tuner with STMM.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from repro.core.controller import LockMemoryController
from repro.core.maxlocks import AdaptiveMaxlocks
from repro.core.params import TuningParameters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database


class TuningPolicy(abc.ABC):
    """Strategy object deciding lock memory behaviour."""

    #: Short identifier used in experiment reports.
    name: str = "abstract"

    @abc.abstractmethod
    def attach(self, database: "Database") -> None:
        """Wire the policy into a freshly assembled database."""

    def describe(self) -> str:
        """One-line human description for reports."""
        return self.name


class AdaptiveLockMemoryPolicy(TuningPolicy):
    """The paper's algorithm: DB2 9 self-tuning lock memory.

    Combines the :class:`LockMemoryController` (asynchronous STMM tuning
    plus synchronous overflow growth) with the adaptive MAXLOCKS curve.
    """

    name = "db2-adaptive"

    def __init__(
        self,
        params: Optional[TuningParameters] = None,
        fixed_maxlocks_fraction: Optional[float] = None,
    ) -> None:
        """``fixed_maxlocks_fraction`` replaces the adaptive MAXLOCKS
        curve with a constant (e.g. 0.10, the old DB2 default) while
        keeping the adaptive memory tuning -- used by the MAXLOCKS
        ablation experiment."""
        self.params = params or TuningParameters()
        if fixed_maxlocks_fraction is not None and not (
            0.0 < fixed_maxlocks_fraction <= 1.0
        ):
            raise ValueError(
                f"fixed_maxlocks_fraction must be in (0, 1], got "
                f"{fixed_maxlocks_fraction}"
            )
        self.fixed_maxlocks_fraction = fixed_maxlocks_fraction
        self.controller: Optional[LockMemoryController] = None
        self.maxlocks: Optional[AdaptiveMaxlocks] = None

    def attach(self, database: "Database") -> None:
        controller = LockMemoryController(
            registry=database.registry,
            chain=database.chain,
            params=self.params,
            num_applications=database.connected_applications,
            escalation_count=lambda: database.lock_manager.stats.escalations.count,
            clock=lambda: database.env.now,
        )
        maxlocks = AdaptiveMaxlocks(
            params=self.params,
            allocated_pages=lambda: database.chain.allocated_pages,
            max_lock_memory_pages=controller.max_lock_memory_pages,
        )
        database.lock_manager.growth_provider = controller.sync_grow
        if self.fixed_maxlocks_fraction is not None:
            fixed = self.fixed_maxlocks_fraction
            database.lock_manager.maxlocks_provider = lambda: fixed
        else:
            database.lock_manager.maxlocks_provider = maxlocks.fraction
        database.lock_manager.refresh_period = self.params.refresh_period_requests
        database.lock_manager.refresh_maxlocks()
        # Section 3.5: MAXLOCKS is re-computed on *every* resize,
        # including the asynchronous STMM ones.
        controller.on_resize = database.lock_manager.refresh_maxlocks
        database.stmm.register_deterministic_tuner(controller)
        self.controller = controller
        self.maxlocks = maxlocks

    def describe(self) -> str:
        p = self.params
        return (
            f"{self.name}: free band {p.min_free_fraction:.0%}-"
            f"{p.max_free_fraction:.0%}, delta_reduce {p.delta_reduce:.0%}, "
            f"C1 {p.c1_overflow_fraction:.0%}, max "
            f"{p.max_lock_memory_fraction:.0%} of databaseMemory"
        )


class NoTuningPolicy(TuningPolicy):
    """A policy that leaves lock memory exactly as configured.

    Baseline scaffolding: no growth provider, no STMM tuner.  MAXLOCKS
    stays at whatever static fraction the lock manager was created with.
    """

    name = "no-tuning"

    def attach(self, database: "Database") -> None:
        database.lock_manager.growth_provider = None
        database.lock_manager.maxlocks_provider = None
