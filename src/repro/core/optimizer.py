"""The SQL compiler's stabilized view of lock memory (paper section 3.6).

With self-tuning, the instantaneous lock memory and MAXLOCKS values are
fluid.  If the query optimizer read them directly, a statement compiled
at a low-memory moment would bake table-level locking into its plan,
pre-empting the self-tuning algorithm from avoiding escalation at
runtime.  The paper resolves this by exposing a *fixed* approximation:

    sqlCompilerLockMem = 0.10 * databaseMemory

This module models that: a tiny plan-time decision of row versus table
locking for a statement, based on the stable compiler view rather than
the live allocation.  The DSS workload uses it so that the reporting
query of Figure 11 compiles to row locking (letting the runtime tuner do
its job), exactly as in the paper.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.params import TuningParameters
from repro.units import PAGE_SIZE_BYTES


class LockGranularity(enum.Enum):
    """Plan-time locking strategy for a statement."""

    ROW = "row"
    TABLE = "table"


@dataclass(frozen=True)
class PlanChoice:
    """Outcome of the optimizer's lock-granularity decision."""

    granularity: LockGranularity
    estimated_locks: int
    compiler_lock_budget: int
    reason: str


class QueryOptimizer:
    """Chooses row vs table locking using the stable compiler view.

    A statement estimated to need more lock structures than the
    compiler's lock-memory view can hold compiles to table locking (it
    would inevitably escalate); anything else compiles to row locking
    and relies on the runtime tuner.  "If the estimate is excessively
    large, escalation will occur at runtime which would have been
    unavoidable regardless" (section 3.6).
    """

    def __init__(
        self,
        params: TuningParameters,
        database_memory_pages: int,
    ) -> None:
        self.params = params
        self.database_memory_pages = database_memory_pages

    def compiler_lock_memory_pages(self) -> int:
        """sqlCompilerLockMem, in pages."""
        return self.params.sql_compiler_lock_memory_pages(self.database_memory_pages)

    def compiler_lock_budget_structures(self) -> int:
        """Lock structures the compiler assumes can be available."""
        pages = self.compiler_lock_memory_pages()
        return pages * PAGE_SIZE_BYTES // self.params.locksize_bytes

    def choose_lock_granularity(self, estimated_rows: int) -> PlanChoice:
        """Plan-time decision for a statement touching ``estimated_rows``."""
        if estimated_rows < 0:
            raise ValueError(f"estimated_rows must be non-negative, got {estimated_rows}")
        budget = self.compiler_lock_budget_structures()
        # The compiler also assumes the statement may only use the
        # unconstrained per-application share of that memory.
        per_app_budget = math.floor(budget * self.params.maxlocks_p / 100.0)
        if estimated_rows <= per_app_budget:
            return PlanChoice(
                granularity=LockGranularity.ROW,
                estimated_locks=estimated_rows,
                compiler_lock_budget=per_app_budget,
                reason=(
                    f"{estimated_rows} locks fit the stable compiler view "
                    f"({per_app_budget} structures)"
                ),
            )
        return PlanChoice(
            granularity=LockGranularity.TABLE,
            estimated_locks=estimated_rows,
            compiler_lock_budget=per_app_budget,
            reason=(
                f"{estimated_rows} locks exceed the compiler view "
                f"({per_app_budget} structures); escalation would be unavoidable"
            ),
        )
