"""The adaptive lock memory controller (paper sections 3.2-3.4).

This object is both:

* the **deterministic tuner** STMM drives at each tuning interval
  (asynchronous path): it computes ``targetSize`` so that between
  ``minFreeLockMemory`` and ``maxFreeLockMemory`` of the lock memory is
  free, shrinks by ``delta_reduce`` when grossly underutilized, and
  doubles while escalations persist, and
* the **synchronous growth provider** the lock manager calls when a lock
  request finds no free structure mid-interval: memory is taken from
  database overflow on demand, bounded by ``LMOmax`` and
  ``maxLockMemory``.

The decision rules, quoting section 3.3:

* "``targetSize`` is defined to satisfy the ``minFreeLockMemory``
  objective.  However, in the case where the new ``targetSize`` falls
  between ``minFreeLockMemory`` and ``maxFreeLockMemory`` then
  ``targetSize`` is defined as the ``targetSize`` from the previous STMM
  tuning interval so that no change will be made";
* section 3.4: shrink only "when there are more than
  ``maxFreeLockMemory`` free", by "5 % of the current lock memory size
  rounded to the nearest number of 128 KB blocks", "down to a minimum of
  ``maxFreeLockMemory``" free;
* section 3.1: "lock memory will double each tuning interval while
  escalations are continuing".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.params import TuningParameters
from repro.errors import MemoryAccountingError
from repro.lockmgr.blocks import LockBlockChain
from repro.memory.registry import DatabaseMemoryRegistry
from repro.units import (
    PAGE_SIZE_BYTES,
    PAGES_PER_BLOCK,
    round_pages_to_blocks,
)


@dataclass
class ControllerDecision:
    """One asynchronous tuning decision, kept for tests and reporting."""

    time: float
    reason: str
    current_pages: int
    used_pages: int
    free_fraction: float
    target_pages: int
    min_pages: int
    max_pages: int
    escalations_in_interval: int


class LockMemoryController:
    """Self-tuning lock memory: STMM tuner plus synchronous growth.

    Parameters
    ----------
    registry:
        The database memory registry holding the ``locklist`` heap.
    chain:
        The lock manager's block chain (physical lock memory).
    params:
        Algorithm parameters (Table 1 defaults).
    num_applications:
        Callable returning the current number of connected applications
        (feeds minLockMemory).
    escalation_count:
        Callable returning the cumulative escalation count (feeds the
        escalation-recovery doubling rule).
    heap_name:
        Registry heap this controller owns (default ``"locklist"``).
    """

    def __init__(
        self,
        registry: DatabaseMemoryRegistry,
        chain: LockBlockChain,
        params: Optional[TuningParameters] = None,
        num_applications: Callable[[], int] = lambda: 0,
        escalation_count: Callable[[], int] = lambda: 0,
        heap_name: str = "locklist",
        clock: Callable[[], float] = lambda: 0.0,
    ) -> None:
        self.registry = registry
        self.chain = chain
        self.params = params or TuningParameters()
        self.num_applications = num_applications
        self.escalation_count = escalation_count
        self.heap_name = heap_name
        self.clock = clock
        #: Lock memory taken synchronously from overflow since the last
        #: tuning interval (LMO in the paper).
        self.lmo_pages = 0
        #: LMOC -- the Lock Memory On-disk Configuration (section 3.3).
        #: The persisted configuration value, updated only at tuning
        #: intervals; the in-memory allocation "is allowed to grow
        #: beyond the LMOC as a transient effect" via synchronous
        #: growth between intervals.
        self.lmoc_pages = chain.allocated_pages
        #: Cumulative count of synchronous growth denials (observability).
        self.sync_growth_denials = 0
        self.decisions: List[ControllerDecision] = []
        #: Hook invoked after every physical resize -- the paper requires
        #: lockPercentPerApplication to be re-computed "every time the
        #: lock memory is resized" (section 3.5); the policy wires this
        #: to ``LockManager.refresh_maxlocks``.
        self.on_resize: Optional[Callable[[], None]] = None
        self._escalations_at_interval_start = 0
        self._locks_per_page = PAGE_SIZE_BYTES // self.params.locksize_bytes

    # -- derived bounds ----------------------------------------------------

    def min_lock_memory_pages(self) -> int:
        return self.params.min_lock_memory_pages(self.num_applications())

    def max_lock_memory_pages(self) -> int:
        return self.params.max_lock_memory_pages(self.registry.total_pages)

    def used_pages(self) -> int:
        """Pages needed to store the lock structures currently in use."""
        return -(-self.chain.used_slots // self._locks_per_page)

    def check_consistency(self) -> None:
        """The registry heap and the physical chain must agree."""
        heap_pages = self.registry.heap(self.heap_name).size_pages
        if heap_pages != self.chain.allocated_pages:
            raise MemoryAccountingError(
                f"locklist heap is {heap_pages} pages but chain holds "
                f"{self.chain.allocated_pages} pages"
            )

    # -- DeterministicTuner protocol (asynchronous path) ----------------------

    def compute_target_pages(self) -> int:
        """targetSize for the coming interval (sections 3.3-3.4)."""
        params = self.params
        current = self.chain.allocated_pages
        used = self.used_pages()
        free_fraction = self.chain.free_fraction()
        min_pages = self.min_lock_memory_pages()
        max_pages = self.max_lock_memory_pages()
        escalations = self.escalation_count() - self._escalations_at_interval_start

        if params.escalation_doubling and escalations > 0:
            # Massive spike under constrained overflow: double until the
            # escalations stop (section 3.1).
            target = max(current * 2, PAGES_PER_BLOCK)
            reason = "escalation-doubling"
        elif free_fraction < params.min_free_fraction:
            # Grow so that minFreeLockMemory of the new size is free.
            target = math.ceil(used / (1.0 - params.min_free_fraction))
            reason = "grow-to-min-free"
        elif free_fraction > params.max_free_fraction:
            # Slow shrink: delta_reduce of current size per interval,
            # "rounded to the nearest number of 128 KB blocks" (min one
            # block), never overshooting below the maxFreeLockMemory-
            # free state.
            step_blocks = max(
                1, round(current * params.delta_reduce / PAGES_PER_BLOCK)
            )
            floor_pages = math.ceil(used / (1.0 - params.max_free_fraction))
            target = max(current - step_blocks * PAGES_PER_BLOCK, floor_pages)
            reason = "shrink-delta-reduce"
        else:
            # Within the [minFree, maxFree] spread: keep the previous
            # target so the allocation is not constantly adjusted.
            target = current
            reason = "hold"

        target = max(target, min_pages)
        target = min(target, max_pages)
        target = round_pages_to_blocks(target)
        # Rounding up must not push past the block-rounded maximum.
        target = min(target, round_pages_to_blocks(max_pages))

        self.decisions.append(
            ControllerDecision(
                time=self.clock(),
                reason=reason,
                current_pages=current,
                used_pages=used,
                free_fraction=free_fraction,
                target_pages=target,
                min_pages=min_pages,
                max_pages=max_pages,
                escalations_in_interval=escalations,
            )
        )
        return target

    def grow_physical(self, pages: int) -> int:
        """Allocate whole blocks for an STMM grant of ``pages``."""
        blocks = pages // PAGES_PER_BLOCK
        self.chain.add_blocks(blocks)
        if blocks and self.on_resize is not None:
            self.on_resize()
        return blocks * PAGES_PER_BLOCK

    def shrink_physical(self, pages: int) -> int:
        """Release up to ``pages`` worth of entirely-free blocks.

        Scans from the tail of the availability list (section 2.2); only
        blocks with no outstanding lock structures can be freed, so the
        achieved amount may be smaller than requested.
        """
        blocks = pages // PAGES_PER_BLOCK
        freed = self.chain.release_blocks(blocks, partial=True)
        if freed and self.on_resize is not None:
            self.on_resize()
        return freed * PAGES_PER_BLOCK

    def on_interval_end(self, now: float) -> None:
        """Interval rollover: LMO is reconciled, LMOC externalized,
        counters snapshot.

        At each tuning interval STMM folds any synchronous (transient)
        growth into the persisted configuration: the on-disk LMOC
        catches up with the in-memory allocation (section 3.3).
        """
        self.lmo_pages = 0
        self.lmoc_pages = self.chain.allocated_pages
        self._escalations_at_interval_start = self.escalation_count()

    @property
    def transient_overage_pages(self) -> int:
        """In-memory allocation currently beyond the on-disk LMOC."""
        return max(0, self.chain.allocated_pages - self.lmoc_pages)

    def reclaim_transient_blocks(self) -> int:
        """Return entirely-free transiently borrowed blocks to overflow.

        Synchronous growth borrows blocks from overflow mid-interval;
        normally the next tuning pass folds the borrow into the LMOC
        (:meth:`on_interval_end`).  When the service shuts down with a
        borrow still in flight -- lock memory beyond the LMOC that no
        tuning pass will ever reconcile -- those blocks must go back to
        overflow, or the registry permanently over-charges the locklist
        for memory nothing uses.  Only blocks with no outstanding
        structures can move (the shrink protocol); blocks still backing
        live locks stay until their owners release.  Returns the number
        of blocks returned to overflow.
        """
        overage_blocks = self.transient_overage_pages // PAGES_PER_BLOCK
        if overage_blocks == 0:
            return 0
        freed = self.chain.release_blocks(overage_blocks, partial=True)
        if freed == 0:
            return 0
        pages = freed * PAGES_PER_BLOCK
        self.registry.shrink_heap(self.heap_name, pages)
        self.lmo_pages = max(0, self.lmo_pages - pages)
        if self.on_resize is not None:
            self.on_resize()
        return freed

    # -- synchronous growth (mid-interval, section 3.3) ------------------------

    def sync_grow(self, blocks_wanted: int) -> int:
        """Grant up to ``blocks_wanted`` blocks from overflow memory.

        Called by the lock manager when a lock request finds no free
        structure.  The grant is bounded by:

        * ``maxLockMemory`` (0.20 * databaseMemory),
        * ``LMOmax`` = C1 * (overflow + LMO): lock memory may never
          consume the last 1-C1 of the overflow reserve,
        * the pages actually present in overflow.

        Returns the number of blocks granted (0 when constrained, which
        is the escalation path).  The caller (the lock manager) adds the
        granted blocks to its chain; this method only moves the pages
        from overflow into the locklist heap.
        """
        if blocks_wanted <= 0:
            raise ValueError(f"blocks_wanted must be positive, got {blocks_wanted}")
        want_pages = blocks_wanted * PAGES_PER_BLOCK
        max_headroom = max(
            0, self.max_lock_memory_pages() - self.chain.allocated_pages
        )
        lmo_max = self.params.lmo_max_pages(
            self.registry.overflow_pages, self.lmo_pages
        )
        lmo_headroom = max(0, lmo_max - self.lmo_pages)
        allow_pages = min(
            want_pages, max_headroom, lmo_headroom, self.registry.overflow_pages
        )
        allow_blocks = allow_pages // PAGES_PER_BLOCK
        if allow_blocks == 0:
            self.sync_growth_denials += 1
            return 0
        granted = self.registry.grow_heap(
            self.heap_name, allow_blocks * PAGES_PER_BLOCK, partial=True
        )
        granted_blocks = granted // PAGES_PER_BLOCK
        remainder = granted - granted_blocks * PAGES_PER_BLOCK
        if remainder:
            self.registry.shrink_heap(self.heap_name, remainder)
        if granted_blocks == 0:
            self.sync_growth_denials += 1
            return 0
        self.lmo_pages += granted_blocks * PAGES_PER_BLOCK
        return granted_blocks
