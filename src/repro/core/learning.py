"""Learned lock estimation for the query optimizer (section 6.1).

The paper's first future-work item: "Learning in query optimization to
better estimate locking decisions that are made at query optimization
time."  The base :class:`~repro.core.optimizer.QueryOptimizer` decides
row-vs-table locking from the *a-priori* row estimate a statement
carries; cardinality estimates are notoriously wrong, so a statement
estimated at 1,000 rows may in fact lock a million (forcing runtime
escalation the optimizer could have avoided) or vice versa (a statement
needlessly compiled to a table lock).

:class:`LearningQueryOptimizer` closes the loop: after each execution
the runtime reports the locks the statement *actually* took, and the
optimizer maintains an exponentially weighted estimate per statement
class.  Subsequent compilations of the same class use the corrected
estimate.  The stable ``sqlCompilerLockMem`` view (section 3.6) is
still what the corrected estimate is compared against -- learning fixes
the *demand* side of the decision, not the supply side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.optimizer import PlanChoice, QueryOptimizer
from repro.core.params import TuningParameters
from repro.errors import ConfigurationError


@dataclass
class StatementStats:
    """Learned state for one statement class."""

    #: Exponentially weighted estimate of locks actually taken.
    learned_locks: float
    executions: int = 0
    #: Running absolute error of the *original* compiler estimates,
    #: kept so the benefit of learning can be quantified.
    estimate_error_total: float = 0.0
    learned_error_total: float = 0.0


class LearningQueryOptimizer:
    """A query optimizer that corrects lock estimates from feedback.

    Parameters
    ----------
    params / database_memory_pages:
        Passed through to the underlying :class:`QueryOptimizer`.
    smoothing:
        EWMA weight of the newest observation in (0, 1]; 1.0 means
        "always trust the last execution".
    """

    def __init__(
        self,
        params: TuningParameters,
        database_memory_pages: int,
        smoothing: float = 0.5,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self._base = QueryOptimizer(params, database_memory_pages)
        self.smoothing = smoothing
        self._stats: Dict[str, StatementStats] = {}

    @property
    def base(self) -> QueryOptimizer:
        """The underlying estimate-driven optimizer."""
        return self._base

    def statement_stats(self, statement_class: str) -> Optional[StatementStats]:
        """Learned state for a statement class (None before feedback)."""
        return self._stats.get(statement_class)

    def effective_estimate(
        self, statement_class: str, estimated_rows: int
    ) -> int:
        """The row estimate compilation will use: learned if available."""
        if estimated_rows < 0:
            raise ValueError(
                f"estimated_rows must be non-negative, got {estimated_rows}"
            )
        stats = self._stats.get(statement_class)
        if stats is None or stats.executions == 0:
            return estimated_rows
        return max(0, round(stats.learned_locks))

    def choose_lock_granularity(
        self, statement_class: str, estimated_rows: int
    ) -> PlanChoice:
        """Plan-time decision using the corrected estimate."""
        effective = self.effective_estimate(statement_class, estimated_rows)
        choice = self._base.choose_lock_granularity(effective)
        if effective != estimated_rows:
            return PlanChoice(
                granularity=choice.granularity,
                estimated_locks=effective,
                compiler_lock_budget=choice.compiler_lock_budget,
                reason=(
                    f"learned estimate {effective} (a-priori {estimated_rows}) "
                    f"for {statement_class!r}: {choice.reason}"
                ),
            )
        return choice

    def observe_execution(
        self,
        statement_class: str,
        estimated_rows: int,
        actual_locks: int,
    ) -> StatementStats:
        """Feed back the locks a statement actually took."""
        if actual_locks < 0:
            raise ValueError(
                f"actual_locks must be non-negative, got {actual_locks}"
            )
        stats = self._stats.get(statement_class)
        if stats is None:
            stats = StatementStats(learned_locks=float(actual_locks))
            self._stats[statement_class] = stats
        else:
            # error bookkeeping uses the pre-update learned estimate
            stats.learned_error_total += abs(stats.learned_locks - actual_locks)
            stats.learned_locks += self.smoothing * (
                actual_locks - stats.learned_locks
            )
        stats.executions += 1
        stats.estimate_error_total += abs(estimated_rows - actual_locks)
        return stats

    def learning_benefit(self, statement_class: str) -> Optional[float]:
        """Mean-absolute-error reduction of learned vs a-priori estimates.

        Returns a value in [0, 1] (1 = learning removed all estimation
        error), or None before at least two executions.
        """
        stats = self._stats.get(statement_class)
        if stats is None or stats.executions < 2:
            return None
        # the first execution has no learned prediction; compare over
        # the remaining executions
        n = stats.executions - 1
        apriori_mae = stats.estimate_error_total / stats.executions
        learned_mae = stats.learned_error_total / n
        if apriori_mae == 0:
            return 0.0
        return max(0.0, 1.0 - learned_mae / apriori_mae)
