"""One-call assembly of the live lock service and its tuning stack.

:class:`ServiceStack` is the service-world analogue of
:class:`repro.engine.database.Database`: it wires the memory registry,
the block chain, the thread-safe :class:`LockService`, the paper's
:class:`LockMemoryController` + adaptive MAXLOCKS, STMM, the
:class:`TunerDaemon` and the :class:`AdmissionController` together,
exactly the way the simulation assembly does -- same providers, same
``on_resize`` hook, same overflow plumbing -- so the live system runs
the identical tuning algorithm, just on wall-clock intervals.

The memory model is deliberately smaller than the full simulated
database: one bufferpool heap (the PMC donor STMM trades against) plus
the locklist FMC heap and the overflow area.  That is all the lock
memory algorithm of the paper interacts with.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.controller import LockMemoryController
from repro.core.maxlocks import AdaptiveMaxlocks
from repro.core.params import TuningParameters
from repro.errors import ConfigurationError
from repro.lockmgr.blocks import LockBlockChain
from repro.memory.bufferpool import BufferpoolModel
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig
from repro.obs.incidents import IncidentLog, IncidentRecorder
from repro.obs.registry import MetricRegistry
from repro.obs.spans import RequestSpanSampler
from repro.obs.waits import WaitEventProfiler, merged_class_totals
from repro.service.admission import AdmissionController
from repro.service.broker import (
    BrokerConfig,
    MemoryBroker,
    RateMeter,
    WorkloadProfile,
    default_estimators,
)
from repro.service.clock import Clock, MonotonicClock
from repro.service.ops import OpsServer
from repro.service.service import LockService
from repro.service.tuner import TunerDaemon
from repro.units import PAGES_PER_BLOCK, round_pages_to_blocks


@dataclass
class ServiceConfig:
    """Sizing of a live service stack (defaults: 64 MB, demo scale)."""

    #: databaseMemory in 4 KB pages.  16384 pages = 64 MB.
    total_memory_pages: int = 16_384
    #: Initial LOCKLIST size in pages (rounded up to whole blocks).
    initial_locklist_pages: int = 128
    #: Share of databaseMemory the bufferpool (the STMM donor) starts with.
    bufferpool_fraction: float = 0.70
    #: STMM overflow-area goal as a fraction of databaseMemory.
    overflow_goal_fraction: float = 0.05
    #: Tuning parameters of the paper's algorithm.
    params: TuningParameters = field(default_factory=TuningParameters)
    #: STMM scheduling (interval, adaptivity).
    stmm: StmmConfig = field(default_factory=StmmConfig)
    #: Wall-clock seconds between tuner passes (None = STMM's interval;
    #: demos and tests want something far shorter than DB2's 30 s).
    tuner_interval_s: Optional[float] = 0.25
    #: Concurrency bound and wait-queue depth at the front door.
    max_in_flight: int = 64
    admission_queue_depth: int = 128
    #: Default per-request deadline (None = wait forever).
    default_timeout_s: Optional[float] = None
    #: Manager-level LOCKTIMEOUT (DB2's -1 default = wait forever).
    lock_timeout_s: Optional[float] = None
    #: Record service.* / tuner.* metrics into a registry.
    telemetry: bool = True
    #: TCP port of the live ops plane (/metrics, /healthz, /stmm).
    #: None = no HTTP server; 0 = ephemeral port (tests/CI).
    ops_port: Optional[int] = None
    #: Sample every Nth request's admission->grant->release span
    #: (0 = off, keeping hot paths at the one-None-check contract).
    span_sample_every: int = 0
    #: Sample every Nth network request for an end-to-end distributed
    #: trace (0 = off; only the networked client/worker path traces --
    #: see :mod:`repro.obs.tracing`).  Off costs one ``is None`` check.
    trace_sample_every: int = 0
    #: Ring-buffer bound of the STMM decision audit log.
    audit_capacity: int = 256
    #: Enable the wait-event profiler (lock waits with blocker
    #: attribution, latch gets/misses, admission waits, sync-growth
    #: stalls).  Off keeps every hot path at one ``is None`` check.
    wait_profile: bool = False
    #: Ring-buffer bound of raw wait events per profiler (per shard).
    wait_ring_capacity: int = 512
    #: Ring-buffer bound of the incident forensics log.
    incident_capacity: int = 128
    #: Enable the whole-memory broker: sort/hashjoin/pkgcache heaps join
    #: the registry, benefit-driven block trading runs each tuning pass,
    #: and memory pressure drives the admission posture state machine.
    broker: bool = False
    #: Starting shares of databaseMemory for the brokered PMC heaps
    #: (only used when ``broker`` is on; bufferpool_fraction above is
    #: the fourth).  Each is floored at one 128 KB block.
    sortheap_fraction: float = 0.06
    hashjoin_fraction: float = 0.04
    pkgcache_fraction: float = 0.05
    #: Broker knobs (None = BrokerConfig defaults).
    broker_config: Optional[BrokerConfig] = None
    #: The modelled workload rates the estimators assume (None =
    #: WorkloadProfile defaults; fields accept callables for scripted
    #: demand sequences).
    broker_profile: Optional[WorkloadProfile] = None

    def __post_init__(self) -> None:
        if self.initial_locklist_pages < PAGES_PER_BLOCK:
            raise ConfigurationError(
                f"initial_locklist_pages must be at least one block "
                f"({PAGES_PER_BLOCK} pages)"
            )
        locklist = round_pages_to_blocks(self.initial_locklist_pages)
        bufferpool = int(self.bufferpool_fraction * self.total_memory_pages)
        initial = locklist + bufferpool
        if self.broker:
            for fraction in (
                self.sortheap_fraction,
                self.hashjoin_fraction,
                self.pkgcache_fraction,
            ):
                if fraction < 0:
                    raise ConfigurationError(
                        f"broker heap fractions must be non-negative, "
                        f"got {fraction}"
                    )
                initial += max(
                    PAGES_PER_BLOCK, int(fraction * self.total_memory_pages)
                )
        if initial >= self.total_memory_pages:
            raise ConfigurationError(
                "initial heaps oversubscribe database memory"
            )
        if self.ops_port is not None and not self.telemetry:
            raise ConfigurationError(
                "ops_port requires telemetry: /metrics serves the registry"
            )
        if self.ops_port is not None and self.ops_port < 0:
            raise ConfigurationError(
                f"ops_port must be non-negative, got {self.ops_port}"
            )
        if self.span_sample_every < 0:
            raise ConfigurationError(
                f"span_sample_every must be non-negative, "
                f"got {self.span_sample_every}"
            )
        if self.trace_sample_every < 0:
            raise ConfigurationError(
                f"trace_sample_every must be non-negative, "
                f"got {self.trace_sample_every}"
            )
        if self.audit_capacity <= 0:
            raise ConfigurationError(
                f"audit_capacity must be positive, got {self.audit_capacity}"
            )
        if self.wait_ring_capacity <= 0:
            raise ConfigurationError(
                f"wait_ring_capacity must be positive, "
                f"got {self.wait_ring_capacity}"
            )
        if self.incident_capacity <= 0:
            raise ConfigurationError(
                f"incident_capacity must be positive, "
                f"got {self.incident_capacity}"
            )


def build_memory_registry(cfg: ServiceConfig) -> DatabaseMemoryRegistry:
    """The service memory model: bufferpool (PMC donor) + locklist + overflow.

    Shared by the unsharded and sharded stacks so both run the paper's
    tuning algorithm against the identical registry layout.
    """
    registry = DatabaseMemoryRegistry(
        total_pages=cfg.total_memory_pages,
        overflow_goal_pages=int(
            cfg.overflow_goal_fraction * cfg.total_memory_pages
        ),
    )
    bp_model = BufferpoolModel()
    registry.register(
        MemoryHeap(
            "bufferpool",
            HeapCategory.PMC,
            size_pages=int(cfg.bufferpool_fraction * cfg.total_memory_pages),
            min_pages=int(0.10 * cfg.total_memory_pages),
            benefit=lambda heap: bp_model.marginal_benefit(heap.size_pages),
        )
    )
    registry.register(
        MemoryHeap(
            "locklist",
            HeapCategory.FMC,
            size_pages=round_pages_to_blocks(cfg.initial_locklist_pages),
            min_pages=0,
        )
    )
    if getattr(cfg, "broker", False):
        # The remaining PMC consumers the paper's section 2.1 names;
        # each keeps at least one block so it can always re-enter the
        # trading ranking as a receiver.
        for name, fraction in (
            ("sortheap", cfg.sortheap_fraction),
            ("hashjoin", cfg.hashjoin_fraction),
            ("pkgcache", cfg.pkgcache_fraction),
        ):
            registry.register(
                MemoryHeap(
                    name,
                    HeapCategory.PMC,
                    size_pages=max(
                        PAGES_PER_BLOCK, int(fraction * cfg.total_memory_pages)
                    ),
                    min_pages=PAGES_PER_BLOCK,
                )
            )
    return registry


def build_broker(
    cfg: ServiceConfig,
    registry: DatabaseMemoryRegistry,
    admission: AdmissionController,
    *,
    used_pages,
    escalations,
    metrics=None,
) -> MemoryBroker:
    """Assemble the whole-memory broker over a built registry.

    Shared by the unsharded and sharded stacks: both hand in their
    registry, their admission front door and two live LOCKLIST signals
    (used pages and the cumulative escalation count, differentiated
    into a rate by a :class:`RateMeter`).
    """
    profile = cfg.broker_profile or WorkloadProfile()
    estimators = default_estimators(
        registry,
        profile,
        locklist_used_pages=used_pages,
        locklist_escalation_rate=RateMeter(escalations),
        locklist_min_free_fraction=cfg.params.min_free_fraction,
    )
    return MemoryBroker(
        registry,
        estimators,
        admission=admission,
        config=cfg.broker_config,
        metrics=metrics,
    )


def controller_params(cfg, tuner) -> dict:
    """The controller constants in effect, for ``/stmm`` consumers.

    ``analyze`` and ``top`` label their reports with these instead of
    guessing the paper's defaults (C1, the free band, delta_reduce and
    the tuning interval are all configurable).
    """
    params = cfg.params
    return {
        "c1_overflow_fraction": params.c1_overflow_fraction,
        "min_free_fraction": params.min_free_fraction,
        "max_free_fraction": params.max_free_fraction,
        "delta_reduce": params.delta_reduce,
        "interval_s": (
            tuner.interval_override_s
            if tuner.interval_override_s is not None
            else tuner.stmm.current_interval_s
        ),
    }


def wait_class_payload(profilers) -> Optional[dict]:
    """``{class: {count, seconds}}`` over the stack's profilers.

    None when wait profiling is disabled, so consumers can tell "off"
    apart from "on but idle".
    """
    if not profilers:
        return None
    return {
        cls: {"count": count, "seconds": seconds}
        for cls, (count, seconds) in merged_class_totals(profilers).items()
    }


class ServiceStack:
    """A fully wired live lock service (see module docstring)."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        clock: Optional[Clock] = None,
    ) -> None:
        cfg = config or ServiceConfig()
        self.config = cfg
        self.clock = clock or MonotonicClock()
        self.metrics: Optional[MetricRegistry] = (
            MetricRegistry() if cfg.telemetry else None
        )

        locklist_pages = round_pages_to_blocks(cfg.initial_locklist_pages)
        self.registry = build_memory_registry(cfg)

        self.chain = LockBlockChain(
            initial_blocks=locklist_pages // PAGES_PER_BLOCK
        )
        self.service = LockService(
            self.chain,
            clock=self.clock,
            default_timeout_s=cfg.default_timeout_s,
            lock_timeout_s=cfg.lock_timeout_s,
            metrics=self.metrics,
        )

        # The paper's controller + adaptive MAXLOCKS, wired exactly as
        # AdaptiveLockMemoryPolicy.attach does for the simulation.
        self.controller = LockMemoryController(
            registry=self.registry,
            chain=self.chain,
            params=cfg.params,
            num_applications=self.service.session_count,
            escalation_count=lambda: self.service.manager.stats.escalations.count,
            clock=self.clock.now,
        )
        self.maxlocks = AdaptiveMaxlocks(
            params=cfg.params,
            allocated_pages=lambda: self.chain.allocated_pages,
            max_lock_memory_pages=self.controller.max_lock_memory_pages,
        )
        manager = self.service.manager
        manager.growth_provider = self.controller.sync_grow
        manager.maxlocks_provider = self.maxlocks.fraction
        manager.refresh_period = cfg.params.refresh_period_requests
        manager.refresh_maxlocks()
        self.controller.on_resize = manager.refresh_maxlocks
        self.service.borrow_return = self.controller.reclaim_transient_blocks

        stmm_cfg = cfg.stmm
        if cfg.broker and stmm_cfg.pmc_rebalance_fraction:
            # All PMC movement goes through the broker's audited
            # trading pass; STMM's unaudited 2% rebalance would fight
            # it (and leave page moves with no trade-benefit record).
            stmm_cfg = replace(stmm_cfg, pmc_rebalance_fraction=0.0)
        self.stmm = Stmm(self.registry, stmm_cfg)
        self.stmm.register_deterministic_tuner(self.controller)
        self.tuner = TunerDaemon(
            self.service,
            self.stmm,
            interval_override_s=cfg.tuner_interval_s,
            metrics=self.metrics,
            controller=self.controller,
            audit_capacity=cfg.audit_capacity,
        )
        self.admission = AdmissionController(
            cfg.max_in_flight,
            cfg.admission_queue_depth,
            clock=self.clock,
        )
        self.broker: Optional[MemoryBroker] = None
        if cfg.broker:
            self.broker = build_broker(
                cfg,
                self.registry,
                self.admission,
                used_pages=self.controller.used_pages,
                escalations=lambda: self.service.manager.stats.escalations.count,
                metrics=self.metrics,
            )
            self.tuner.broker = self.broker
        if cfg.span_sample_every > 0 and self.metrics is not None:
            self.service.span_sampler = RequestSpanSampler(
                cfg.span_sample_every,
                self.clock.now,
                registry=self.metrics,
            )
        # Incident forensics is always on (capture only runs when a
        # deadlock / escalation / freeze actually fires).
        self.incidents = IncidentLog(capacity=cfg.incident_capacity)
        recorder = IncidentRecorder(
            self.incidents, shard=0, audit=self.tuner.audit
        )
        manager.incidents = recorder
        self.tuner.incidents = recorder
        #: Wait-event profilers feeding telemetry (one per lock domain;
        #: a single shared instance here -- manager, latch and admission
        #: classes are disjoint, and the sharded stack mirrors the
        #: attribute with one profiler per shard).
        self.wait_profilers = []
        if cfg.wait_profile:
            profiler = WaitEventProfiler(
                self.clock,
                registry=self.metrics,
                capacity=cfg.wait_ring_capacity,
            )
            manager.wait_profiler = profiler
            self.service.env.latch_profiler = profiler
            self.admission.wait_profiler = profiler
            self.wait_profilers = [profiler]
        self.ops: Optional[OpsServer] = None
        if cfg.ops_port is not None:
            assert self.metrics is not None  # enforced by the config
            self.ops = OpsServer(
                self.metrics,
                health=self.ops_health,
                stmm_status=self.ops_stmm,
                refresh=self.publish_ops_metrics,
                incidents=self.ops_incidents,
                port=cfg.ops_port,
            )
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServiceStack":
        """Launch the tuning daemon (and the ops plane, when configured)."""
        if self._started:
            raise ConfigurationError("service stack already started")
        self._started = True
        self.tuner.start()
        if self.ops is not None:
            self.ops.start()
        return self

    def stop(self) -> None:
        """Stop tuning, close the doors, cancel pending waits."""
        if self.ops is not None:
            self.ops.stop()
        self.tuner.stop()
        self.admission.close()
        self.service.close()

    def __enter__(self) -> "ServiceStack":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- reporting ---------------------------------------------------------

    @property
    def manager_stats(self):
        """Lock-manager counters (one manager here; aggregated when
        sharded)."""
        return self.service.manager.stats

    # -- the ops plane -----------------------------------------------------

    def publish_ops_metrics(self) -> None:
        """Refresh the point-in-time gauges a scrape should see live.

        Counters update on the hot paths; these are *state* readings
        (sizes, fractions, queue depths) that would otherwise lag one
        tuning interval behind.
        """
        if self.metrics is None:
            return
        reg = self.metrics
        stats = self.service.manager.stats
        reg.gauge("service.locklist_pages").set(
            float(self.chain.allocated_pages)
        )
        reg.gauge("service.locklist_used_slots").set(
            float(self.chain.used_slots)
        )
        reg.gauge("service.locklist_free_fraction").set(
            self.chain.free_fraction()
        )
        reg.gauge("service.maxlocks_fraction").set(
            self.service.manager.maxlocks_fraction
        )
        reg.gauge("service.sessions").set(float(self.service.session_count()))
        reg.gauge("service.escalations").set(float(stats.escalations.count))
        reg.gauge("service.admission.in_flight").set(
            float(self.admission.in_flight())
        )
        reg.gauge("service.admission.queue_depth").set(
            float(self.admission.queue_depth())
        )
        if self.broker is not None:
            self.broker.publish_metrics()
        for prof in self.wait_profilers:
            latch = prof.latch
            labels = prof.labels
            reg.gauge("latch.gets", labels=labels).set(float(latch.gets))
            reg.gauge("latch.misses", labels=labels).set(float(latch.misses))
            reg.gauge("latch.spins", labels=labels).set(float(latch.spins))
            reg.gauge("latch.sleeps", labels=labels).set(float(latch.sleeps))
            reg.gauge("latch.sleep_seconds", labels=labels).set(
                latch.sleep_time_s
            )

    def ops_health(self) -> dict:
        """The ``/healthz`` body; ``ok`` decides 200 vs 503."""
        tuner = self.tuner
        return {
            "ok": not tuner.frozen and not self.service.closed,
            "service": "lock-service",
            "shards": 1,
            "closed": self.service.closed,
            "sessions": self.service.session_count(),
            "tuner": {
                "alive": tuner.alive,
                "frozen": tuner.frozen,
                "intervals": tuner.intervals_run,
                "crash": None if tuner.crash is None else str(tuner.crash),
                "frozen_reason": self.service.frozen_reason,
            },
        }

    def ops_stmm(self) -> dict:
        """The ``/stmm`` body: audit trail + current memory posture."""
        sampler = self.service.span_sampler
        return {
            "audit": self.tuner.audit.to_dicts(),
            "audit_total": self.tuner.audit.total_recorded,
            "intervals": self.tuner.intervals_run,
            "locklist_pages": self.chain.allocated_pages,
            "locklist_free_fraction": self.chain.free_fraction(),
            "maxlocks_fraction": self.service.manager.maxlocks_fraction,
            "overflow_pages": self.registry.overflow_pages,
            "frozen_reason": self.service.frozen_reason,
            "params": controller_params(self.config, self.tuner),
            "incident_total": self.incidents.total_recorded,
            "wait_classes": wait_class_payload(self.wait_profilers),
            "spans": (
                [] if sampler is None else sampler.finished_dicts(limit=64)
            ),
            "broker": (
                None if self.broker is None else self.broker.status()
            ),
        }

    def ops_incidents(self) -> dict:
        """The ``/incidents`` body: the forensics ring, oldest first."""
        return {
            "total": self.incidents.total_recorded,
            "counts": self.incidents.kind_counts(),
            "incidents": self.incidents.to_dicts(),
        }

    # -- consistency -------------------------------------------------------

    def check_invariants(self) -> None:
        """Byte-exact accounting across every layer.

        The locklist heap in the registry, the physical block chain and
        the manager's per-application slot charges must all agree --
        after any amount of concurrent traffic, growth, escalation and
        tuning.
        """
        self.service.check_invariants()
        self.controller.check_consistency()
        # Registry-wide: overflow_pages raises if heaps oversubscribe.
        self.registry.overflow_pages

    def thread_count(self) -> int:
        """Live service-owned threads (the tuner; drivers are callers')."""
        return sum(
            1
            for t in threading.enumerate()
            if t is getattr(self.tuner, "_thread", None) and t.is_alive()
        )
