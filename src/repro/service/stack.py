"""One-call assembly of the live lock service and its tuning stack.

:class:`ServiceStack` is the service-world analogue of
:class:`repro.engine.database.Database`: it wires the memory registry,
the block chain, the thread-safe :class:`LockService`, the paper's
:class:`LockMemoryController` + adaptive MAXLOCKS, STMM, the
:class:`TunerDaemon` and the :class:`AdmissionController` together,
exactly the way the simulation assembly does -- same providers, same
``on_resize`` hook, same overflow plumbing -- so the live system runs
the identical tuning algorithm, just on wall-clock intervals.

The memory model is deliberately smaller than the full simulated
database: one bufferpool heap (the PMC donor STMM trades against) plus
the locklist FMC heap and the overflow area.  That is all the lock
memory algorithm of the paper interacts with.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.core.controller import LockMemoryController
from repro.core.maxlocks import AdaptiveMaxlocks
from repro.core.params import TuningParameters
from repro.errors import ConfigurationError
from repro.lockmgr.blocks import LockBlockChain
from repro.memory.bufferpool import BufferpoolModel
from repro.memory.heaps import HeapCategory, MemoryHeap
from repro.memory.registry import DatabaseMemoryRegistry
from repro.memory.stmm import Stmm, StmmConfig
from repro.obs.registry import MetricRegistry
from repro.service.admission import AdmissionController
from repro.service.clock import Clock, MonotonicClock
from repro.service.service import LockService
from repro.service.tuner import TunerDaemon
from repro.units import PAGES_PER_BLOCK, round_pages_to_blocks


@dataclass
class ServiceConfig:
    """Sizing of a live service stack (defaults: 64 MB, demo scale)."""

    #: databaseMemory in 4 KB pages.  16384 pages = 64 MB.
    total_memory_pages: int = 16_384
    #: Initial LOCKLIST size in pages (rounded up to whole blocks).
    initial_locklist_pages: int = 128
    #: Share of databaseMemory the bufferpool (the STMM donor) starts with.
    bufferpool_fraction: float = 0.70
    #: STMM overflow-area goal as a fraction of databaseMemory.
    overflow_goal_fraction: float = 0.05
    #: Tuning parameters of the paper's algorithm.
    params: TuningParameters = field(default_factory=TuningParameters)
    #: STMM scheduling (interval, adaptivity).
    stmm: StmmConfig = field(default_factory=StmmConfig)
    #: Wall-clock seconds between tuner passes (None = STMM's interval;
    #: demos and tests want something far shorter than DB2's 30 s).
    tuner_interval_s: Optional[float] = 0.25
    #: Concurrency bound and wait-queue depth at the front door.
    max_in_flight: int = 64
    admission_queue_depth: int = 128
    #: Default per-request deadline (None = wait forever).
    default_timeout_s: Optional[float] = None
    #: Manager-level LOCKTIMEOUT (DB2's -1 default = wait forever).
    lock_timeout_s: Optional[float] = None
    #: Record service.* / tuner.* metrics into a registry.
    telemetry: bool = True

    def __post_init__(self) -> None:
        if self.initial_locklist_pages < PAGES_PER_BLOCK:
            raise ConfigurationError(
                f"initial_locklist_pages must be at least one block "
                f"({PAGES_PER_BLOCK} pages)"
            )
        locklist = round_pages_to_blocks(self.initial_locklist_pages)
        bufferpool = int(self.bufferpool_fraction * self.total_memory_pages)
        if locklist + bufferpool >= self.total_memory_pages:
            raise ConfigurationError(
                "initial heaps oversubscribe database memory"
            )


def build_memory_registry(cfg: ServiceConfig) -> DatabaseMemoryRegistry:
    """The service memory model: bufferpool (PMC donor) + locklist + overflow.

    Shared by the unsharded and sharded stacks so both run the paper's
    tuning algorithm against the identical registry layout.
    """
    registry = DatabaseMemoryRegistry(
        total_pages=cfg.total_memory_pages,
        overflow_goal_pages=int(
            cfg.overflow_goal_fraction * cfg.total_memory_pages
        ),
    )
    bp_model = BufferpoolModel()
    registry.register(
        MemoryHeap(
            "bufferpool",
            HeapCategory.PMC,
            size_pages=int(cfg.bufferpool_fraction * cfg.total_memory_pages),
            min_pages=int(0.10 * cfg.total_memory_pages),
            benefit=lambda heap: bp_model.marginal_benefit(heap.size_pages),
        )
    )
    registry.register(
        MemoryHeap(
            "locklist",
            HeapCategory.FMC,
            size_pages=round_pages_to_blocks(cfg.initial_locklist_pages),
            min_pages=0,
        )
    )
    return registry


class ServiceStack:
    """A fully wired live lock service (see module docstring)."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        clock: Optional[Clock] = None,
    ) -> None:
        cfg = config or ServiceConfig()
        self.config = cfg
        self.clock = clock or MonotonicClock()
        self.metrics: Optional[MetricRegistry] = (
            MetricRegistry() if cfg.telemetry else None
        )

        locklist_pages = round_pages_to_blocks(cfg.initial_locklist_pages)
        self.registry = build_memory_registry(cfg)

        self.chain = LockBlockChain(
            initial_blocks=locklist_pages // PAGES_PER_BLOCK
        )
        self.service = LockService(
            self.chain,
            clock=self.clock,
            default_timeout_s=cfg.default_timeout_s,
            lock_timeout_s=cfg.lock_timeout_s,
            metrics=self.metrics,
        )

        # The paper's controller + adaptive MAXLOCKS, wired exactly as
        # AdaptiveLockMemoryPolicy.attach does for the simulation.
        self.controller = LockMemoryController(
            registry=self.registry,
            chain=self.chain,
            params=cfg.params,
            num_applications=self.service.session_count,
            escalation_count=lambda: self.service.manager.stats.escalations.count,
            clock=self.clock.now,
        )
        self.maxlocks = AdaptiveMaxlocks(
            params=cfg.params,
            allocated_pages=lambda: self.chain.allocated_pages,
            max_lock_memory_pages=self.controller.max_lock_memory_pages,
        )
        manager = self.service.manager
        manager.growth_provider = self.controller.sync_grow
        manager.maxlocks_provider = self.maxlocks.fraction
        manager.refresh_period = cfg.params.refresh_period_requests
        manager.refresh_maxlocks()
        self.controller.on_resize = manager.refresh_maxlocks
        self.service.borrow_return = self.controller.reclaim_transient_blocks

        self.stmm = Stmm(self.registry, cfg.stmm)
        self.stmm.register_deterministic_tuner(self.controller)
        self.tuner = TunerDaemon(
            self.service,
            self.stmm,
            interval_override_s=cfg.tuner_interval_s,
            metrics=self.metrics,
        )
        self.admission = AdmissionController(
            cfg.max_in_flight,
            cfg.admission_queue_depth,
            clock=self.clock,
        )
        self._started = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServiceStack":
        """Launch the tuning daemon.  Idempotent is an error: call once."""
        if self._started:
            raise ConfigurationError("service stack already started")
        self._started = True
        self.tuner.start()
        return self

    def stop(self) -> None:
        """Stop tuning, close the doors, cancel pending waits."""
        self.tuner.stop()
        self.admission.close()
        self.service.close()

    def __enter__(self) -> "ServiceStack":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- reporting ---------------------------------------------------------

    @property
    def manager_stats(self):
        """Lock-manager counters (one manager here; aggregated when
        sharded)."""
        return self.service.manager.stats

    # -- consistency -------------------------------------------------------

    def check_invariants(self) -> None:
        """Byte-exact accounting across every layer.

        The locklist heap in the registry, the physical block chain and
        the manager's per-application slot charges must all agree --
        after any amount of concurrent traffic, growth, escalation and
        tuning.
        """
        self.service.check_invariants()
        self.controller.check_consistency()
        # Registry-wide: overflow_pages raises if heaps oversubscribe.
        self.registry.overflow_pages

    def thread_count(self) -> int:
        """Live service-owned threads (the tuner; drivers are callers')."""
        return sum(
            1
            for t in threading.enumerate()
            if t is getattr(self.tuner, "_thread", None) and t.is_alive()
        )
