"""The live operations plane: ``/metrics``, ``/healthz``, ``/stmm``.

A running lock service is only debuggable while it runs -- the paper's
tuner is an *online* algorithm, and its behaviour (growth bursts,
escalation recovery, the free-band walk) disappears from view the
moment the process exits.  :class:`OpsServer` embeds a small
dependency-free HTTP endpoint (stdlib ``http.server``, threaded) into a
service stack:

``GET /metrics``
    The shared :class:`~repro.obs.registry.MetricRegistry` rendered in
    Prometheus text format 0.0.4 (see :mod:`repro.obs.prometheus`),
    including the per-shard labeled series.  Point-in-time gauges
    (per-shard occupancy, admission depth, LOCKLIST pages) are
    refreshed immediately before rendering via the stack's publish
    hook, so a scrape always sees the current state rather than the
    last tuning pass's.

``GET /healthz``
    Liveness JSON: tuner alive/frozen (plus the crash message once
    degraded), per-shard open/closed, session and interval counts.
    Status 200 while the tuner is live, 503 once tuning froze or the
    service closed -- degraded-but-serving, exactly what an
    orchestrator's readiness probe wants to distinguish.

``GET /stmm``
    The STMM decision audit trail as JSON: the bounded
    :class:`~repro.obs.audit.TuningAuditLog` ring (inputs + chosen
    action per interval, in the closed reason vocabulary), current
    LOCKLIST / MAXLOCKS posture, and the most recent sampled request
    spans.

``GET /incidents``
    The incident forensics ring as JSON: every captured deadlock
    victim, lock escalation and tuner freeze with its wait-for cycle,
    lock-table posture, top blockers and audit tail (see
    :mod:`repro.obs.incidents`).  404 when the stack did not wire an
    incident log.

``GET /traces``
    The end-to-end request-trace rings as JSON (see
    :mod:`repro.obs.tracing`): completed client traces with their hop
    decomposition and wire tax, plus the per-worker server span rings
    merged by the parent pool.  Always 200 -- an unwired or disabled
    tracer serves the same shape with ``enabled: false`` and empty
    rings.

The server binds ``127.0.0.1`` by default and serves each request from
a pooled thread; handlers only ever *read* (snapshot copies from the
registry and ring buffers), so a scrape cannot stall the request hot
path beyond the per-instrument locks it shares with everyone else.
Port 0 asks the OS for an ephemeral port (tests, CI); the bound port is
on :attr:`OpsServer.port` after :meth:`start`.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from repro.errors import ServiceError
from repro.obs.prometheus import render_prometheus
from repro.obs.registry import MetricRegistry

#: Content type the Prometheus scraper expects for the text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def empty_traces_payload() -> Dict[str, Any]:
    """The ``/traces`` body when request tracing is not wired or off.

    Deliberately the same shape as a live payload (not a 404): a
    scraper can always ask for traces and branch on ``enabled``.
    """
    return {
        "enabled": False,
        "sample_every": 0,
        "total": 0,
        "truncated": 0,
        "traces": [],
        "server_spans": {},
        "summary": {},
    }


class OpsServer:
    """Serve a stack's registry, health and audit trail over HTTP.

    Parameters
    ----------
    registry:
        The metric registry ``/metrics`` renders.
    health:
        Callable returning the ``/healthz`` JSON body; its ``"ok"`` key
        decides the status code (200 when true, 503 when false).
    stmm_status:
        Callable returning the ``/stmm`` JSON body.
    incidents:
        Optional callable returning the ``/incidents`` JSON body (the
        forensics ring of deadlock / escalation / tuner-freeze
        records); 404 when not wired.
    traces:
        Optional callable returning the ``/traces`` JSON body (the
        end-to-end request-trace rings, client and server side --
        see :mod:`repro.obs.tracing`).  Unlike ``/incidents``, an
        unwired ``/traces`` serves :func:`empty_traces_payload` rather
        than a 404, so tooling can probe it unconditionally.
    refresh:
        Optional hook run before each ``/metrics`` render; stacks use
        it to publish point-in-time gauges (occupancy, queue depth).
    port:
        TCP port (0 = OS-assigned ephemeral, for tests and CI).
    host:
        Bind address; loopback by default -- the ops plane is a
        diagnostic surface, not a public API.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        *,
        health: Callable[[], Dict[str, Any]],
        stmm_status: Callable[[], Dict[str, Any]],
        incidents: Optional[Callable[[], Dict[str, Any]]] = None,
        traces: Optional[Callable[[], Dict[str, Any]]] = None,
        refresh: Optional[Callable[[], None]] = None,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        if port < 0:
            raise ServiceError(f"ops port must be non-negative, got {port}")
        self.registry = registry
        self.health = health
        self.stmm_status = stmm_status
        self.incidents = incidents
        self.traces = traces
        self.refresh = refresh
        self.requested_port = port
        self.host = host
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 after :meth:`start`)."""
        if self._server is None:
            return self.requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "OpsServer":
        if self._server is not None:
            raise ServiceError("ops server already started")
        ops = self

        class Handler(BaseHTTPRequestHandler):
            # One ops scrape must never block on a slow peer forever.
            timeout = 10.0

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        if ops.refresh is not None:
                            ops.refresh()
                        body = render_prometheus(ops.registry).encode()
                        self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
                    elif path == "/healthz":
                        status = ops.health()
                        code = 200 if status.get("ok") else 503
                        self._reply_json(code, status)
                    elif path == "/stmm":
                        self._reply_json(200, ops.stmm_status())
                    elif path == "/incidents":
                        if ops.incidents is None:
                            self._reply_json(
                                404, {"error": "incident log not wired"}
                            )
                        else:
                            self._reply_json(200, ops.incidents())
                    elif path == "/traces":
                        if ops.traces is None:
                            self._reply_json(200, empty_traces_payload())
                        else:
                            self._reply_json(200, ops.traces())
                    else:
                        self._reply_json(
                            404, {"error": f"unknown path {path!r}"}
                        )
                except BrokenPipeError:  # scraper went away mid-reply
                    pass
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    try:
                        self._reply_json(
                            500, {"error": f"{type(exc).__name__}: {exc}"}
                        )
                    except Exception:
                        pass

            def _reply_json(self, code: int, payload: Dict[str, Any]) -> None:
                self._reply(
                    code,
                    "application/json",
                    json.dumps(payload, separators=(",", ":")).encode(),
                )

            def _reply(self, code: int, content_type: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # scrapes are high-frequency; stay silent

        server = ThreadingHTTPServer((self.host, self.requested_port), Handler)
        server.daemon_threads = True
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name=f"ops-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serve thread.

        ``BaseServer.shutdown`` only returns once the serve loop
        notices the flag, which by default means waiting out the rest
        of a 0.5 s ``select`` poll.  A service stack tears the ops
        plane down on every stop (and the perf bench on every
        repetition), so the poll is woken immediately with a throwaway
        loopback connection instead of slept through.
        """
        server, self._server = self._server, None
        if server is None:
            return
        port = server.server_address[1]
        shutter = threading.Thread(target=server.shutdown, daemon=True)
        shutter.start()
        connect_host = (
            "127.0.0.1" if self.host in ("", "0.0.0.0") else self.host
        )
        try:
            with socket.create_connection((connect_host, port), timeout=1.0):
                pass
        except OSError:
            pass  # loop already exited; nothing to wake
        shutter.join(timeout=5.0)
        server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "OpsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = self.url if self.running else "stopped"
        return f"OpsServer({state})"


__all__ = ["OpsServer", "PROMETHEUS_CONTENT_TYPE", "empty_traces_payload"]
