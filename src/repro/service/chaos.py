"""Chaos lane: fault injections with documented degraded postures.

Each injection fires a mid-run fault against a live stack and then
*verifies the documented degradation contract* -- the postures the
service docs promise when that component dies:

``tuner-crash``
    The tuner daemon dies mid-surge.  Contract: the service freezes to
    a static LOCKLIST (``frozen_reason`` set, growth disabled), the
    STMM audit gains a terminal ``freeze`` record, ``/healthz`` turns
    503 -- and lock service *continues* with exact accounting.
``shard-stall``
    One shard's mutex is held hostage for a beat.  Contract: requests
    to that shard stall then recover; nothing freezes, accounting
    stays exact (this lane expects a full recovery, not degradation).
``worker-sigkill``
    A worker process is SIGKILLed mid-matrix.  Contract: survivors
    freeze their lock memory, the crash is counted and recorded as a
    ``worker-crash`` incident, ``/healthz`` turns 503, and the
    reconciliation names the dead worker ``crashed``.
``overflow-exhaustion``
    No runtime fault: the scenario itself undersizes lock memory under
    a lock-hungry regime.  Contract: pressure shows up as escalations
    and/or lock-list-full rollbacks -- with accounting still exact.

The scenario runner (:mod:`repro.scenarios.runner`) arms one injection
per chaos scenario, calls :meth:`ChaosInjection.inject` once the load
is warm, and folds :meth:`ChaosInjection.verify` checks into the
scenario verdict; ``skip_checks`` names the standard checks that a
*successfully* degraded run is exempt from (e.g. completeness after a
SIGKILL), so degradation reads as ``expected-degraded``, not ``fail``.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, FrozenSet, List, Type

from repro.errors import ConfigurationError
from repro.scenarios.verdict import Check, check


class ChaosError(RuntimeError):
    """The synthetic fault a chaos injection raises inside a component."""


def wait_until_warm(
    stack, min_requests: int = 50, timeout_s: float = 30.0
) -> bool:
    """Block until the stack has served some load (or timeout).

    Uses the stack's merged manager stats where available; the worker
    pool (whose stats live in child processes) warms on the arbiter's
    first interval instead.  Returns True when warm, False on timeout.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        stats = getattr(stack, "manager_stats", None)
        if stats is not None:
            if stats.requests >= min_requests:
                return True
        elif stack.tuner.intervals_run >= 2:
            return True
        time.sleep(0.002)
    return False


class ChaosInjection:
    """Base class: one named fault plus its degradation contract."""

    #: Registry name (grids reference injections by this).
    name = "chaos"
    #: Whether a correct run of this injection counts as degraded.
    expect_degraded = True
    #: Standard runner checks a degraded run is exempt from.
    skip_checks: FrozenSet[str] = frozenset()
    #: Stack kinds the injection applies to.
    requires: FrozenSet[str] = frozenset()

    def inject(self, stack) -> None:
        """Fire the fault against a warm, running stack."""
        raise NotImplementedError

    def verify(self, stack, report) -> List[Check]:
        """Checks asserting the documented degraded posture."""
        raise NotImplementedError


class TunerCrashInjection(ChaosInjection):
    """Kill the tuner mid-surge; assert the frozen-LOCKLIST posture."""

    name = "tuner-crash"
    expect_degraded = True
    skip_checks = frozenset({"tuner-healthy"})

    def inject(self, stack) -> None:
        controller = getattr(stack, "controller", None)
        if controller is None:
            raise ConfigurationError(
                "tuner-crash chaos needs a stack with a controller"
            )

        def explode(*args, **kwargs):
            raise ChaosError("chaos: injected tuner crash")

        controller.compute_target_pages = explode
        # Force a pass now instead of waiting out the daemon interval:
        # the crash must land even if the remaining load is brief.
        try:
            stack.tuner.tune_now()
        except BaseException:  # noqa: BLE001 - the crash we just injected
            pass

    def verify(self, stack, report) -> List[Check]:
        tuner = stack.tuner
        freeze_records = [
            record
            for record in tuner.audit.tail(16)
            if record.reason == "freeze"
        ]
        health = stack.ops_health()
        checks = [
            check(
                "tuner-crashed",
                tuner.crash is not None and tuner.frozen,
                f"crash={tuner.crash!r}",
            ),
            check(
                "locklist-frozen",
                stack.service.frozen_reason is not None,
                f"frozen_reason={stack.service.frozen_reason!r}",
            ),
            check(
                "freeze-audited",
                bool(freeze_records),
                f"{len(freeze_records)} terminal freeze audit record(s)",
            ),
            check(
                "healthz-503",
                health.get("ok") is False,
                f"ops_health.ok={health.get('ok')!r}",
            ),
        ]
        manager = getattr(stack.service, "manager", None)
        if manager is not None:
            checks.append(
                check(
                    "growth-disabled",
                    manager.growth_provider is None,
                    "synchronous growth provider detached",
                )
            )
        return checks


class ShardStallInjection(ChaosInjection):
    """Hold one shard's mutex hostage; assert full recovery."""

    name = "shard-stall"
    expect_degraded = False
    requires = frozenset({"sharded"})

    def __init__(self, stall_s: float = 0.25) -> None:
        self.stall_s = stall_s

    def inject(self, stack) -> None:
        shards = getattr(stack.service, "shards", None)
        if not shards:
            raise ConfigurationError(
                "shard-stall chaos needs the sharded stack (shards >= 1)"
            )
        # Holding the shard condition blocks every lock/release on that
        # shard -- and the tuner's all-shard pass -- until we let go.
        with shards[0]._cond:
            time.sleep(self.stall_s)

    def verify(self, stack, report) -> List[Check]:
        return [
            check(
                "stall-recovered",
                stack.tuner.crash is None
                and stack.service.frozen_reason is None,
                f"tuner crash={stack.tuner.crash!r}, "
                f"frozen={stack.service.frozen_reason!r}",
            ),
            check(
                "served-through-stall",
                report.lock_requests > 0,
                f"{report.lock_requests} lock requests completed",
            ),
        ]


class WorkerSigkillInjection(ChaosInjection):
    """SIGKILL one worker process; assert the survivors-frozen posture."""

    name = "worker-sigkill"
    expect_degraded = True
    requires = frozenset({"pool"})
    skip_checks = frozenset(
        {
            "completeness",
            "worker-errors",
            "accounting-exact",
            "pool-reconciliation",
            "pool-healthy",
            "admission-sheds",
        }
    )

    def __init__(self, victim: int = 0) -> None:
        self.victim = victim

    def inject(self, stack) -> None:
        handles = getattr(stack, "_handles", None)
        if not handles:
            raise ConfigurationError(
                "worker-sigkill chaos needs the worker pool (workers >= 1)"
            )
        os.kill(handles[self.victim].process.pid, signal.SIGKILL)
        # The pool's monitor notices the death asynchronously; wait for
        # the freeze so verification never races the detection.
        deadline = time.monotonic() + 15.0
        while stack.frozen_reason is None and time.monotonic() < deadline:
            time.sleep(0.005)

    def verify(self, stack, report) -> List[Check]:
        health = stack.ops_health()
        rec = stack.reconciliation
        crashed_states = (
            [entry["state"] for entry in rec.workers] if rec else []
        )
        return [
            check(
                "survivors-frozen",
                stack.frozen_reason is not None,
                f"frozen_reason={stack.frozen_reason!r}",
            ),
            check(
                "crash-counted",
                stack.worker_crashes >= 1,
                f"{stack.worker_crashes} worker crash(es)",
            ),
            check(
                "incident-recorded",
                stack.incidents.kind_counts().get("worker-crash", 0) >= 1,
                f"incident kinds: {stack.incidents.kind_counts()}",
            ),
            check(
                "healthz-503",
                health.get("ok") is False,
                f"ops_health.ok={health.get('ok')!r}",
            ),
            check(
                "reconciliation-names-victim",
                "crashed" in crashed_states,
                f"worker states: {crashed_states}",
            ),
            check(
                "survivors-served",
                report.commits > 0,
                f"{report.commits} transactions committed",
            ),
        ]


class OverflowExhaustionInjection(ChaosInjection):
    """Undersized lock memory under a lock-hungry regime.

    No runtime fault to fire: the scenario's own config is the hazard.
    The contract is that pressure surfaces through the *documented*
    relief valves -- escalation and lock-list-full rollback -- while
    accounting stays exact (the standard checks still apply).
    """

    name = "overflow-exhaustion"
    expect_degraded = True
    skip_checks = frozenset({"admission-sheds"})

    def inject(self, stack) -> None:
        return None

    def verify(self, stack, report) -> List[Check]:
        stats = stack.manager_stats
        relieved = (
            stats.escalations.count
            + report.rollbacks_full
            + stats.sync_growth_blocks
        )
        return [
            check(
                "pressure-relieved",
                relieved > 0,
                f"{stats.escalations.count} escalations, "
                f"{report.rollbacks_full} full rollbacks, "
                f"{stats.sync_growth_blocks} sync-growth blocks",
            )
        ]


#: Registry: chaos name -> injection class (grids reference by name).
CHAOS: Dict[str, Type[ChaosInjection]] = {
    TunerCrashInjection.name: TunerCrashInjection,
    ShardStallInjection.name: ShardStallInjection,
    WorkerSigkillInjection.name: WorkerSigkillInjection,
    OverflowExhaustionInjection.name: OverflowExhaustionInjection,
}


def build_chaos(name: str) -> ChaosInjection:
    """Instantiate a named chaos injection; unknown names raise."""
    try:
        cls = CHAOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown chaos injection {name!r}; choose from {sorted(CHAOS)}"
        ) from None
    return cls()
