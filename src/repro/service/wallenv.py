"""A wall-clock stand-in for the DES :class:`Environment`.

The lock manager was written against the DES: its blocking entry points
are generators that ``yield`` events, and the only environment surface
they touch is ``env.now``, ``env.event()``, ``env.timeout()`` and
``env.any_of()``.  :class:`WallClockEnvironment` implements exactly that
surface over a real :class:`~repro.service.clock.Clock` plus a
``threading.Condition``, which lets :class:`~repro.service.service.LockService`
run the *unchanged* lock-manager code under real thread concurrency:

* every piece of manager code runs under the service's one mutex, so the
  manager stays logically single-threaded (its own invariant);
* when a generator yields a pending event, the driving thread parks on
  the shared condition variable instead of returning to a scheduler;
* firing an event (``succeed``/``fail``) notifies the condition, and
  every parked thread re-checks *its own* target under the mutex -- the
  classic monitor pattern, immune to lost wakeups because the triggered
  flag is only ever read and written with the mutex held;
* timeouts are *lazy*: a :class:`WallTimeout` records its deadline, and
  the one thread that is waiting on it bounds its condition wait by that
  deadline and fires the timeout itself when the clock passes it.  No
  timer thread exists, so a service with no waiters costs no CPU.

The event classes mirror the semantics of :mod:`repro.engine.des`
(`succeed`/`fail` exactly once, `triggered`/`ok`/`value`, `AnyOf` fires
on the first child) without inheriting from them: DES events schedule
themselves onto a simulation queue, which has no meaning here.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, List, Optional

from repro.errors import SimulationError
from repro.obs.waits import LATCH_SPINS
from repro.service.clock import Clock

_PENDING = object()


class WallEvent:
    """A one-shot occurrence threads can wait for under the service mutex.

    The triggering thread must hold the environment's mutex (all lock
    manager code does); ``succeed``/``fail`` notify the shared condition
    so parked threads re-check their targets.
    """

    __slots__ = ("env", "_value", "_ok", "_callbacks")

    def __init__(self, env: "WallClockEnvironment") -> None:
        self.env = env
        self._value: Any = _PENDING
        self._ok = True
        self._callbacks: Optional[List[Callable[["WallEvent"], None]]] = []

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)
        self.env.notify_all()

    def succeed(self, value: Any = None) -> "WallEvent":
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._fire()
        return self

    def fail(self, exception: BaseException) -> "WallEvent":
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self._fire()
        return self

    def add_callback(self, callback: Callable[["WallEvent"], None]) -> None:
        if self._callbacks is None:
            callback(self)
        else:
            self._callbacks.append(callback)

    # -- lazy-timeout protocol (see WallTimeout) ---------------------------

    def next_deadline(self) -> Optional[float]:
        """Earliest pending timeout deadline in this event's subtree."""
        return None

    def fire_due(self, now: float) -> None:
        """Fire any pending timeout in the subtree whose deadline passed."""

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class WallTimeout(WallEvent):
    """An event that becomes due ``delay`` seconds after creation.

    Nothing fires it automatically: the thread waiting on it (directly
    or through an :class:`WallAnyOf`) learns the deadline from
    :meth:`next_deadline`, bounds its condition wait accordingly, and
    calls :meth:`fire_due` when it wakes.
    """

    __slots__ = ("fire_at", "_timeout_value")

    def __init__(
        self, env: "WallClockEnvironment", delay: float, value: Any = None
    ) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        super().__init__(env)
        self.fire_at = env.now + delay
        self._timeout_value = value

    def next_deadline(self) -> Optional[float]:
        return None if self.triggered else self.fire_at

    def fire_due(self, now: float) -> None:
        if not self.triggered and now >= self.fire_at:
            self.succeed(self._timeout_value)


class WallAnyOf(WallEvent):
    """Fires when the first constituent event fires (DES ``AnyOf``).

    A failing child fails the composite with the same exception, which
    is how an asynchronous :meth:`LockManager.cancel_wait` reaches a
    requester that is waiting on ``any_of([grant, timeout])``.
    """

    __slots__ = ("_events",)

    def __init__(
        self, env: "WallClockEnvironment", events: Iterable[WallEvent]
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        for event in self._events:
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self._events
            if event._callbacks is None and event._ok
        }

    def _check(self, event: WallEvent) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())

    def next_deadline(self) -> Optional[float]:
        if self.triggered:
            return None
        deadlines = [
            d for d in (e.next_deadline() for e in self._events) if d is not None
        ]
        return min(deadlines) if deadlines else None

    def fire_due(self, now: float) -> None:
        for event in self._events:
            if self.triggered:
                return
            event.fire_due(now)


class WallClockEnvironment:
    """The environment surface the lock manager needs, on wall time.

    Not a scheduler: there is no event queue and no ``run`` loop.  The
    service's request threads *are* the scheduler -- each drives its own
    lock-manager generator and parks on ``condition`` while its target
    event is pending.  Everything here must be called with the
    condition's underlying mutex held.
    """

    def __init__(self, clock: Clock, condition: threading.Condition) -> None:
        self.clock = clock
        self.condition = condition
        #: Optional :class:`repro.obs.waits.WaitEventProfiler`.  When
        #: set, :meth:`latch_acquire` keeps Oracle-style latch counters
        #: (gets / misses / spins / sleeps) for the service mutex;
        #: disabled costs one ``is None`` check per acquisition.
        self.latch_profiler = None

    @property
    def now(self) -> float:
        """Current wall-clock time (monotonic seconds since service start)."""
        return self.clock.now()

    def latch_acquire(self) -> None:
        """Acquire the service mutex, optionally profiling the latch get.

        Disabled: exactly one ``is None`` check ahead of a plain
        ``condition.acquire()`` (``Condition`` binds ``acquire`` to the
        underlying lock's method, so this is the same acquisition the
        ``with`` statement performs).  Enabled, the acquisition follows
        the classic latch protocol: an immediate try-acquire (fast get),
        then a bounded spin of try-acquires (miss + spins), then a
        blocking wait (sleep, timed).  Counter updates happen *after*
        the latch is held, so they are serialized by the latch itself.
        """
        prof = self.latch_profiler
        if prof is None:
            self.condition.acquire()
            return
        acquire = self.condition.acquire
        if acquire(blocking=False):
            prof.latch_fast_get()
            return
        spins = 0
        while spins < LATCH_SPINS:
            spins += 1
            if acquire(blocking=False):
                prof.latch_spin_get(spins)
                return
        slept_from = self.clock.now()
        acquire()
        prof.latch_sleep_get(spins, max(0.0, self.clock.now() - slept_from))

    def latch_release(self) -> None:
        """Release the service mutex (pairs with :meth:`latch_acquire`)."""
        self.condition.release()

    def event(self) -> WallEvent:
        return WallEvent(self)

    def timeout(self, delay: float, value: Any = None) -> WallTimeout:
        return WallTimeout(self, delay, value)

    def any_of(self, events: Iterable[WallEvent]) -> WallAnyOf:
        return WallAnyOf(self, events)

    def notify_all(self) -> None:
        """Wake every parked request thread to re-check its target.

        The condition is built over an RLock, so this re-enters when the
        firing thread already holds the service mutex (the normal case:
        all manager code runs under it) and briefly acquires otherwise
        (standalone use of events in tests).
        """
        with self.condition:
            self.condition.notify_all()
