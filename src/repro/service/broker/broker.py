"""The MemoryBroker: one budget, many heaps, benefit-driven trades.

Each tuning interval the broker

1. refreshes every estimator against the same clock instant,
2. trades 128 KB blocks from the lowest- to the highest-benefit PMC
   heap (bounded per interval, never past a heap's min/max bounds,
   never touching LOCKLIST -- the paper's ``LockMemoryController``
   keeps final say over lock memory),
3. folds aggregate demand into a pressure score and runs the
   admission-posture state machine,
4. records every action in its own closed-vocabulary audit ring
   (``trade-benefit`` / ``pressure-*``), and
5. re-proves the conservation invariant: the sum of heap sizes plus
   the free pool must equal ``DATABASE_MEMORY`` to the page
   (:class:`~repro.errors.MemoryAccountingError` otherwise).

The broker is deliberately clock-agnostic and lock-free: the caller
(the TunerDaemon, holding the service mutex) passes ``now`` in, so the
same code runs deterministically on a :class:`ManualClock` in tests
and on wall time in the live service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.audit import BROKER_REASONS, BrokerAuditRecord, TuningAuditLog
from repro.obs.registry import labeled_name
from repro.service.broker.estimators import BenefitEstimator
from repro.service.broker.pressure import PressureConfig, PressureMonitor
from repro.units import PAGES_PER_BLOCK


@dataclass
class BrokerConfig:
    """Knobs of the trading pass and its pressure state machine."""

    #: Pages per trade quantum (the paper's 128 KB block).
    trade_block_pages: int = PAGES_PER_BLOCK
    #: Block moves allowed per interval (bounds per-interval churn).
    max_trades_per_interval: int = 4
    #: Receiver benefit must exceed donor benefit by this factor.
    min_benefit_ratio: float = 1.25
    #: Broker audit ring capacity.
    audit_capacity: int = 256
    pressure: PressureConfig = field(default_factory=PressureConfig)

    def __post_init__(self) -> None:
        if self.trade_block_pages <= 0:
            raise ValueError(
                f"trade_block_pages must be positive, got {self.trade_block_pages}"
            )
        if self.max_trades_per_interval < 0:
            raise ValueError(
                "max_trades_per_interval must be non-negative, "
                f"got {self.max_trades_per_interval}"
            )
        if self.min_benefit_ratio < 1.0:
            raise ValueError(
                f"min_benefit_ratio must be >= 1, got {self.min_benefit_ratio}"
            )


class MemoryBroker:
    """Multi-consumer arbiter over one ``DATABASE_MEMORY`` registry.

    Parameters
    ----------
    registry:
        The :class:`~repro.memory.registry.DatabaseMemoryRegistry`
        holding every heap and the free (overflow) pool.
    estimators:
        One :class:`BenefitEstimator` per brokered heap.  Estimators
        with ``tradeable`` False (LOCKLIST) join the ranking and the
        pressure score but never donate or receive.
    admission:
        The service's :class:`AdmissionController`, actuated by the
        posture state machine (None disables actuation, not scoring).
    metrics:
        Optional :class:`MetricRegistry`; per-heap size/demand/benefit
        gauges and trade counters are published each interval.
    """

    def __init__(
        self,
        registry,
        estimators: Sequence[BenefitEstimator],
        *,
        admission=None,
        config: Optional[BrokerConfig] = None,
        metrics=None,
    ) -> None:
        self.registry = registry
        self.estimators = list(estimators)
        names = [e.heap_name for e in self.estimators]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate estimator heaps: {sorted(names)}")
        self.config = config or BrokerConfig()
        self.metrics = metrics
        self.audit = TuningAuditLog(
            self.config.audit_capacity, reasons=BROKER_REASONS
        )
        self.pressure = PressureMonitor(admission, self.config.pressure)
        self.intervals_run = 0
        self.trades_total = 0
        self.pages_traded_total = 0
        # Point each heap's benefit callable at its estimator, so the
        # deterministic STMM pass (reclaim_from_donors, surplus
        # distribution) ranks PMC heaps by the same live figures the
        # broker trades on.
        for est in self.estimators:
            est.heap._benefit = (
                lambda e: lambda _heap: e.benefit_per_page()
            )(est)

    # -- scoring -------------------------------------------------------------

    def pressure_score(self) -> float:
        """Aggregate demand over budget (1.0 == budget exactly spoken for).

        Demand is each estimator's own figure, floored at the heap's
        current size for heaps it would not shrink anyway (a heap
        cannot release pages below its minimum), plus the current size
        of any heap with no estimator, plus the overflow goal the STMM
        pass defends.
        """
        covered = {e.heap_name for e in self.estimators}
        demand = 0
        for est in self.estimators:
            demand += max(est.demand_pages(), est.heap.min_pages)
        for heap in self.registry.heaps():
            if heap.name not in covered:
                demand += heap.size_pages
        demand += self.registry.overflow_goal_pages
        return demand / float(self.registry.total_pages)

    # -- the per-interval pass ----------------------------------------------

    def run_interval(self, now: float) -> List[BrokerAuditRecord]:
        """One arbitration pass; returns the audit records it appended."""
        interval = self.intervals_run + 1
        for est in self.estimators:
            est.observe(now)

        appended: List[BrokerAuditRecord] = []
        pair_order: List[Tuple[str, str]] = []
        pair_stats: Dict[Tuple[str, str], List[float]] = {}
        for _ in range(self.config.max_trades_per_interval):
            picked = self._pick_trade()
            if picked is None:
                break
            donor, receiver = picked
            benefit_from = donor.benefit_per_page()
            benefit_to = receiver.benefit_per_page()
            moved = self.registry.transfer(
                donor.heap_name,
                receiver.heap_name,
                self.config.trade_block_pages,
                partial=True,
            )
            if moved == 0:
                break
            key = (donor.heap_name, receiver.heap_name)
            if key not in pair_stats:
                pair_order.append(key)
                pair_stats[key] = [moved, benefit_from, benefit_to]
            else:
                pair_stats[key][0] += moved
            # Re-evaluate at the new sizes so diminishing returns can
            # stop the loop inside a single interval.
            donor.observe(now)
            receiver.observe(now)

        score = self.pressure_score()
        for key in pair_order:
            pages, benefit_from, benefit_to = pair_stats[key]
            record = BrokerAuditRecord(
                interval=interval,
                time=now,
                reason="trade-benefit",
                heap_from=key[0],
                heap_to=key[1],
                pages=int(pages),
                benefit_from=benefit_from,
                benefit_to=benefit_to,
                pressure=score,
                posture=self.pressure.posture,
                detail=f"{key[0]} -> {key[1]}: {int(pages)} pages",
            )
            self.audit.append(record)
            appended.append(record)
            self.trades_total += 1
            self.pages_traded_total += int(pages)

        transition = self.pressure.update(score)
        if transition is not None:
            old, new, reason = transition
            record = BrokerAuditRecord(
                interval=interval,
                time=now,
                reason=reason,
                heap_from="",
                heap_to="",
                pages=0,
                benefit_from=0.0,
                benefit_to=0.0,
                pressure=score,
                posture=new,
                detail=f"posture {old} -> {new} at pressure {score:.3f}",
            )
            self.audit.append(record)
            appended.append(record)

        self.intervals_run = interval
        # Conservation proof: overflow_pages recomputes total - sum(heaps)
        # and raises MemoryAccountingError if any page went missing.
        _ = self.registry.overflow_pages
        if self.metrics is not None:
            self.publish_metrics()
        return appended

    def _pick_trade(
        self,
    ) -> Optional[Tuple[BenefitEstimator, BenefitEstimator]]:
        """The (donor, receiver) pair one block should move between.

        Receiver: the tradeable heap with the highest benefit that is
        still below its demand and has headroom.  Donor: the tradeable
        heap with the lowest benefit that can shrink and whose benefit
        the receiver's exceeds by ``min_benefit_ratio``.  Ties break on
        heap name so the pass is deterministic.
        """
        tradeable = [e for e in self.estimators if e.tradeable]
        receivers = [
            e
            for e in tradeable
            if e.heap.headroom_pages() > 0
            and e.demand_pages() > e.heap.size_pages
            and e.benefit_per_page() > 0.0
        ]
        if not receivers:
            return None
        receiver = sorted(
            receivers, key=lambda e: (-e.benefit_per_page(), e.heap_name)
        )[0]
        donors = [
            e
            for e in tradeable
            if e is not receiver
            and e.heap.shrinkable_pages() > 0
            and receiver.benefit_per_page()
            > self.config.min_benefit_ratio * e.benefit_per_page()
        ]
        if not donors:
            return None
        donor = sorted(
            donors, key=lambda e: (e.benefit_per_page(), e.heap_name)
        )[0]
        return donor, receiver

    # -- surfaces ------------------------------------------------------------

    def publish_metrics(self) -> None:
        """Refresh the broker's gauges/counters in the metric registry."""
        reg = self.metrics
        if reg is None:
            return
        reg.gauge("broker.pressure.score").set(self.pressure.score)
        reg.gauge("broker.posture").set(
            float(
                ("normal", "throttle", "queue", "shed").index(
                    self.pressure.posture
                )
            )
        )
        reg.gauge("broker.intervals").set(float(self.intervals_run))
        reg.gauge("broker.free_pages").set(float(self.registry.overflow_pages))
        reg.counter("broker.trades").value = float(self.trades_total)
        reg.counter("broker.pages_traded").value = float(
            self.pages_traded_total
        )
        for est in self.estimators:
            labels = {"heap": est.heap_name}
            reg.gauge(labeled_name("broker.heap.size_pages", labels)).set(
                float(est.heap.size_pages)
            )
            reg.gauge(labeled_name("broker.heap.demand_pages", labels)).set(
                float(est.demand_pages())
            )
            reg.gauge(labeled_name("broker.heap.benefit_per_page", labels)).set(
                est.benefit_per_page()
            )

    def status(self, audit_tail: int = 8) -> Dict[str, Any]:
        """The ``/stmm`` broker block: posture, ranking table, audit tail."""
        return {
            "posture": self.pressure.posture,
            "pressure": round(self.pressure.score, 4),
            "intervals": self.intervals_run,
            "trades": self.trades_total,
            "pages_traded": self.pages_traded_total,
            "free_pages": self.registry.overflow_pages,
            "total_pages": self.registry.total_pages,
            "audit_total": self.audit.total_recorded,
            "heaps": [
                {
                    "heap": est.heap_name,
                    "category": est.heap.category.name,
                    "tradeable": est.tradeable,
                    "size_pages": est.heap.size_pages,
                    "demand_pages": est.demand_pages(),
                    "benefit_per_page": est.benefit_per_page(),
                    "rate": est.rate,
                }
                for est in sorted(
                    self.estimators, key=lambda e: e.heap_name
                )
            ],
            "audit": [r.to_dict() for r in self.audit.tail(audit_tail)],
        }

    def __repr__(self) -> str:
        return (
            f"MemoryBroker({len(self.estimators)} heaps, "
            f"{self.intervals_run} intervals, {self.trades_total} trades, "
            f"posture={self.pressure.posture!r})"
        )


__all__ = ["BrokerConfig", "MemoryBroker"]
