"""Memory-pressure admission postures: throttle before the OS pages.

Baryshnikov et al. (PAPERS.md, "Managing Query Compilation Memory
Consumption") keep SQL Server stable under compile-memory pressure by
gating *admission* rather than letting every request fight for an
oversubscribed budget.  This module is that gateway for the lock
service: a pressure score (aggregate heap demand / ``DATABASE_MEMORY``)
drives a four-posture state machine over the existing
:class:`~repro.service.admission.AdmissionController`:

======== =====================================================
posture  admission effect (relative to the configured limits)
======== =====================================================
normal   base ``max_in_flight`` / ``max_queue_depth``
throttle in-flight halved -- latecomers queue more often
queue    in-flight quartered -- most work parks in the queue
shed     in-flight quartered *and* queue closed -- excess work
         is rejected immediately with a retry hint
======== =====================================================

Escalation moves one posture per interval toward whatever the score
demands (a surge starts biting immediately but the ladder is always
walked, so every elevated posture leaves its audit record); release is
hysteretic: the score must sit below a posture's entry threshold minus
``release_margin`` for ``release_intervals`` consecutive intervals to
step *one* posture down.  That asymmetry is what keeps the posture
from flapping when demand oscillates around a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Posture names, mildest first.  Index order is escalation order.
POSTURES = ("normal", "throttle", "queue", "shed")

#: max_in_flight divisor per posture (queue handling is separate).
_IN_FLIGHT_DIVISOR = {"normal": 1, "throttle": 2, "queue": 4, "shed": 4}

#: Audit reason recorded when *entering* each elevated posture.
ENTER_REASONS = {
    "throttle": "pressure-throttle",
    "queue": "pressure-queue",
    "shed": "pressure-shed",
}


@dataclass
class PressureConfig:
    """Entry thresholds and hysteresis for the posture state machine.

    A score of 1.0 means aggregate demand exactly fills the budget;
    the defaults start throttling just past that point and shed only
    when demand would need half again the budget.
    """

    throttle_enter: float = 1.05
    queue_enter: float = 1.25
    shed_enter: float = 1.50
    #: Score must drop this far below a posture's entry threshold ...
    release_margin: float = 0.05
    #: ... for this many consecutive intervals to step down one posture.
    release_intervals: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.throttle_enter <= self.queue_enter <= self.shed_enter:
            raise ValueError(
                "posture thresholds must satisfy 0 < throttle <= queue <= shed, "
                f"got {self.throttle_enter}/{self.queue_enter}/{self.shed_enter}"
            )
        if self.release_margin < 0:
            raise ValueError(
                f"release_margin must be non-negative, got {self.release_margin}"
            )
        if self.release_intervals < 1:
            raise ValueError(
                f"release_intervals must be >= 1, got {self.release_intervals}"
            )

    def target_posture(self, score: float) -> str:
        """The posture the score demands, ignoring hysteresis."""
        if score >= self.shed_enter:
            return "shed"
        if score >= self.queue_enter:
            return "queue"
        if score >= self.throttle_enter:
            return "throttle"
        return "normal"


class PressureMonitor:
    """Applies the posture state machine to an admission controller.

    The base limits are captured at construction; every posture is
    expressed relative to them, so operators reason about one pair of
    knobs.  ``admission`` may be None (a broker built without a
    service, e.g. in unit tests of the trading pass alone) -- the
    state machine still runs, it just has nothing to actuate.
    """

    def __init__(self, admission=None, config: Optional[PressureConfig] = None) -> None:
        self.admission = admission
        self.config = config or PressureConfig()
        self.posture = "normal"
        #: Last score fed to :meth:`update`.
        self.score = 0.0
        self._calm_streak = 0
        if admission is not None:
            self.base_in_flight = admission.max_in_flight
            self.base_queue_depth = admission.max_queue_depth
        else:
            self.base_in_flight = 0
            self.base_queue_depth = 0

    def limits_for(self, posture: str) -> Tuple[int, int]:
        """(max_in_flight, max_queue_depth) this posture imposes."""
        if posture not in POSTURES:
            raise ValueError(f"unknown posture {posture!r}")
        in_flight = max(1, self.base_in_flight // _IN_FLIGHT_DIVISOR[posture])
        queue_depth = 0 if posture == "shed" else self.base_queue_depth
        return in_flight, queue_depth

    def update(self, score: float) -> Optional[Tuple[str, str, str]]:
        """Feed one interval's pressure score through the state machine.

        Returns ``(old_posture, new_posture, audit_reason)`` when the
        posture changed, else None.  At most one transition happens per
        interval: escalation climbs one rung toward the demanded
        posture (so a sudden shed-level surge still records the
        throttle and queue entries on its way up), release steps down
        one rung after the hysteresis streak.
        """
        self.score = score = float(score)
        current_idx = POSTURES.index(self.posture)
        target = self.config.target_posture(score)
        target_idx = POSTURES.index(target)

        if target_idx > current_idx:
            old = self.posture
            new = POSTURES[current_idx + 1]
            self.posture = new
            self._calm_streak = 0
            self._apply()
            return (old, new, ENTER_REASONS[new])

        if current_idx > 0:
            # Release hysteresis: judged against the threshold that put
            # us in the *current* posture, with margin.
            enter_threshold = (
                self.config.throttle_enter,
                self.config.queue_enter,
                self.config.shed_enter,
            )[current_idx - 1]
            if score < enter_threshold - self.config.release_margin:
                self._calm_streak += 1
            else:
                self._calm_streak = 0
            if self._calm_streak >= self.config.release_intervals:
                old = self.posture
                self.posture = POSTURES[current_idx - 1]
                self._calm_streak = 0
                self._apply()
                return (old, self.posture, "pressure-release")
        else:
            self._calm_streak = 0
        return None

    def _apply(self) -> None:
        if self.admission is None:
            return
        in_flight, queue_depth = self.limits_for(self.posture)
        self.admission.set_limits(
            max_in_flight=in_flight, max_queue_depth=queue_depth
        )

    def __repr__(self) -> str:
        return (
            f"PressureMonitor(posture={self.posture!r}, "
            f"score={self.score:.3f}, base={self.base_in_flight}/"
            f"{self.base_queue_depth})"
        )


__all__ = ["ENTER_REASONS", "POSTURES", "PressureConfig", "PressureMonitor"]
