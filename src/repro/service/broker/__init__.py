"""repro.service.broker -- the whole-memory broker subsystem.

The paper tunes one consumer (LOCKLIST) but frames it as an instance
of DB2's Self-Tuning Memory Manager, which brokers *all* database
heaps from one ``DATABASE_MEMORY`` budget.  This package promotes the
TunerDaemon's single-heap pass into that multi-consumer arbiter:

* :mod:`repro.service.broker.estimators` -- per-heap marginal-benefit
  estimators (bufferpool hit-rate slope, sort/hashjoin spill-cost
  delta, pkgcache recompile-cost delta, LOCKLIST escalation/free-band
  signal) converting each heap model's size-to-performance curve into
  a live benefit-per-page figure,
* :mod:`repro.service.broker.pressure` -- the memory-pressure posture
  state machine (normal -> throttle -> queue -> shed with hysteresis)
  driving the existing :class:`AdmissionController`,
* :mod:`repro.service.broker.broker` -- :class:`MemoryBroker`, the
  per-interval arbiter that trades 128 KB blocks from the lowest- to
  the highest-benefit heap and records every decision in a closed
  audit vocabulary (``trade-benefit``, ``pressure-*``).

The broker never touches lock memory directly: the existing
``LockMemoryController`` keeps final say over LOCKLIST (free-band and
LMOmax invariants), while the LOCKLIST estimator feeds only the
ranking and the pressure score.  See ``docs/SERVICE.md`` for the
posture state machine and operational surface.
"""

from repro.service.broker.broker import BrokerConfig, MemoryBroker
from repro.service.broker.estimators import (
    BenefitEstimator,
    BufferpoolEstimator,
    HashJoinEstimator,
    LockListEstimator,
    PackageCacheEstimator,
    RateMeter,
    SortHeapEstimator,
    WorkloadProfile,
    as_rate,
    default_estimators,
)
from repro.service.broker.pressure import (
    POSTURES,
    PressureConfig,
    PressureMonitor,
)

__all__ = [
    "BenefitEstimator",
    "BrokerConfig",
    "BufferpoolEstimator",
    "HashJoinEstimator",
    "LockListEstimator",
    "MemoryBroker",
    "PackageCacheEstimator",
    "POSTURES",
    "PressureConfig",
    "PressureMonitor",
    "RateMeter",
    "SortHeapEstimator",
    "WorkloadProfile",
    "as_rate",
    "default_estimators",
]
