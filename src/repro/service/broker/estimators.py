"""Per-heap marginal-benefit estimators for the whole-memory broker.

STMM's arbitration question is "which heap turns the next 128 KB block
into the most saved time *per second of wall time*".  The heap models
in :mod:`repro.memory` answer the static half (seconds saved per page
per *operation*); an estimator multiplies that slope by the live rate
of the operations the heap serves:

    benefit_per_page [s/page/s] = model slope [s/page/op] * rate [op/s]

Each estimator also reports a *demand* -- the page count at which its
heap stops being hungry -- which feeds both the receiver selection
(a heap at or above demand never receives) and the aggregate
memory-pressure score (sum of demands vs. the budget).

Rates come in two shapes.  Tests and scripted scenarios pass plain
floats or zero-argument callables (:func:`as_rate` normalizes both);
the live stack wraps cumulative counters in a :class:`RateMeter`,
which differentiates the counter against the service clock on each
``observe`` pass.

The LOCKLIST estimator is deliberately *signal-only*: the paper's
``LockMemoryController`` keeps final say over lock memory, so the
broker never trades LOCKLIST pages -- but lock memory's demand and its
escalation-pressure benefit still participate in the ranking shown on
``/stmm`` and in the pressure score, exactly as DB2 reports FMC
consumers beside the PMC set.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

from repro.memory.bufferpool import BufferpoolModel
from repro.memory.hashjoin import HashJoinModel
from repro.memory.heaps import MemoryHeap
from repro.memory.pkgcache import PackageCacheModel
from repro.memory.sortheap import SortHeapModel

RateSource = Union[float, int, Callable[[], float]]


def as_rate(source: RateSource) -> Callable[[], float]:
    """Normalize a rate knob: constants and callables both work."""
    if callable(source):
        return source
    value = float(source)
    if value < 0:
        raise ValueError(f"rate must be non-negative, got {value}")
    return lambda: value


class RateMeter:
    """Differentiates a cumulative counter into an events/s rate.

    ``total`` is a zero-argument callable returning a monotonically
    non-decreasing count (e.g. ``lambda: stats.escalations``).  Each
    :meth:`sample` returns the average rate since the previous sample;
    the first sample returns 0.0 (no interval to average over).
    Thread-safe: the tuner thread samples while HTTP handlers read the
    estimator state built from it.
    """

    def __init__(self, total: Callable[[], float]) -> None:
        self._total = total
        self._lock = threading.Lock()
        self._last_total: Optional[float] = None
        self._last_time: Optional[float] = None

    def sample(self, now: float) -> float:
        with self._lock:
            current = float(self._total())
            if self._last_time is None or now <= self._last_time:
                rate = 0.0
            else:
                rate = max(0.0, current - self._last_total) / (
                    now - self._last_time
                )
            self._last_total = current
            self._last_time = now
            return rate


class BenefitEstimator:
    """Base estimator: a heap, its live rate, and a benefit slope.

    Subclasses implement :meth:`_slope` (seconds saved per page per
    operation at the current size) and :meth:`demand_pages`.  The
    broker calls :meth:`observe` once per interval *before* ranking so
    every heap is judged against the same instant.
    """

    #: False for heaps the broker must never trade (FMC / LOCKLIST).
    tradeable = True

    def __init__(self, heap: MemoryHeap, rate: RateSource) -> None:
        self.heap = heap
        if isinstance(rate, RateMeter):
            self._meter: Optional[RateMeter] = rate
            self._rate_fn: Callable[[], float] = lambda: 0.0
        else:
            self._meter = None
            self._rate_fn = as_rate(rate)
        #: Rate captured by the last ``observe`` pass (op/s).
        self.rate = 0.0
        #: Benefit captured by the last ``observe`` pass (s/page/s).
        self.benefit = 0.0

    @property
    def heap_name(self) -> str:
        return self.heap.name

    def observe(self, now: float) -> None:
        """Refresh ``rate`` and ``benefit`` for this instant."""
        if self._meter is not None:
            self.rate = self._meter.sample(now)
        else:
            self.rate = max(0.0, float(self._rate_fn()))
        self.benefit = self._slope() * self.rate

    def benefit_per_page(self) -> float:
        """Seconds of work saved per extra page per second of wall time."""
        return self.benefit

    def _slope(self) -> float:
        raise NotImplementedError

    def demand_pages(self) -> int:
        """Pages at which this heap stops being a hungry receiver."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.heap_name!r}, "
            f"size={self.heap.size_pages}, demand={self.demand_pages()}, "
            f"benefit={self.benefit:.3g})"
        )


class BufferpoolEstimator(BenefitEstimator):
    """Hit-rate-curve slope x page-access rate.

    Demand is the pool size at which the hit ratio reaches
    ``demand_fraction`` of its asymptote: for the hyperbolic curve
    ``hit = max_hit * s / (s + h)`` that is ``s = h * f / (1 - f)``.
    """

    def __init__(
        self,
        heap: MemoryHeap,
        model: BufferpoolModel,
        page_access_rate: RateSource,
        demand_fraction: float = 0.75,
    ) -> None:
        super().__init__(heap, page_access_rate)
        if not 0.0 < demand_fraction < 1.0:
            raise ValueError(
                f"demand_fraction must be in (0, 1), got {demand_fraction}"
            )
        self.model = model
        self.demand_fraction = demand_fraction

    def _slope(self) -> float:
        return self.model.marginal_benefit(self.heap.size_pages)

    def demand_pages(self) -> int:
        f = self.demand_fraction
        return int(self.model.half_saturation_pages * f / (1.0 - f))


class SortHeapEstimator(BenefitEstimator):
    """Spill-cost delta x sort rate; demand = fit the typical sort."""

    def __init__(
        self,
        heap: MemoryHeap,
        model: SortHeapModel,
        sort_rate: RateSource,
        typical_sort_rows: RateSource,
    ) -> None:
        super().__init__(heap, sort_rate)
        self.model = model
        self._typical_rows = as_rate(typical_sort_rows)

    @property
    def typical_sort_rows(self) -> int:
        return int(self._typical_rows())

    def _slope(self) -> float:
        return self.model.marginal_benefit(
            self.heap.size_pages, self.typical_sort_rows
        )

    def demand_pages(self) -> int:
        return self.model.data_pages(self.typical_sort_rows)


class HashJoinEstimator(BenefitEstimator):
    """Partitioning-cost delta x join rate; demand = fit the build side."""

    def __init__(
        self,
        heap: MemoryHeap,
        model: HashJoinModel,
        join_rate: RateSource,
        typical_build_rows: RateSource,
    ) -> None:
        super().__init__(heap, join_rate)
        self.model = model
        self._typical_rows = as_rate(typical_build_rows)

    @property
    def typical_build_rows(self) -> int:
        return int(self._typical_rows())

    def _slope(self) -> float:
        return self.model.marginal_benefit(
            self.heap.size_pages, self.typical_build_rows
        )

    def demand_pages(self) -> int:
        return self.model.build_pages(self.typical_build_rows)


class PackageCacheEstimator(BenefitEstimator):
    """Recompile-cost delta x statement rate; demand = cache everything."""

    def __init__(
        self,
        heap: MemoryHeap,
        model: PackageCacheModel,
        statement_rate: RateSource,
    ) -> None:
        super().__init__(heap, statement_rate)
        self.model = model

    def _slope(self) -> float:
        return self.model.marginal_benefit(self.heap.size_pages)

    def demand_pages(self) -> int:
        return self.model.distinct_statements * self.model.pages_per_statement


class LockListEstimator(BenefitEstimator):
    """Signal-only LOCKLIST estimator: escalation pressure + free band.

    ``tradeable`` is False -- the paper's controller owns every LOCKLIST
    resize -- but the estimator still reports:

    * *demand*: the pages needed to keep ``min_free_fraction`` of the
      list free at the current usage (the paper's grow trigger solved
      for size: ``used / (1 - minFree)``),
    * *benefit*: escalation rate times the cost of one escalation's
      concurrency damage, spread over the current size.  Zero
      escalations inside the free band means zero benefit (a satisfied
      consumer); any escalation makes lock memory the neediest heap on
      the board, which is exactly the paper's premise.
    """

    tradeable = False

    def __init__(
        self,
        heap: MemoryHeap,
        used_pages: Callable[[], float],
        escalation_rate: RateSource,
        min_free_fraction: float = 0.50,
        escalation_cost_s: float = 0.25,
    ) -> None:
        super().__init__(heap, escalation_rate)
        if not 0.0 <= min_free_fraction < 1.0:
            raise ValueError(
                f"min_free_fraction must be in [0, 1), got {min_free_fraction}"
            )
        self._used_pages = used_pages
        self.min_free_fraction = min_free_fraction
        self.escalation_cost_s = escalation_cost_s

    def _slope(self) -> float:
        return self.escalation_cost_s / max(1, self.heap.size_pages)

    def demand_pages(self) -> int:
        used = max(0.0, float(self._used_pages()))
        needed = used / (1.0 - self.min_free_fraction)
        return max(self.heap.size_pages, int(-(-needed // 1)))


@dataclass
class WorkloadProfile:
    """The operation rates and characteristic sizes the broker assumes.

    The live lock service generates real lock traffic but no real
    sorts, joins or statement compiles, so those consumers' rates are
    configuration describing the surrounding (modelled) workload --
    the same role the scenario knobs play in the DES experiments.  Any
    field also accepts a zero-argument callable for scripted demand
    sequences.
    """

    page_access_rate: RateSource = 2_000.0
    sort_rate: RateSource = 10.0
    typical_sort_rows: RateSource = 50_000
    join_rate: RateSource = 5.0
    typical_build_rows: RateSource = 20_000
    statement_rate: RateSource = 200.0


def default_estimators(
    registry,
    profile: WorkloadProfile,
    *,
    bufferpool_model: Optional[BufferpoolModel] = None,
    sort_model: Optional[SortHeapModel] = None,
    hashjoin_model: Optional[HashJoinModel] = None,
    pkgcache_model: Optional[PackageCacheModel] = None,
    locklist_used_pages: Optional[Callable[[], float]] = None,
    locklist_escalation_rate: RateSource = 0.0,
    locklist_min_free_fraction: float = 0.50,
) -> List[BenefitEstimator]:
    """Build the standard estimator set over a service registry.

    Only heaps that exist in ``registry`` get estimators, so the same
    function serves full broker stacks and reduced test registries.
    The bufferpool model's half-saturation defaults to 1/8 of the
    budget: the stock 50k-page default assumes a standalone DES
    experiment and would make the bufferpool insatiable relative to a
    16k-page service budget, permanently pinning the pressure score
    above 1.
    """
    heap_names = set(registry.snapshot()) - {"overflow"}
    estimators: List[BenefitEstimator] = []
    if "bufferpool" in heap_names:
        model = bufferpool_model or BufferpoolModel(
            half_saturation_pages=max(1, registry.total_pages // 8)
        )
        estimators.append(
            BufferpoolEstimator(
                registry.heap("bufferpool"), model, profile.page_access_rate
            )
        )
    if "sortheap" in heap_names:
        estimators.append(
            SortHeapEstimator(
                registry.heap("sortheap"),
                sort_model or SortHeapModel(),
                profile.sort_rate,
                profile.typical_sort_rows,
            )
        )
    if "hashjoin" in heap_names:
        estimators.append(
            HashJoinEstimator(
                registry.heap("hashjoin"),
                hashjoin_model or HashJoinModel(),
                profile.join_rate,
                profile.typical_build_rows,
            )
        )
    if "pkgcache" in heap_names:
        estimators.append(
            PackageCacheEstimator(
                registry.heap("pkgcache"),
                pkgcache_model or PackageCacheModel(),
                profile.statement_rate,
            )
        )
    if "locklist" in heap_names and locklist_used_pages is not None:
        estimators.append(
            LockListEstimator(
                registry.heap("locklist"),
                locklist_used_pages,
                locklist_escalation_rate,
                min_free_fraction=locklist_min_free_fraction,
            )
        )
    return estimators


__all__ = [
    "BenefitEstimator",
    "BufferpoolEstimator",
    "HashJoinEstimator",
    "LockListEstimator",
    "PackageCacheEstimator",
    "RateMeter",
    "SortHeapEstimator",
    "WorkloadProfile",
    "as_rate",
    "default_estimators",
]
