"""`LockService`: the lock manager as a thread-safe, wall-clock service.

This is the bridge from simulation to a live server.  The *same*
:class:`~repro.lockmgr.manager.LockManager` that the DES drives is run
here under real thread concurrency, with no changes to its locking
logic:

* One **mutex** guards every manager mutation, so the manager keeps its
  single-flow-of-control invariant.  Requests are generators exactly as
  in the DES; the service drives each request's generator itself, and
  when the generator yields a pending event the requesting thread parks
  on a **condition variable** derived from the same mutex.
* **Grant hand-off is decided by the lock manager, not by thread
  scheduling**: ``LockObject.pump`` grants in strict FIFO order under
  the mutex and fires each granted waiter's event; ``notify_all`` then
  wakes parked threads, each of which re-checks *its own* event.  A
  thread that was not granted goes straight back to waiting.  This is
  the classic monitor pattern: no lost wakeups (the triggered flag is
  only touched with the mutex held) and no double grants (an event can
  fire exactly once, and only ``pump`` fires grant events).
* **Per-request deadlines** bound each wait in wall time.  A deadline
  that expires withdraws the request via
  :meth:`LockManager.cancel_wait`, which frees the waiter's structure
  and fails its event; if the grant raced the deadline, the grant wins
  (``cancel_wait`` refuses to cancel a fired event) -- the request
  simply succeeds.
* **Cancellation** (:meth:`LockService.cancel`) is the same mechanism
  triggered from another thread, e.g. a client disconnect.  It is
  best-effort by design: an already-granted request completes and must
  be rolled back by its owner.

Sessions own application ids: :meth:`open_session` allocates one and
registers the application (feeding ``minLockMemory`` through the
controller's ``num_applications``); :meth:`close_session` releases every
lock -- strict two-phase locking, identical to the DES clients.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, Iterator, Optional, Set

from contextlib import contextmanager

from repro.errors import (
    LockManagerError,
    RequestCancelledError,
    ServiceClosedError,
    ServiceError,
)
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.manager import LockManager, LockTimeoutError
from repro.lockmgr.modes import LockMode
from repro.service.clock import Clock, MonotonicClock
from repro.service.wallenv import WallClockEnvironment, WallEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricRegistry
    from repro.obs.spans import RequestSpanSampler

#: Sentinel distinguishing "no timeout given" from "explicitly None".
_USE_DEFAULT = object()


@dataclass
class ServiceStats:
    """Service-level counters (the manager keeps the locking counters)."""

    requests: int = 0
    granted: int = 0
    timeouts: int = 0
    cancellations: int = 0
    failures: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    peak_sessions: int = 0


class LockService:
    """A thread-safe, wall-clock facade over one :class:`LockManager`.

    Parameters
    ----------
    chain:
        The block chain providing lock-structure storage.
    clock:
        Time source (default: a fresh :class:`MonotonicClock`).  Tests
        inject a :class:`~repro.service.clock.ManualClock`.
    default_timeout_s:
        Deadline applied to requests that do not pass their own
        ``timeout_s`` (None = wait forever).
    metrics:
        Optional :class:`~repro.obs.registry.MetricRegistry`; when given
        the service maintains ``service.*`` instruments (and callers may
        additionally install the manager's hot-path instruments).
    metric_labels:
        Optional label set attached to every ``service.*`` instrument
        (the sharded facade passes ``{"shard": str(i)}`` so each
        shard's counters are distinct series in the shared registry).
    maxlocks_fraction / lock_timeout_s:
        Forwarded to the :class:`LockManager`.
    """

    def __init__(
        self,
        chain: LockBlockChain,
        *,
        clock: Optional[Clock] = None,
        default_timeout_s: Optional[float] = None,
        metrics: Optional["MetricRegistry"] = None,
        metric_labels: Optional[Dict[str, str]] = None,
        maxlocks_fraction: float = 0.98,
        lock_timeout_s: Optional[float] = None,
    ) -> None:
        if default_timeout_s is not None and default_timeout_s < 0:
            raise ServiceError(
                f"default_timeout_s must be non-negative, got {default_timeout_s}"
            )
        self.clock = clock or MonotonicClock()
        # RLock: event firing re-enters via WallClockEnvironment.notify_all
        # while the manager code already holds the mutex.
        self._mutex = threading.RLock()
        self._cond = threading.Condition(self._mutex)
        self.env = WallClockEnvironment(self.clock, self._cond)
        self.manager = LockManager(
            self.env,
            chain,
            maxlocks_fraction=maxlocks_fraction,
            lock_timeout_s=lock_timeout_s,
        )
        self.default_timeout_s = default_timeout_s
        self.stats = ServiceStats()
        self._closed = False
        self._sessions: Set[int] = set()
        self._app_ids = itertools.count(1)
        #: Sessions with a request currently being driven (a session may
        #: have at most one in flight; two would corrupt ``_waiting_on``).
        self._active_requests: Set[int] = set()
        #: Why tuning was frozen, or None while tuning is live.
        self.frozen_reason: Optional[str] = None
        #: Optional hook invoked once during :meth:`close` (after all
        #: pending waits are cancelled) to return transiently borrowed
        #: lock memory to overflow; the stack wires this to
        #: :meth:`LockMemoryController.reclaim_transient_blocks`.
        self.borrow_return: Optional[Callable[[], int]] = None
        self._metrics = metrics
        self.metric_labels = metric_labels
        #: Optional 1-in-N request span sampler (see repro.obs.spans).
        #: None keeps the hot paths at one ``is None`` check; the stack
        #: installs one when span sampling is configured.
        self.span_sampler: Optional["RequestSpanSampler"] = None
        if metrics is not None:
            from repro.obs.registry import WALL_CLOCK_BUCKETS_S

            self._m_requests = metrics.counter(
                "service.requests", labels=metric_labels
            )
            self._m_timeouts = metrics.counter(
                "service.timeouts", labels=metric_labels
            )
            self._m_cancels = metrics.counter(
                "service.cancellations", labels=metric_labels
            )
            self._m_frozen = metrics.counter(
                "service.tuning_frozen", labels=metric_labels
            )
            self._m_latency = metrics.histogram(
                "service.request_latency_s",
                WALL_CLOCK_BUCKETS_S,
                labels=metric_labels,
            )

    # -- introspection -----------------------------------------------------

    @property
    def chain(self) -> LockBlockChain:
        return self.manager.chain

    @property
    def closed(self) -> bool:
        return self._closed

    def session_count(self) -> int:
        """Open sessions (the service analogue of connected applications)."""
        return len(self._sessions)

    def waiting_sessions(self) -> Set[int]:
        with self._mutex:
            return set(self.manager.waiting_apps())

    def check_invariants(self) -> None:
        with self._mutex:
            self.manager.check_invariants()

    def snapshot_report(self, max_resources: int = 20) -> str:
        with self._mutex:
            return self.manager.snapshot_report(max_resources)

    # -- session lifecycle -------------------------------------------------

    def open_session(self) -> int:
        """Allocate an application id and register the session."""
        with self._mutex:
            self._ensure_open()
            app_id = next(self._app_ids)
            self._sessions.add(app_id)
            self.stats.sessions_opened += 1
            if len(self._sessions) > self.stats.peak_sessions:
                self.stats.peak_sessions = len(self._sessions)
            return app_id

    def adopt_session(self, app_id: int) -> None:
        """Register an externally allocated application id.

        The sharded service (:mod:`repro.service.sharded`) owns the
        global id space and registers a session with a shard the first
        time a request routes there.  Adoption does not touch the
        session counters: the session was opened elsewhere; this shard
        merely agrees to serve it.
        """
        with self._mutex:
            self._ensure_open()
            if app_id in self._sessions:
                raise ServiceError(f"session {app_id} is already registered")
            self._sessions.add(app_id)

    def close_session(self, app_id: int) -> int:
        """Release every lock of ``app_id`` and retire the session.

        Safe to call for a session whose request just failed (deadlock,
        timeout, cancellation): queued waits were already withdrawn, and
        ``release_all`` also handles the enqueued-elsewhere case.
        Returns the number of lock structures freed.
        """
        with self._mutex:
            if app_id not in self._sessions:
                raise ServiceError(f"session {app_id} is not open")
            if app_id in self._active_requests:
                raise ServiceError(
                    f"session {app_id} still has a request in flight"
                )
            freed = self.manager.release_all(app_id)
            if self.span_sampler is not None:
                self.span_sampler.release(app_id)
            self._sessions.discard(app_id)
            self.stats.sessions_closed += 1
            return freed

    @contextmanager
    def session(self) -> Iterator[int]:
        """``with service.session() as app_id:`` -- always releases."""
        app_id = self.open_session()
        try:
            yield app_id
        finally:
            self.close_session(app_id)

    # -- locking API -------------------------------------------------------

    def lock_row(
        self,
        app_id: int,
        table_id: int,
        row_id: int,
        mode: LockMode,
        timeout_s: object = _USE_DEFAULT,
    ) -> None:
        """Acquire a row lock (plus covering intent lock), blocking.

        Raises :class:`DeadlockError`, :class:`LockTimeoutError` (the
        per-request deadline or the manager's LOCKTIMEOUT),
        :class:`LockListFullError` or :class:`RequestCancelledError`;
        after any of these the session must roll back via
        :meth:`close_session` (strict 2PL, as in the DES).
        """
        # Uncontended requests (the overwhelming majority under churn)
        # grant without building a generator: one mutex hold, no
        # event-loop machinery.  ``lock_row_fast`` either completes with
        # accounting identical to the generator path or mutates nothing.
        if timeout_s is _USE_DEFAULT:
            timeout_s = self.default_timeout_s
        if timeout_s is not None and timeout_s < 0:  # type: ignore[operator]
            raise ServiceError(f"timeout_s must be non-negative, got {timeout_s}")
        started = perf_counter()
        span = None
        # Latch-aware acquisition of the service mutex (the profiler's
        # "latch" wait class); disabled it is the plain ``with self._cond``
        # acquisition behind one None check.
        self.env.latch_acquire()
        try:
            self._ensure_open()
            if app_id not in self._sessions:
                raise ServiceError(f"session {app_id} is not open")
            if app_id not in self._active_requests and self.manager.lock_row_fast(
                app_id, table_id, row_id, mode
            ):
                self.stats.requests += 1
                self.stats.granted += 1
                if self._metrics is not None:
                    self._m_requests.inc()
                    self._m_latency.observe(perf_counter() - started)
                if self.span_sampler is not None:
                    span = self.span_sampler.maybe_start(app_id, table_id, row_id)
                    if span is not None:
                        self.span_sampler.grant(span)
                return
            if self.span_sampler is not None:
                span = self.span_sampler.maybe_start(app_id, table_id, row_id)
        finally:
            self.env.latch_release()
        self._request(
            app_id,
            self.manager.lock_row(app_id, table_id, row_id, mode),
            timeout_s,
            span=span,
        )

    def lock_row_uncontended(
        self,
        app_id: int,
        table_id: int,
        row_id: int,
        mode: LockMode,
        timeout_s: object = _USE_DEFAULT,
    ) -> bool:
        """Fast-path-only :meth:`lock_row` for a pre-validated caller.

        The sharded facade has already checked the session registry and
        holds the per-session in-flight exclusion, so only the closed
        check stands between it and the manager's immediate-grant
        attempt.  Returns False (nothing mutated, nothing counted) when
        the request needs the full generator path -- the caller then
        falls back to :meth:`lock_row`.
        """
        if timeout_s is _USE_DEFAULT:
            timeout_s = self.default_timeout_s
        if timeout_s is not None and timeout_s < 0:  # type: ignore[operator]
            raise ServiceError(f"timeout_s must be non-negative, got {timeout_s}")
        started = perf_counter()
        self.env.latch_acquire()
        try:
            self._ensure_open()
            if self.manager.lock_row_fast(app_id, table_id, row_id, mode):
                self.stats.requests += 1
                self.stats.granted += 1
                if self._metrics is not None:
                    self._m_requests.inc()
                    self._m_latency.observe(perf_counter() - started)
                # Probe only the granted case: a False return falls back
                # to lock_row, which runs its own probe -- every request
                # is counted by the sampler exactly once.
                if self.span_sampler is not None:
                    span = self.span_sampler.maybe_start(app_id, table_id, row_id)
                    if span is not None:
                        self.span_sampler.grant(span)
                return True
            return False
        finally:
            self.env.latch_release()

    def lock_table(
        self,
        app_id: int,
        table_id: int,
        mode: LockMode,
        timeout_s: object = _USE_DEFAULT,
    ) -> None:
        """Acquire a table lock, blocking (see :meth:`lock_row`)."""
        self._request(
            app_id, self.manager.lock_table(app_id, table_id, mode), timeout_s
        )

    def rollback(self, app_id: int) -> int:
        """Release every lock of ``app_id`` without closing the session.

        The recovery step after :class:`DeadlockError`,
        :class:`LockTimeoutError` or :class:`RequestCancelledError`
        when the client wants to retry on the same session.  Returns the
        number of lock structures freed.
        """
        with self._mutex:
            if app_id not in self._sessions:
                raise ServiceError(f"session {app_id} is not open")
            freed = self.manager.release_all(app_id)
            if self.span_sampler is not None:
                self.span_sampler.release(app_id)
            return freed

    def release_read_lock(self, app_id: int, table_id: int, row_id: int) -> bool:
        """Cursor-stability early release (never blocks)."""
        with self._mutex:
            self._ensure_open()
            return self.manager.release_read_lock(app_id, table_id, row_id)

    def cancel(self, app_id: int, message: str = "cancelled") -> bool:
        """Withdraw ``app_id``'s pending wait from another thread.

        The waiting thread sees :class:`RequestCancelledError`.  Returns
        False when the session was not waiting (already granted, already
        failed, or idle) -- cancellation is best-effort by design.
        """
        with self._mutex:
            cancelled = self.manager.cancel_wait(
                app_id, RequestCancelledError(message), reason="cancel"
            )
            if cancelled:
                self.stats.cancellations += 1
                if self._metrics is not None:
                    self._m_cancels.inc()
            return cancelled

    # -- tuning degradation ------------------------------------------------

    def freeze_tuning(self, reason: str) -> None:
        """Degrade to a frozen, static-LOCKLIST configuration.

        Called by the tuner daemon when the tuning thread dies: the
        growth provider is detached (no more synchronous growth -- the
        static-LOCKLIST behaviour, where memory pressure is answered by
        escalation alone) and MAXLOCKS is pinned at its current value.
        The service keeps serving requests; only adaptivity is lost.
        """
        with self._mutex:
            if self.frozen_reason is not None:
                return
            self.frozen_reason = reason
            self.manager.growth_provider = None
            self.manager.maxlocks_provider = None
            if self._metrics is not None:
                self._m_frozen.inc()

    # -- shutdown ----------------------------------------------------------

    def close(self) -> None:
        """Stop accepting requests and cancel every pending wait.

        Waiting threads see :class:`ServiceClosedError` and are expected
        to roll back.  Sessions stay inspectable; ``close_session``
        continues to work so owners can release held locks.

        A synchronous-growth borrow still in flight at close (lock
        memory taken from overflow mid-interval that no tuning pass
        will reconcile any more) is returned through ``borrow_return``:
        cancelling the pending waits first frees their structures, so
        entirely-free borrowed blocks -- including a partially used
        grant whose requester was just cancelled -- go back to overflow
        instead of being stranded in the locklist heap forever.
        """
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            for app_id in list(self.manager.waiting_apps()):
                self.manager.cancel_wait(
                    app_id, ServiceClosedError("service closing"), reason="cancel"
                )
            if self.borrow_return is not None:
                self.borrow_return()

    # -- request driving (the heart of the service) ------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("lock service is closed")

    def _request(self, app_id: int, gen, timeout_s: object, span=None) -> None:
        if timeout_s is _USE_DEFAULT:
            timeout_s = self.default_timeout_s
        if timeout_s is not None and timeout_s < 0:  # type: ignore[operator]
            raise ServiceError(f"timeout_s must be non-negative, got {timeout_s}")
        started = perf_counter()
        self.env.latch_acquire()
        try:
            self._ensure_open()
            if app_id not in self._sessions:
                raise ServiceError(f"session {app_id} is not open")
            if app_id in self._active_requests:
                raise ServiceError(
                    f"session {app_id} already has a request in flight"
                )
            self._active_requests.add(app_id)
            self.stats.requests += 1
            if self._metrics is not None:
                self._m_requests.inc()
            deadline = (
                None if timeout_s is None else self.clock.now() + timeout_s  # type: ignore[operator]
            )
            outcome = "failed"
            try:
                self._drive(app_id, gen, deadline)
                self.stats.granted += 1
                outcome = "granted"
            except LockTimeoutError:
                self.stats.timeouts += 1
                outcome = "timeout"
                if self._metrics is not None:
                    self._m_timeouts.inc()
                raise
            except (RequestCancelledError, ServiceClosedError):
                outcome = "cancelled"
                raise
            except Exception:
                self.stats.failures += 1
                raise
            finally:
                self._active_requests.discard(app_id)
                if self._metrics is not None:
                    self._m_latency.observe(perf_counter() - started)
                if span is not None:
                    self.span_sampler.grant(span, outcome)
        finally:
            self.env.latch_release()

    def _drive(self, app_id: int, gen, deadline: Optional[float]) -> None:
        """Run one locking generator to completion under the mutex.

        The generator's yields are :class:`WallEvent`s.  A triggered
        event resumes the generator immediately (send/throw mirrors the
        DES process loop); a pending one parks this thread on the
        condition variable until the event fires, an internal timeout
        comes due, or the request deadline expires.
        """
        try:
            target: WallEvent = next(gen)
        except StopIteration:
            return
        cond = self._cond
        while True:
            while not target.triggered:
                now = self.clock.now()
                # Fire any due manager-level LOCKTIMEOUT (lazy timeouts).
                target.fire_due(now)
                if target.triggered:
                    break
                if deadline is not None and now >= deadline:
                    # Withdraw the wait; if the grant raced us and won,
                    # cancel_wait refuses and the loop sees the grant.
                    if not self.manager.cancel_wait(
                        app_id,
                        LockTimeoutError(
                            f"session {app_id} missed its request deadline "
                            f"after {now - (deadline or now):+.3f}s"
                        ),
                        reason="timeout",
                    ):
                        continue
                    break
                wake_at = target.next_deadline()
                if deadline is not None and (wake_at is None or deadline < wake_at):
                    wake_at = deadline
                cond.wait(None if wake_at is None else max(0.0, wake_at - now))
            try:
                if target.ok:
                    target = gen.send(target.value)
                else:
                    target = gen.throw(target.value)
            except StopIteration:
                return


def build_chain(initial_blocks: int) -> LockBlockChain:
    """Convenience: a block chain sized in 128 KB blocks."""
    if initial_blocks <= 0:
        raise ServiceError(f"initial_blocks must be positive, got {initial_blocks}")
    return LockBlockChain(initial_blocks=initial_blocks)


# Re-exported for callers that catch manager errors through the service.
__all__ = [
    "LockService",
    "ServiceStats",
    "build_chain",
    "LockManagerError",
    "LockTimeoutError",
]
