"""Multi-process scale-out: worker-process shards under one STMM arbiter.

The sharded stack (:mod:`repro.service.sharded`) splits the lock table
across shards *inside one process*; this module forks each shard group
into its own **worker process**.  Each worker owns a complete
:class:`LockService` (chain, manager, wait queues) and serves the wire
protocol on its own Unix-domain socket, so lock traffic never crosses
the parent.  The parent keeps what the paper centralizes: the database
memory registry, the :class:`LockMemoryController`, adaptive MAXLOCKS,
STMM and the tuning daemon -- one arbiter distributing one pool of lock
memory over many worker processes.

Control plane (parent <-> worker, one pair of pipes per worker):

* ``ctl`` -- parent-initiated request/reply: occupancy sampling, block
  grants and reclaims (STMM resize distribution), MAXLOCKS pushes,
  wait-graph extraction, deadlock victimization, freeze, close.
* ``borrow`` -- worker-initiated synchronous growth (paper section
  3.3): a lock request that finds no free structure blocks, mid-request,
  on a borrow round trip; the parent moves pages from overflow into the
  locklist heap and reserves the granted blocks for that worker.

Locking architecture (the part that is easy to get wrong): a worker
request thread blocks on the borrow pipe *while holding its service
mutex*, and every parent->worker control op may need that same mutex.
If the parent issued control RPCs while borrows queued unserviced, the
system would deadlock (tuner waits for worker reply, worker waits for
borrow grant, borrow waits for tuner).  The arbiter therefore runs as a
single parent thread that owns all registry state and **keeps draining
borrow pipes while it waits** -- for control replies, for lock
acquisition, for the next tuning interval.  No parent-side lock is ever
held across a cross-process wait.

Failure semantics mirror the single-process stack exactly: a worker
crash degrades like a tuner crash today -- surviving workers freeze to
a static LOCKLIST (growth providers detached, MAXLOCKS pinned), an
incident record is captured, and ``/healthz`` flips to 503 -- while
surviving workers keep serving.  A clean shutdown reconciles block
accounting byte-exactly: every worker reports its final chain posture,
the parent compares it against its authoritative per-worker mirror, and
transiently borrowed blocks are returned to overflow.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import Connection, wait as conn_wait
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.controller import LockMemoryController
from repro.core.maxlocks import AdaptiveMaxlocks
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    MemoryAccountingError,
    ServiceError,
)
from repro.lockmgr.blocks import LockBlockChain
from repro.lockmgr.detector import (
    build_wait_for_graph,
    find_cycles_in_graph,
    merge_wait_graphs,
)
from repro.memory.stmm import Stmm
from repro.net.server import ServiceBackend, ThreadedLockServer
from repro.obs.incidents import IncidentLog, IncidentRecord
from repro.obs.registry import (
    Histogram,
    MetricRegistry,
    labeled_name,
    parse_labeled_name,
)
from repro.obs.tracing import (
    RequestTracer,
    ServerTracer,
    hop_percentiles,
    wire_tax_summary,
)
from repro.service.clock import MonotonicClock
from repro.service.ops import OpsServer
from repro.service.service import LockService
from repro.service.stack import (
    ServiceConfig,
    build_memory_registry,
    controller_params,
)
from repro.service.tuner import TunerDaemon
from repro.units import (
    LOCKS_PER_BLOCK,
    PAGES_PER_BLOCK,
    round_pages_to_blocks,
)


class WorkerDiedError(ServiceError):
    """A control-plane round trip hit a dead worker process."""


@dataclass
class WorkerPoolConfig(ServiceConfig):
    """Sizing of a worker-pool stack (extends :class:`ServiceConfig`)."""

    #: Number of worker processes (one complete lock service each).
    workers: int = 2
    #: Cross-worker deadlock sweep cadence (DLCHKTIME analogue).
    deadlock_interval_s: float = 0.25
    #: Directory for the per-worker Unix-domain sockets (default: a
    #: fresh ``tempfile.mkdtemp`` owned and removed by the pool).
    socket_dir: Optional[str] = None
    #: Reader/executor threads of each worker's socket server.
    executor_threads: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.workers <= 0:
            raise ConfigurationError(
                f"workers must be positive, got {self.workers}"
            )
        if self.deadlock_interval_s <= 0:
            raise ConfigurationError(
                f"deadlock_interval_s must be positive, "
                f"got {self.deadlock_interval_s}"
            )
        blocks = (
            round_pages_to_blocks(self.initial_locklist_pages)
            // PAGES_PER_BLOCK
        )
        if blocks < self.workers:
            raise ConfigurationError(
                f"initial locklist of {blocks} blocks cannot seed "
                f"{self.workers} workers with one block each"
            )


# ---------------------------------------------------------------------------
# The worker process
# ---------------------------------------------------------------------------


@dataclass
class _WorkerSpec:
    """Everything a worker needs to build its service (fork payload)."""

    idx: int
    num_workers: int
    initial_blocks: int
    sock_path: str
    default_timeout_s: Optional[float]
    lock_timeout_s: Optional[float]
    refresh_period: int
    initial_fraction: float
    executor_threads: int
    #: Record server-side child spans for sampled traces (tentpole:
    #: the worker half of the end-to-end request trace).
    trace: bool = False
    #: Build a per-worker metric registry; the parent pulls snapshots
    #: over the control plane and merges them into one ``/metrics``
    #: scrape under a ``worker="N"`` label.
    telemetry: bool = False


def _worker_occupancy(service: LockService, server: ThreadedLockServer) -> dict:
    """Dirty-read posture snapshot (no locks: sampled, not exact)."""
    chain = service.chain
    stats = service.manager.stats
    return {
        "block_count": chain.block_count,
        "used_slots": chain.used_slots,
        "capacity_slots": chain.capacity_slots,
        "free_fraction": chain.free_fraction(),
        "entirely_free_blocks": chain.entirely_free_blocks(),
        "sessions": service.session_count(),
        "has_waiters": service.manager.has_waiters(),
        "maxlocks_fraction": service.manager.maxlocks_fraction,
        "escalations": stats.escalations.count,
        "deadlocks": stats.deadlocks,
        "sync_growth_blocks": stats.sync_growth_blocks,
        "responses": server.responses_written,
        "frozen": service.frozen_reason,
    }


def _worker_main(spec: _WorkerSpec, ctl: Connection, borrow: Connection) -> None:
    """Entry point of one worker process.

    Builds a complete lock service plus its socket server, reports
    readiness, then serves the parent's control ops until ``close`` (or
    until the parent dies, which surfaces as EOF on the control pipe).
    """
    chain = LockBlockChain(initial_blocks=spec.initial_blocks)
    clock = MonotonicClock()
    wmetrics = MetricRegistry() if spec.telemetry else None
    service = LockService(
        chain,
        clock=clock,
        default_timeout_s=spec.default_timeout_s,
        lock_timeout_s=spec.lock_timeout_s,
        metrics=wmetrics,
    )
    # Disjoint arithmetic progressions make app ids globally unique
    # without a parent round trip per session: worker i hands out
    # i+1, i+1+N, i+1+2N, ...  A session opened on one worker is then
    # adoptable on any other (OP_ADOPT_SESSION) without collision.
    service._app_ids = itertools.count(  # noqa: SLF001 - worker wiring
        spec.idx + 1, spec.num_workers
    )
    manager = service.manager

    # MAXLOCKS mirrors the arbiter's adaptive fraction: pushed on every
    # resize (``set_maxlocks``) and piggybacked on every borrow reply.
    fraction_box = [spec.initial_fraction]

    def _borrow_growth(blocks_wanted: int) -> int:
        # Called by the lock manager *under the service mutex*: the
        # requesting transaction stalls on the grant exactly like the
        # paper's synchronous growth.  The arbiter keeps draining this
        # pipe while it waits on anything, so the round trip is bounded.
        try:
            borrow.send(int(blocks_wanted))
            granted, fraction = borrow.recv()
        except (EOFError, OSError):
            return 0  # parent gone: the escalation path answers pressure
        fraction_box[0] = fraction
        return int(granted)

    manager.growth_provider = _borrow_growth
    manager.maxlocks_provider = lambda: fraction_box[0]
    manager.refresh_period = spec.refresh_period
    manager.refresh_maxlocks()

    tracer = ServerTracer() if spec.trace else None
    server = ThreadedLockServer(
        ServiceBackend(service, name=f"worker{spec.idx}", tracer=tracer),
        path=spec.sock_path,
        executor_threads=spec.executor_threads,
        metrics=wmetrics,
    )
    server.start()
    ctl.send(("ready", spec.idx, os.getpid()))

    while True:
        try:
            msg = ctl.recv()
        except (EOFError, OSError):
            break  # parent died: exit, the OS reclaims everything
        op, args = msg[0], msg[1:]
        try:
            closing = False
            if op == "occupancy":
                result: Any = _worker_occupancy(service, server)
            elif op == "add_blocks":
                with service._cond:  # noqa: SLF001
                    chain.add_blocks(args[0])
                result = chain.block_count
            elif op == "release_blocks":
                with service._cond:  # noqa: SLF001
                    result = chain.release_blocks(args[0], partial=True)
            elif op == "set_maxlocks":
                fraction_box[0] = args[0]
                with service._cond:  # noqa: SLF001
                    manager.refresh_maxlocks()
                result = True
            elif op == "freeze":
                service.freeze_tuning(args[0])
                result = True
            elif op == "waiting":
                with service._mutex:  # noqa: SLF001
                    result = sorted(manager.waiting_apps())
            elif op == "graph":
                waiting = set(args[0])
                with service._mutex:  # noqa: SLF001
                    graph = build_wait_for_graph(manager, waiting)
                    slots = {app: manager.app_slots(app) for app in waiting}
                result = (graph, slots)
            elif op == "victimize":
                victim, message = args
                with service._mutex:  # noqa: SLF001
                    entry = manager._waiting_on.get(victim)  # noqa: SLF001
                    resource = (
                        str(entry[0].resource) if entry is not None else ""
                    )
                    cancelled = manager.cancel_wait(
                        victim, DeadlockError(message)
                    )
                    if cancelled:
                        manager.stats.deadlocks += 1
                result = (cancelled, resource)
            elif op == "stats":
                result = server.backend.stats_payload()
            elif op == "traces":
                result = (
                    None
                    if tracer is None
                    else {
                        "spans": tracer.to_dicts(),
                        "summary": tracer.summary(),
                    }
                )
            elif op == "metrics":
                result = None if wmetrics is None else wmetrics.snapshot()
            elif op == "check":
                with service._cond:  # noqa: SLF001
                    chain.check_invariants()
                result = chain.block_count
            elif op == "ping":
                result = "pong"
            elif op == "close":
                server.stop()
                service.close()
                result = {
                    "block_count": chain.block_count,
                    "allocated_pages": chain.allocated_pages,
                    "used_slots": chain.used_slots,
                    "entirely_free_blocks": chain.entirely_free_blocks(),
                    "sessions": service.session_count(),
                }
                closing = True
            else:
                raise ServiceError(f"unknown control op {op!r}")
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            with contextlib.suppress(OSError):
                ctl.send(("error", f"{type(exc).__name__}: {exc}"))
            continue
        with contextlib.suppress(OSError):
            ctl.send(("ok", result))
        if closing:
            break
    with contextlib.suppress(OSError):
        ctl.close()
    with contextlib.suppress(OSError):
        borrow.close()


# ---------------------------------------------------------------------------
# Parent-side mirrors
# ---------------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    idx: int
    process: Any
    ctl: Connection
    borrow: Connection
    sock_path: str
    ctl_lock: threading.Lock = field(default_factory=threading.Lock)
    dead: bool = False
    #: Crash handled by the watcher (freeze + incident).  ``dead`` may
    #: flip first on any thread whose control call hits the broken
    #: pipe; the watcher still owns the (single) degrade response.
    crash_reported: bool = False
    closed: bool = False
    final: Optional[dict] = None


class RemoteWorkerChain:
    """Duck-types :class:`LockBlockChain` over the pool's block mirror.

    Capacity and page counts are *authoritative* (every chain mutation
    flows through the parent: the initial split, resize distributions,
    borrow grants), occupancy is *sampled* (refreshed from worker
    posture snapshots before each tuning pass).  The controller, STMM
    and adaptive MAXLOCKS read this exactly as they read a local chain.
    """

    def __init__(self, pool: "WorkerPoolStack") -> None:
        self._pool = pool

    @property
    def block_count(self) -> int:
        return sum(self._pool._blocks)

    @property
    def capacity_slots(self) -> int:
        return self.block_count * LOCKS_PER_BLOCK

    @property
    def allocated_pages(self) -> int:
        return self.block_count * PAGES_PER_BLOCK

    @property
    def used_slots(self) -> int:
        return sum(occ["used_slots"] for occ in self._pool._occ)

    @property
    def free_slots(self) -> int:
        return max(0, self.capacity_slots - self.used_slots)

    def free_fraction(self) -> float:
        capacity = self.capacity_slots
        return self.free_slots / capacity if capacity else 1.0

    def entirely_free_blocks(self) -> int:
        return sum(
            self._pool._entirely_free_blocks(idx)
            for idx in range(self._pool.config.workers)
        )

    def add_blocks(self, count: int) -> int:
        return self._pool._distribute_grow(count)

    def release_blocks(self, count: int, partial: bool = False) -> int:
        return self._pool._distribute_shrink(count, partial=partial)

    def check_invariants(self) -> None:
        self._pool._check_mirror()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteWorkerChain(blocks={list(self._pool._blocks)}, "
            f"used={self.used_slots})"
        )


class WorkerMemoryLedger:
    """Cross-process twin of :class:`ShardMemoryLedger`.

    Same grant-split arithmetic (largest-remainder over used-slots
    demand weights, ties to the lowest index), same borrow bookkeeping
    -- but demand is read from the pool's sampled posture snapshots
    instead of live shard chains.
    """

    def __init__(self, pool: "WorkerPoolStack") -> None:
        self._pool = pool
        self._borrowed = [0] * pool.config.workers

    def record_sync_borrow(self, worker: int, blocks: int) -> None:
        if blocks <= 0:
            raise ValueError(f"blocks must be positive, got {blocks}")
        self._borrowed[worker] += blocks

    def borrowed_blocks(self, worker: int) -> int:
        return self._borrowed[worker]

    def total_borrowed_blocks(self) -> int:
        return sum(self._borrowed)

    def demand_weights(self) -> List[int]:
        """Per-worker grow weights; dead workers are unfundable."""
        pool = self._pool
        return [
            0
            if pool._handles[idx].dead or pool._handles[idx].closed
            else pool._occ[idx]["used_slots"] + 1
            for idx in range(pool.config.workers)
        ]

    def grant_split(self, blocks: int) -> List[int]:
        if blocks < 0:
            raise ValueError(f"blocks must be non-negative, got {blocks}")
        weights = self.demand_weights()
        total = sum(weights)
        if total == 0:
            raise WorkerDiedError("no live workers to fund")
        shares = [blocks * weight / total for weight in weights]
        split = [int(share) for share in shares]
        remainder = blocks - sum(split)
        if remainder:
            by_fraction = sorted(
                range(len(split)),
                key=lambda i: (-(shares[i] - split[i]), i),
            )
            for i in by_fraction[:remainder]:
                split[i] += 1
        return split


@dataclass
class WorkerReconciliation:
    """Byte-exact shutdown accounting, worker by worker."""

    ok: bool
    workers: List[Dict[str, Any]]
    expected_blocks: int
    reported_blocks: int

    @property
    def expected_pages(self) -> int:
        return self.expected_blocks * PAGES_PER_BLOCK

    @property
    def reported_pages(self) -> int:
        return self.reported_blocks * PAGES_PER_BLOCK


# ---------------------------------------------------------------------------
# The arbiter daemon
# ---------------------------------------------------------------------------


class ArbiterDaemon(TunerDaemon):
    """The pool's tuning thread: STMM passes *plus* borrow service.

    Subclasses :class:`TunerDaemon` (same crash-to-freeze contract,
    same audit trail) but replaces the sleep between passes with a
    ``multiprocessing.connection.wait`` over the borrow pipes, so
    synchronous-growth requests are granted the moment they arrive --
    including *while a pass is mid-distribution* (see the module
    docstring's deadlock note).  Worker posture is sampled right before
    each pass so the controller tunes against fresh occupancy.
    """

    def __init__(self, pool: "WorkerPoolStack", stmm: Stmm, **kwargs: Any) -> None:
        super().__init__(pool, stmm, **kwargs)
        self._pool = pool

    def _run(self) -> None:  # overrides the sleep loop, keeps the contract
        pool = self._pool
        try:
            next_pass = time.monotonic() + self._interval_s()
            while not self._stop.is_set():
                pool._service_borrows(
                    min(0.05, max(0.0, next_pass - time.monotonic()))
                )
                pool._apply_pending_freeze()
                if self._stop.is_set():
                    return
                if time.monotonic() < next_pass:
                    continue
                pool._sample_occupancy()
                self._tune_once()
                if (
                    self.max_intervals is not None
                    and self.intervals_run >= self.max_intervals
                ):
                    return
                next_pass = time.monotonic() + self._interval_s()
        except BaseException as exc:  # noqa: BLE001 - degrade, never corrupt
            self.crash = exc
            if self._metrics is not None:
                self._m_crashes.inc()
            self._record_freeze(exc)
            self.service.freeze_tuning(
                f"tuner thread died: {type(exc).__name__}: {exc}"
            )


class WorkerDeadlockDetector:
    """Cross-worker deadlock sweep: merged wait-for graphs, global victim.

    The cross-shard sweep generalized across process boundaries: every
    worker exports its waiting set, each builds its local wait-for graph
    against the *global* waiting set, the parent merges and finds
    cycles.  Because the per-worker snapshots are not atomic with each
    other, a cycle is only victimized when seen in **two consecutive
    sweeps** -- a real deadlock is permanent until broken, a phantom
    from skewed snapshots dissolves by itself.
    """

    def __init__(
        self, pool: "WorkerPoolStack", *, interval_s: float = 0.25
    ) -> None:
        self.pool = pool
        self.interval_s = interval_s
        self.checks = 0
        self.cycles_found = 0
        self.victims: List[int] = []
        self.crash: Optional[BaseException] = None
        self._pending: Set[frozenset] = set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            raise ServiceError("deadlock sweep already started")
        self._thread = threading.Thread(
            target=self._run, name="worker-deadlock-sweep", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.check()
            except WorkerDiedError:
                continue  # the watcher owns crash handling
            except Exception as exc:  # degraded: detection stops, service runs
                self.crash = exc
                return

    def check(self) -> int:
        """One sweep; returns the number of victims cancelled."""
        pool = self.pool
        self.checks += 1
        waiting_by_worker: Dict[int, Set[int]] = {}
        for idx in pool._live_workers():
            waiting_by_worker[idx] = set(pool._call(idx, "waiting"))
        waiting: Set[int] = set().union(*waiting_by_worker.values(), set())
        if not waiting:
            self._pending.clear()
            return 0
        graphs = []
        slots_by_worker: Dict[int, Dict[int, int]] = {}
        for idx in waiting_by_worker:
            graph, slots = pool._call(idx, "graph", sorted(waiting))
            graphs.append(graph)
            slots_by_worker[idx] = slots
        merged = merge_wait_graphs(graphs)
        cycles = find_cycles_in_graph(merged)
        confirmed = [c for c in cycles if frozenset(c) in self._pending]
        self._pending = {frozenset(c) for c in cycles} - {
            frozenset(c) for c in confirmed
        }
        victims = 0
        for cycle in confirmed:
            self.cycles_found += 1
            # Victim by smallest *global* footprint (slots summed over
            # every worker), ties to the lowest app id -- the sharded
            # sweep's rule, evaluated across processes.
            footprint = {
                app: sum(
                    slots.get(app, 0) for slots in slots_by_worker.values()
                )
                for app in cycle
            }
            victim = min(cycle, key=lambda app: (footprint[app], app))
            owner = next(
                (
                    idx
                    for idx, apps in waiting_by_worker.items()
                    if victim in apps
                ),
                None,
            )
            if owner is None:
                continue  # victim resumed between sweeps: phantom
            cancelled, resource = pool._call(
                owner,
                "victimize",
                victim,
                f"cross-worker deadlock: app {victim} chosen as victim "
                f"of cycle {sorted(cycle)}",
            )
            if cancelled:
                self.victims.append(victim)
                victims += 1
                pool.incidents.append(
                    IncidentRecord(
                        kind="deadlock",
                        time=pool.clock.now(),
                        app_id=victim,
                        shard=owner,
                        detail=(
                            f"cross-worker sweep: victim by smallest global "
                            f"footprint among cycle {sorted(cycle)} "
                            f"(resource {resource or 'unknown'})"
                        ),
                        cycle=list(cycle),
                        posture=dict(pool._occ[owner]),
                        data={"workers": pool.config.workers},
                    )
                )
        return victims


# ---------------------------------------------------------------------------
# The pool stack
# ---------------------------------------------------------------------------


class WorkerPoolStack:
    """A fully wired multi-process lock service (see module docstring).

    Also serves as the *service facade* the :class:`TunerDaemon`
    contract expects: ``_cond``, ``clock``, ``chain`` and
    ``freeze_tuning`` below are the attributes a pass touches.
    """

    def __init__(self, config: Optional[WorkerPoolConfig] = None) -> None:
        cfg = config or WorkerPoolConfig()
        self.config = cfg
        self.clock = MonotonicClock()
        self.metrics: Optional[MetricRegistry] = (
            MetricRegistry() if cfg.telemetry else None
        )
        self.registry = build_memory_registry(cfg)

        locklist_blocks = (
            round_pages_to_blocks(cfg.initial_locklist_pages)
            // PAGES_PER_BLOCK
        )
        base, extra = divmod(locklist_blocks, cfg.workers)
        #: Authoritative per-worker block counts: every chain mutation
        #: (initial split, resize distribution, borrow grant, shutdown
        #: reclaim) flows through the parent and lands here first.
        self._blocks: List[int] = [
            base + (1 if idx < extra else 0) for idx in range(cfg.workers)
        ]
        #: Last sampled posture per worker (refreshed before each pass).
        self._occ: List[dict] = [
            {
                "block_count": self._blocks[idx],
                "used_slots": 0,
                "capacity_slots": self._blocks[idx] * LOCKS_PER_BLOCK,
                "free_fraction": 1.0,
                "entirely_free_blocks": self._blocks[idx],
                "sessions": 0,
                "has_waiters": False,
                "maxlocks_fraction": 0.0,
                "escalations": 0,
                "deadlocks": 0,
                "sync_growth_blocks": 0,
                "responses": 0,
                "frozen": None,
            }
            for idx in range(cfg.workers)
        ]

        self.chain = RemoteWorkerChain(self)
        self.ledger = WorkerMemoryLedger(self)
        self.controller = LockMemoryController(
            registry=self.registry,
            chain=self.chain,
            params=cfg.params,
            num_applications=lambda: sum(
                occ["sessions"] for occ in self._occ
            ),
            escalation_count=lambda: sum(
                occ["escalations"] for occ in self._occ
            ),
            clock=self.clock.now,
        )
        self.maxlocks = AdaptiveMaxlocks(
            params=cfg.params,
            allocated_pages=lambda: self.chain.allocated_pages,
            max_lock_memory_pages=self.controller.max_lock_memory_pages,
        )
        self.controller.on_resize = self._push_maxlocks

        self.stmm = Stmm(self.registry, cfg.stmm)
        self.stmm.register_deterministic_tuner(self.controller)
        #: TunerDaemon facade: passes serialize on this condition (only
        #: the arbiter thread takes it; cross-process safety comes from
        #: the single-mutator arbiter design, not from this lock).
        self._cond = threading.Condition()
        self.frozen_reason: Optional[str] = None
        self._freeze_request: Optional[str] = None
        self.tuner = ArbiterDaemon(
            self,
            self.stmm,
            interval_override_s=cfg.tuner_interval_s,
            metrics=self.metrics,
            controller=self.controller,
            audit_capacity=cfg.audit_capacity,
        )
        self.detector = WorkerDeadlockDetector(
            self, interval_s=cfg.deadlock_interval_s
        )
        self.incidents = IncidentLog(capacity=cfg.incident_capacity)
        self.reconciliation: Optional[WorkerReconciliation] = None
        self.worker_crashes = 0
        #: Client-side request tracers, one per ``client_stack`` built
        #: while tracing is enabled; ``/traces`` merges their rings.
        self.request_tracers: List[RequestTracer] = []

        self._own_socket_dir = cfg.socket_dir is None
        self.socket_dir = cfg.socket_dir or tempfile.mkdtemp(
            prefix="repro-workers-"
        )
        self._handles: List[_WorkerHandle] = []
        self._watch_stop = threading.Event()
        self._watch_thread: Optional[threading.Thread] = None
        self._started = False
        self._stopping = False
        self._stopped = False

        self.ops: Optional[OpsServer] = None
        if cfg.ops_port is not None:
            assert self.metrics is not None  # enforced by the config
            self.ops = OpsServer(
                self.metrics,
                health=self.ops_health,
                stmm_status=self.ops_stmm,
                refresh=self.publish_ops_metrics,
                incidents=self.ops_incidents,
                traces=self.ops_traces,
                port=cfg.ops_port,
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WorkerPoolStack":
        if self._started:
            raise ConfigurationError("worker pool already started")
        self._started = True
        self._fork_workers()
        self.tuner.start()
        self.detector.start()
        self._watch_thread = threading.Thread(
            target=self._watch_loop, name="worker-watcher", daemon=True
        )
        self._watch_thread.start()
        if self.ops is not None:
            self.ops.start()
        return self

    def _fork_workers(self) -> None:
        # Workers are forked BEFORE any parent thread starts: forking a
        # multi-threaded process can capture locks mid-flight in the
        # child.  The child runs _worker_main and never touches the
        # parent's objects, so the copied registry/controller are inert.
        ctx = get_context("fork")
        cfg = self.config
        initial_fraction = self.maxlocks.fraction()
        for idx in range(cfg.workers):
            ctl_parent, ctl_child = ctx.Pipe()
            borrow_parent, borrow_child = ctx.Pipe()
            sock_path = os.path.join(self.socket_dir, f"worker-{idx}.sock")
            spec = _WorkerSpec(
                idx=idx,
                num_workers=cfg.workers,
                initial_blocks=self._blocks[idx],
                sock_path=sock_path,
                default_timeout_s=cfg.default_timeout_s,
                lock_timeout_s=cfg.lock_timeout_s,
                refresh_period=cfg.params.refresh_period_requests,
                initial_fraction=initial_fraction,
                executor_threads=cfg.executor_threads,
                trace=cfg.trace_sample_every > 0,
                telemetry=cfg.telemetry,
            )
            process = ctx.Process(
                target=_worker_main,
                args=(spec, ctl_child, borrow_child),
                name=f"lock-worker-{idx}",
                daemon=True,
            )
            process.start()
            ctl_child.close()
            borrow_child.close()
            self._handles.append(
                _WorkerHandle(
                    idx=idx,
                    process=process,
                    ctl=ctl_parent,
                    borrow=borrow_parent,
                    sock_path=sock_path,
                )
            )
        for handle in self._handles:
            tag, idx, _pid = handle.ctl.recv()  # ready handshake
            if tag != "ready" or idx != handle.idx:
                raise ServiceError(
                    f"worker {handle.idx} failed its ready handshake: "
                    f"{tag!r}"
                )

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        """Per-worker data-plane addresses (``("unix:<path>", 0)``)."""
        return [(f"unix:{h.sock_path}", 0) for h in self._handles]

    def client_stack(
        self,
        *,
        pool_size: int = 1,
        max_in_flight: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
    ):
        """A :class:`LoadDriver`-shaped client stack routed over the pool."""
        from repro.net.client import RoutedClientStack

        tracer = None
        if self.config.trace_sample_every > 0:
            tracer = RequestTracer(self.config.trace_sample_every)
            self.request_tracers.append(tracer)
        return RoutedClientStack(
            self.endpoints,
            pool_size=pool_size,
            max_in_flight=max_in_flight or self.config.max_in_flight,
            max_queue_depth=max_queue_depth
            or self.config.admission_queue_depth,
            metrics=self.metrics,
            tracer=tracer,
        )

    # -- control plane -----------------------------------------------------

    def _live_workers(self) -> List[int]:
        return [
            h.idx for h in self._handles if not h.dead and not h.closed
        ]

    def _call(self, idx: int, op: str, *args: Any, drain: bool = False) -> Any:
        """One control round trip to worker ``idx``.

        ``drain=True`` is for the single borrow-consuming thread (the
        arbiter while running; the stop path after the arbiter joined):
        while waiting for the lock or the reply it keeps servicing
        borrow pipes, so a worker blocked mid-request on a borrow grant
        can release its mutex and answer the control op.
        """
        handle = self._handles[idx]
        if handle.dead:
            raise WorkerDiedError(f"worker {idx} is dead")
        if drain:
            while not handle.ctl_lock.acquire(timeout=0.01):
                self._service_borrows(0.0)
        else:
            handle.ctl_lock.acquire()
        try:
            try:
                handle.ctl.send((op, *args))
                if drain:
                    while not handle.ctl.poll(0.01):
                        self._service_borrows(0.0)
                tag, result = handle.ctl.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                handle.dead = True
                raise WorkerDiedError(
                    f"worker {idx} died during {op!r}"
                ) from exc
        finally:
            handle.ctl_lock.release()
        if tag == "error":
            raise ServiceError(f"worker {idx} {op!r} failed: {result}")
        return result

    def _broadcast(self, op: str, *args: Any, drain: bool = False) -> None:
        for idx in self._live_workers():
            with contextlib.suppress(WorkerDiedError, ServiceError):
                self._call(idx, op, *args, drain=drain)

    def _service_borrows(self, timeout_s: float) -> None:
        """Grant (or deny) queued synchronous-growth requests.

        Runs only on the borrow-consuming thread.  A grant moves pages
        from overflow into the locklist heap (``sync_grow``), reserves
        the blocks for the requesting worker in the mirror, and replies
        with the grant plus the fresh MAXLOCKS fraction; the worker's
        manager chains the blocks on its side of the pipe.
        """
        conns = {
            h.borrow: h
            for h in self._handles
            if not h.dead and not h.closed
        }
        if not conns:
            if timeout_s > 0:
                time.sleep(min(timeout_s, 0.05))
            return
        try:
            ready = conn_wait(list(conns), timeout_s if timeout_s > 0 else 0)
        except OSError:
            return
        for conn in ready:
            handle = conns[conn]
            try:
                wanted = conn.recv()
            except (EOFError, OSError):
                continue  # the watcher owns death handling
            granted = 0
            if (
                int(wanted) > 0
                and not self._stopping
                and self.frozen_reason is None
                and not handle.dead
            ):
                granted = self.controller.sync_grow(int(wanted))
                if granted:
                    self._blocks[handle.idx] += granted
                    self.ledger.record_sync_borrow(handle.idx, granted)
            with contextlib.suppress(OSError):
                conn.send((granted, self.maxlocks.fraction()))

    def _sample_occupancy(self) -> None:
        """Refresh per-worker posture snapshots (arbiter, pre-pass)."""
        for idx in self._live_workers():
            with contextlib.suppress(WorkerDiedError, ServiceError):
                self._occ[idx] = self._call(idx, "occupancy", drain=True)

    def _entirely_free_blocks(self, idx: int) -> int:
        handle = self._handles[idx]
        if handle.dead:
            return 0  # stranded memory: nothing reclaimable
        if handle.closed:
            return self._blocks[idx]  # clean close verified used_slots == 0
        return min(self._occ[idx]["entirely_free_blocks"], self._blocks[idx])

    # -- resize distribution (the STMM arbiter's write path) ---------------

    def _distribute_grow(self, blocks: int) -> int:
        """Split an STMM grow across workers by demand weights."""
        if blocks <= 0:
            return 0
        split = self.ledger.grant_split(blocks)
        undelivered = 0
        for idx, share in enumerate(split):
            if share <= 0:
                continue
            try:
                self._call(idx, "add_blocks", share, drain=True)
            except (WorkerDiedError, ServiceError):
                undelivered += share
                continue
            self._blocks[idx] += share
        if undelivered:
            # Redistribute a dead worker's share to the survivors (one
            # round); anything still undeliverable surfaces as a crash
            # of the pass, which freezes tuning -- the degraded mode a
            # worker death leads to anyway.
            retry = self.ledger.grant_split(undelivered)
            for idx, share in enumerate(retry):
                if share <= 0:
                    continue
                self._call(idx, "add_blocks", share, drain=True)
                self._blocks[idx] += share
        return blocks

    def _distribute_shrink(self, blocks: int, *, partial: bool = False) -> int:
        """Release entirely-free blocks, most-free worker first."""
        if blocks <= 0:
            return 0
        order = sorted(
            range(self.config.workers),
            key=lambda i: (-self._entirely_free_blocks(i), -i),
        )
        freed_total = 0
        for idx in order:
            if freed_total >= blocks:
                break
            handle = self._handles[idx]
            if handle.dead:
                continue
            ask = blocks - freed_total
            if handle.closed:
                # The worker exited cleanly with used_slots == 0; its
                # blocks exist only in the mirror now.
                take = min(ask, self._blocks[idx])
                self._blocks[idx] -= take
                freed_total += take
                continue
            # Keep every live worker at one block minimum so its next
            # request escalates instead of crashing on an empty chain.
            available = min(
                self._entirely_free_blocks(idx), self._blocks[idx] - 1
            )
            ask = min(ask, max(0, available))
            if ask <= 0:
                continue
            try:
                freed = self._call(idx, "release_blocks", ask, drain=True)
            except (WorkerDiedError, ServiceError):
                continue
            self._blocks[idx] -= freed
            freed_total += freed
        if freed_total < blocks and not partial:
            return 0  # all-or-nothing contract of LockBlockChain
        return freed_total

    def _push_maxlocks(self) -> None:
        """``on_resize`` hook: push the fresh fraction to every worker."""
        fraction = self.maxlocks.fraction()
        self._broadcast("set_maxlocks", fraction, drain=True)

    def _check_mirror(self) -> None:
        for idx in self._live_workers():
            reported = self._call(idx, "check")
            if reported != self._blocks[idx]:
                raise MemoryAccountingError(
                    f"worker {idx} holds {reported} blocks but the "
                    f"arbiter mirror says {self._blocks[idx]}"
                )

    # -- degraded modes ----------------------------------------------------

    def freeze_tuning(self, reason: str) -> None:
        """Freeze the whole pool to static LOCKLIST (tuner contract).

        Safe from the arbiter thread (broadcasts immediately, draining
        borrows into denials); other threads set the reason and leave
        the broadcast to the arbiter loop via ``_apply_pending_freeze``.
        """
        if self.frozen_reason is not None:
            return
        self.frozen_reason = reason
        if threading.current_thread() is self.tuner._thread:  # noqa: SLF001
            self._broadcast("freeze", reason, drain=True)
        else:
            self._freeze_request = reason

    def _apply_pending_freeze(self) -> None:
        """Arbiter loop: deliver a freeze requested by another thread."""
        reason = self._freeze_request
        if reason is None:
            return
        self._freeze_request = None
        self._broadcast("freeze", reason, drain=True)

    def _watch_loop(self) -> None:
        while not self._watch_stop.wait(0.1):
            for handle in self._handles:
                if handle.crash_reported or handle.closed or self._stopping:
                    continue
                # A control call racing the watcher may have flagged
                # ``dead`` already -- the degrade response (freeze,
                # incident, crash counter) still runs exactly once,
                # here.
                if handle.dead or not handle.process.is_alive():
                    handle.crash_reported = True
                    self._on_worker_death(handle)

    def _on_worker_death(self, handle: _WorkerHandle) -> None:
        """A worker crashed: degrade exactly like a tuner crash.

        Survivors freeze to static LOCKLIST, an incident is recorded,
        ``/healthz`` flips to 503.  The dead worker's blocks stay in
        the mirror (stranded, exactly as a crashed process strands its
        memory) and are reported as such by the shutdown reconcile.
        """
        handle.dead = True
        self.worker_crashes += 1
        reason = (
            f"worker {handle.idx} died "
            f"(exit code {handle.process.exitcode})"
        )
        self.incidents.append(
            IncidentRecord(
                kind="worker-crash",
                time=self.clock.now(),
                app_id=-1,
                shard=handle.idx,
                detail=reason,
                posture={
                    "mirror_blocks": self._blocks[handle.idx],
                    "last_occupancy": dict(self._occ[handle.idx]),
                },
                data={"exit_code": handle.process.exitcode},
            )
        )
        self.freeze_tuning(reason)

    # -- shutdown ----------------------------------------------------------

    def stop(self) -> None:
        """Stop tuning, close every worker, reconcile byte-exactly."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        if self.ops is not None:
            self.ops.stop()
        self.detector.stop()
        self.tuner.stop()
        self._stopping = True
        self._watch_stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=5.0)
        # The arbiter has joined: this thread is now the sole borrow
        # consumer.  Workers blocked on a borrow get denials while
        # their close is negotiated.
        reports: List[Dict[str, Any]] = []
        ok = True
        for handle in self._handles:
            expected = self._blocks[handle.idx]
            entry: Dict[str, Any] = {
                "worker": handle.idx,
                "expected_blocks": expected,
                "borrowed_blocks": self.ledger.borrowed_blocks(handle.idx),
            }
            if handle.dead:
                entry.update(state="crashed", reported_blocks=None)
                ok = False
                reports.append(entry)
                continue
            try:
                final = self._call(handle.idx, "close", drain=True)
            except (WorkerDiedError, ServiceError) as exc:
                handle.dead = True
                entry.update(state="crashed", reported_blocks=None)
                entry["error"] = str(exc)
                ok = False
                reports.append(entry)
                continue
            handle.closed = True
            handle.final = final
            matched = (
                final["block_count"] == expected
                and final["used_slots"] == 0
            )
            entry.update(
                state="closed" if matched else "mismatch",
                reported_blocks=final["block_count"],
                reported_used_slots=final["used_slots"],
                sessions=final["sessions"],
            )
            ok = ok and matched
            reports.append(entry)
        self.reconciliation = WorkerReconciliation(
            ok=ok,
            workers=reports,
            expected_blocks=sum(
                entry["expected_blocks"] for entry in reports
            ),
            reported_blocks=sum(
                entry["reported_blocks"] or 0 for entry in reports
            ),
        )
        for handle in self._handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - watchdog
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        # Return transiently borrowed blocks to overflow, exactly like
        # LockService.close's borrow_return (the mirror stands in for
        # the closed workers' chains).
        if ok:
            self.controller.reclaim_transient_blocks()
        for handle in self._handles:
            with contextlib.suppress(OSError):
                handle.ctl.close()
            with contextlib.suppress(OSError):
                handle.borrow.close()
            with contextlib.suppress(OSError):
                os.unlink(handle.sock_path)
        if self._own_socket_dir:
            shutil.rmtree(self.socket_dir, ignore_errors=True)

    def __enter__(self) -> "WorkerPoolStack":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> None:
        """Registry, controller and mirror must all agree."""
        self.controller.check_consistency()
        if not self._stopped:
            self._check_mirror()
        if self.registry.overflow_pages < 0:  # pragma: no cover
            raise MemoryAccountingError("negative overflow")

    # -- the ops plane -----------------------------------------------------

    def publish_ops_metrics(self) -> None:
        """Per-worker labeled gauges plus the stack-level aggregates."""
        if self.metrics is None:
            return
        reg = self.metrics
        if not self._stopping:
            for idx in self._live_workers():
                with contextlib.suppress(WorkerDiedError, ServiceError):
                    self._occ[idx] = self._call(idx, "occupancy")
                with contextlib.suppress(WorkerDiedError, ServiceError):
                    snapshot = self._call(idx, "metrics")
                    if snapshot is not None:
                        self._install_worker_metrics(idx, snapshot)
        for idx in range(self.config.workers):
            occ = self._occ[idx]
            labels = {"worker": str(idx)}
            reg.gauge("worker.locklist_blocks", labels=labels).set(
                float(self._blocks[idx])
            )
            reg.gauge("worker.used_slots", labels=labels).set(
                float(occ["used_slots"])
            )
            reg.gauge("worker.free_fraction", labels=labels).set(
                occ["free_fraction"]
            )
            reg.gauge("worker.sessions", labels=labels).set(
                float(occ["sessions"])
            )
            reg.gauge("worker.escalations", labels=labels).set(
                float(occ["escalations"])
            )
            reg.gauge("worker.deadlocks", labels=labels).set(
                float(occ["deadlocks"])
            )
            reg.gauge("worker.borrowed_blocks", labels=labels).set(
                float(self.ledger.borrowed_blocks(idx))
            )
            reg.gauge("worker.responses", labels=labels).set(
                float(occ["responses"])
            )
            reg.gauge("worker.maxlocks_fraction", labels=labels).set(
                occ["maxlocks_fraction"]
            )
            reg.gauge("worker.alive", labels=labels).set(
                0.0 if self._handles[idx].dead else 1.0
            )
        reg.gauge("service.locklist_pages").set(
            float(self.chain.allocated_pages)
        )
        reg.gauge("service.locklist_used_slots").set(
            float(self.chain.used_slots)
        )
        reg.gauge("service.locklist_free_fraction").set(
            self.chain.free_fraction()
        )
        reg.gauge("service.maxlocks_fraction").set(self.maxlocks.fraction())
        reg.gauge("service.sessions").set(
            float(sum(occ["sessions"] for occ in self._occ))
        )
        reg.gauge("service.escalations").set(
            float(sum(occ["escalations"] for occ in self._occ))
        )
        reg.gauge("service.workers").set(float(self.config.workers))
        reg.gauge("service.workers_alive").set(
            float(len(self._live_workers()))
        )

    def ops_health(self) -> dict:
        """The ``/healthz`` body; ``ok`` decides 200 vs 503."""
        alive = [not h.dead for h in self._handles]
        return {
            "ok": (
                self.frozen_reason is None
                and not self.tuner.frozen
                and all(alive)
                and not self._stopped
            ),
            "service": "lock-service-workers",
            "workers": self.config.workers,
            "workers_alive": sum(alive),
            "worker_crashes": self.worker_crashes,
            "frozen_reason": self.frozen_reason,
            "tuner": {
                "alive": self.tuner.alive,
                "frozen": self.tuner.frozen,
                "intervals": self.tuner.intervals_run,
            },
            "detector": {
                "alive": self.detector.crash is None,
                "checks": self.detector.checks,
                "victims": len(self.detector.victims),
            },
        }

    def ops_stmm(self) -> dict:
        """The ``/stmm`` body: parameters, live posture, audit tail.

        Carries the same top-level posture keys as the single-process
        stack (the ``top`` dashboard reads those), plus a per-worker
        ``posture`` breakdown for remote analysis.
        """
        return {
            "params": controller_params(self.config, self.tuner),
            "locklist_pages": self.chain.allocated_pages,
            "locklist_free_fraction": self.chain.free_fraction(),
            "maxlocks_fraction": self.maxlocks.fraction(),
            "overflow_pages": self.registry.overflow_pages,
            "posture": {
                "allocated_pages": self.chain.allocated_pages,
                "per_worker_blocks": list(self._blocks),
                "borrowed_blocks": [
                    self.ledger.borrowed_blocks(idx)
                    for idx in range(self.config.workers)
                ],
                "overflow_pages": self.registry.overflow_pages,
                "maxlocks_fraction": self.maxlocks.fraction(),
            },
            "audit": self.tuner.audit.to_dicts(),
            "audit_total": self.tuner.audit.total_recorded,
            "intervals": self.tuner.intervals_run,
            "frozen_reason": self.frozen_reason,
            "incident_total": self.incidents.total_recorded,
        }

    def ops_incidents(self) -> dict:
        """The ``/incidents`` body: the forensics ring, oldest first."""
        return {
            "total": self.incidents.total_recorded,
            "counts": self.incidents.kind_counts(),
            "incidents": self.incidents.to_dicts(),
        }

    def _install_worker_metrics(self, idx: int, snapshot: dict) -> None:
        """Merge one worker's registry snapshot under ``worker="N"``.

        Each worker process keeps its own registry (counters increment
        in its address space, invisible to the parent); a scrape pulls
        every live worker's snapshot over the control plane and lands
        the series here with the worker label added, so one ``/metrics``
        endpoint carries the whole pool.
        """
        reg = self.metrics
        assert reg is not None  # only called with telemetry on

        def _relabel(full: str) -> str:
            base, pairs = parse_labeled_name(full)
            labels = dict(pairs)
            labels["worker"] = str(idx)
            return labeled_name(base, labels)

        for name, value in snapshot.get("counters", {}).items():
            reg.counter(_relabel(name)).value = float(value)
        for name, value in snapshot.get("gauges", {}).items():
            reg.gauge(_relabel(name)).set(float(value))
        for name, hist in snapshot.get("histograms", {}).items():
            renamed = dict(hist)
            renamed["name"] = _relabel(name)
            reg.install(Histogram.from_snapshot(renamed))

    def ops_traces(self) -> dict:
        """The ``/traces`` body: client trace rings + worker span rings.

        Client-side completed traces (with their hop decomposition and
        wire tax) merge across every tracer this pool handed out, time
        ordered; each live worker contributes its server span ring so a
        truncated client trace can still be attributed from the
        surviving side.
        """
        enabled = self.config.trace_sample_every > 0
        traces: List[Dict[str, Any]] = []
        total = 0
        truncated = 0
        for tracer in self.request_tracers:
            traces.extend(tracer.to_dicts())
            counts = tracer.summary()
            total += counts["finished"]
            truncated += counts["truncated"]
        traces.sort(key=lambda trace: trace["t"])
        server_spans: Dict[str, Any] = {}
        if enabled and self._started and not self._stopping:
            for idx in self._live_workers():
                with contextlib.suppress(WorkerDiedError, ServiceError):
                    spans = self._call(idx, "traces")
                    if spans is not None:
                        server_spans[str(idx)] = spans
        summary: Dict[str, Any] = {}
        if traces:
            summary = {
                "hops": hop_percentiles(traces),
                "wire_tax": wire_tax_summary(traces),
            }
        return {
            "enabled": enabled,
            "sample_every": self.config.trace_sample_every,
            "total": total,
            "truncated": truncated,
            "traces": traces,
            "server_spans": server_spans,
            "summary": summary,
        }


__all__ = [
    "ArbiterDaemon",
    "RemoteWorkerChain",
    "WorkerDeadlockDetector",
    "WorkerDiedError",
    "WorkerMemoryLedger",
    "WorkerPoolConfig",
    "WorkerPoolStack",
    "WorkerReconciliation",
]
